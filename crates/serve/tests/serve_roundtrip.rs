//! End-to-end serving acceptance: train a PPRVSM system once, package it,
//! reload it from bytes alone, and serve it over TCP — with the fused
//! detection LLRs bit-identical to the offline experiment pipeline,
//! micro-batching observably active, load shedding engaged when the queue
//! fills, and a clean protocol-driven shutdown.
//!
//! Like `tests/full_system.rs`, the big test builds the complete
//! six-front-end smoke experiment (minutes in release, much longer in
//! debug), so it is `#[ignore]` by default and CI runs it in release:
//!
//! ```text
//! cargo test --release -p lre-serve --test serve_roundtrip -- --ignored
//! ```

use lre_artifact::{ArtifactRead, ArtifactWrite};
use lre_corpus::{render_utterance, Duration, Scale};
use lre_dba::{fuse_duration, Experiment, ExperimentConfig};
use lre_eval::ScoreMatrix;
use lre_lattice::DecodeScratch;
use lre_serve::client::ScoreReply;
use lre_serve::{Client, Engine, EngineConfig, ScoringSystem, Server, SubmitError, SystemBundle};
use std::net::TcpListener;
use std::sync::Arc;

fn assert_bits_eq(got: &[f32], want: &[f32], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: LLR count");
    for (j, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{what}: LLR {j} differs ({g} vs {w})"
        );
    }
}

#[test]
#[ignore = "builds the full experiment; run with --release -- --ignored"]
fn train_save_reload_serve_bit_identical() {
    let cfg = ExperimentConfig::new(Scale::Smoke, 42);
    let exp = Experiment::build(&cfg);

    // Offline reference: the experiment's own fused scores for the 3 s set.
    let d = Duration::S3;
    let di = Experiment::duration_index(d);
    let test: Vec<ScoreMatrix> = exp
        .baseline_test_scores
        .iter()
        .map(|per| per[di].clone())
        .collect();
    let offline = fuse_duration(&exp, &exp.baseline_dev_scores, &test, d, None).test_scores;

    // The same utterances as a client would hold them: raw waveforms.
    let waves: Vec<Vec<f32>> = exp
        .ds
        .test_set(d)
        .iter()
        .map(|u| render_utterance(u, exp.ds.language(u.language), &exp.inv).samples)
        .collect();
    assert!(
        waves.len() >= 100,
        "need ≥100 utterances for the serving smoke; have {}",
        waves.len()
    );

    // Package the system and reload it from bytes alone — the "fresh
    // process" contract: nothing survives but the artifact container.
    let bytes = SystemBundle::from_experiment(exp).to_artifact_bytes();
    let reloaded = SystemBundle::from_artifact_bytes(&bytes).expect("bundle reloads");
    assert_eq!(reloaded.scale_name, "smoke");
    assert_eq!(reloaded.seed, 42);
    let system = Arc::new(ScoringSystem::from_bundle(reloaded).expect("bundle is coherent"));

    // 1) In-process spot check: the reloaded pipeline reproduces the
    //    offline fused scores to the bit (full coverage happens over TCP).
    let mut scratch = DecodeScratch::new();
    for (i, w) in waves.iter().enumerate().take(3) {
        let got = system.score(w, &mut scratch);
        assert_bits_eq(&got, offline.row(i), &format!("in-process utt {i}"));
    }

    // 2) Over TCP with concurrent clients so micro-batching engages.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let server = Server::start(
        listener,
        Arc::clone(&system),
        EngineConfig {
            workers: 2,
            max_batch: 4,
            max_wait: std::time::Duration::from_millis(500),
            queue_capacity: 256,
        },
    )
    .expect("server starts");
    let addr = server.local_addr();

    let n_threads = 8;
    let waves = Arc::new(waves);
    let handles: Vec<_> = (0..n_threads)
        .map(|t| {
            let waves = Arc::clone(&waves);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("client connects");
                let mut out = Vec::new();
                for (i, w) in waves.iter().enumerate() {
                    if i % n_threads != t {
                        continue;
                    }
                    loop {
                        match client.score(w).expect("score round trip") {
                            ScoreReply::Scored(s) => {
                                out.push((i, s));
                                break;
                            }
                            ScoreReply::Overloaded => {
                                std::thread::sleep(std::time::Duration::from_millis(10));
                            }
                            ScoreReply::ShuttingDown => panic!("server shut down mid-test"),
                        }
                    }
                }
                out
            })
        })
        .collect();
    let mut scored = 0usize;
    let mut seen_batched = 0usize;
    for h in handles {
        for (i, s) in h.join().expect("client thread") {
            assert_bits_eq(&s.llrs, offline.row(i), &format!("TCP utt {i}"));
            assert_eq!(
                s.decision,
                lre_serve::decision(&s.llrs),
                "decision must be the argmax the server computed"
            );
            if s.batch_size > 1 {
                seen_batched += 1;
            }
            scored += 1;
        }
    }
    assert_eq!(scored, waves.len());
    assert!(
        seen_batched > 0,
        "no utterance observed a batch > 1 — micro-batching never coalesced"
    );

    // Counters agree with what the clients saw.
    let mut client = Client::connect(addr).expect("stats connection");
    let stats = client.stats().expect("stats round trip");
    assert_eq!(stats.completed, waves.len() as u64);
    assert_eq!(stats.requests, waves.len() as u64);
    assert_eq!(stats.rejected, 0);
    assert_eq!(stats.batched_utts, waves.len() as u64);
    assert!(stats.batches >= 1);
    assert!(
        stats.batched_utts > stats.batches,
        "mean batch size must exceed 1 (batches={}, utts={})",
        stats.batches,
        stats.batched_utts
    );
    assert!(stats.latency_us_sum > 0 && stats.latency_us_max > 0);

    // 3) Graceful shutdown over the wire: acknowledged, then the server
    //    joins cleanly.
    client.shutdown().expect("shutdown acknowledged");
    server.join();

    // 4) Load shedding: a one-lane engine with a 2-deep queue cannot absorb
    //    a 64-request burst; the surplus must be refused explicitly (and
    //    everything accepted must still complete).
    let engine = Engine::start(
        EngineConfig {
            workers: 1,
            max_batch: 1,
            max_wait: std::time::Duration::from_millis(0),
            queue_capacity: 2,
        },
        Arc::clone(&system),
    );
    let mut receivers = Vec::new();
    let mut shed = 0usize;
    for i in 0..64 {
        match engine.submit(waves[i % waves.len()].clone()) {
            Ok(rx) => receivers.push(rx),
            Err(SubmitError::Overloaded) => shed += 1,
            Err(SubmitError::ShuttingDown) => panic!("engine closed prematurely"),
        }
    }
    assert!(shed > 0, "64-burst into a 2-deep queue must shed");
    for rx in receivers {
        let s = rx.recv().expect("accepted work completes despite shedding");
        assert_eq!(s.llrs.len(), system.num_classes());
    }
    let stats = engine.stats();
    assert_eq!(stats.rejected, shed as u64);
    assert_eq!(stats.completed + stats.rejected, 64);
    engine.shutdown();
}

#[test]
fn corrupt_bundles_fail_with_typed_errors_not_panics() {
    // A coherent-but-tiny fake cannot be built without training, so damage
    // testing runs on container-level invariants: every truncation of a
    // sealed bundle prefix and a sweep of single-bit flips must produce a
    // typed error. (Training-backed round-trip corruption is exercised by
    // the property tests on the per-model payloads.)
    let mut w = lre_artifact::ArtifactWriter::new();
    w.put_u64(7);
    w.put_str("smoke");
    w.put_u32(2);
    w.put_u32(0); // zero subsystems: structurally valid container, bad bundle
    w.put_u32(0);
    let sealed = lre_artifact::seal(*b"BNDL", 1, &w.into_bytes());
    // Structurally intact container, semantically invalid payload.
    match SystemBundle::from_artifact_bytes(&sealed) {
        Err(lre_artifact::ArtifactError::Corrupt(_)) => {}
        Err(other) => panic!("expected Corrupt, got {other:?}"),
        Ok(_) => panic!("an empty bundle must not deserialize"),
    }
    for cut in 0..sealed.len() {
        assert!(
            SystemBundle::from_artifact_bytes(&sealed[..cut]).is_err(),
            "truncation at {cut} must fail"
        );
    }
    for byte in 0..sealed.len() {
        let mut bad = sealed.clone();
        bad[byte] ^= 0x04;
        assert!(
            SystemBundle::from_artifact_bytes(&bad).is_err(),
            "bit flip at byte {byte} must fail"
        );
    }
}
