//! Property tests for the histogram percentile contract: extraction is
//! monotone in the requested rank, never below the true quantile, and
//! within one log bucket of it (relative error ≤ 1/16).

use lre_obs::hist::SUB_BUCKETS;
use lre_obs::Histogram;
use proptest::prelude::*;

/// The true quantile under the same rank convention the histogram uses:
/// rank `ceil(q · n)` (1-based, clamped) of the sorted samples.
fn true_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

/// Samples spanning several octaves, so buckets of every width are hit.
fn samples() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(
        prop_oneof![
            0u64..16,
            16u64..1_000,
            1_000u64..1_000_000,
            1_000_000u64..u64::MAX / 2,
        ],
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn percentile_is_within_one_bucket_of_true_quantile(
        xs in samples(),
        q in 0.0f64..1.0,
    ) {
        let h = Histogram::new();
        for &x in &xs {
            h.record(x);
        }
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        let t = true_quantile(&sorted, q);
        let p = h.snapshot().percentile(q);
        prop_assert!(p >= t, "reported {p} below true quantile {t} (q={q})");
        prop_assert!(
            p - t <= t / SUB_BUCKETS,
            "reported {p} more than one bucket above true quantile {t} (q={q})"
        );
    }

    #[test]
    fn percentile_is_monotone(xs in samples()) {
        let h = Histogram::new();
        for &x in &xs {
            h.record(x);
        }
        let snap = h.snapshot();
        let mut last = 0u64;
        for i in 0..=1000u32 {
            let p = snap.percentile(f64::from(i) / 1000.0);
            prop_assert!(p >= last, "p({}) = {p} < {last}", f64::from(i) / 1000.0);
            last = p;
        }
        prop_assert_eq!(snap.percentile(1.0), *sorted_max(&xs));
    }
}

fn sorted_max(xs: &[u64]) -> &u64 {
    xs.iter().max().expect("samples are non-empty")
}
