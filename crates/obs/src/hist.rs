//! Log-bucketed latency histograms with bounded-error percentile
//! extraction.
//!
//! The bucket layout is the HDR-histogram one: each power-of-two octave
//! is split into [`SUB_BUCKETS`] equal sub-buckets, so the width of the
//! bucket holding a value `v` is at most `v / SUB_BUCKETS`. A percentile
//! read reports the **upper bound** of the bucket the requested rank
//! falls in (clamped to the recorded maximum), which yields two
//! contracts the tests pin down:
//!
//! - the reported quantile is never below the true one, and is inside
//!   the same bucket (relative error ≤ 1/16);
//! - percentile extraction is monotone in the requested rank.
//!
//! Recording is lock-free and allocation-free: one relaxed `fetch_add`
//! on the bucket, the count, and the (saturating) sum, plus a
//! `fetch_max` on the maximum. Snapshots copy the bucket array without
//! stopping writers; a snapshot taken concurrently with records is some
//! valid interleaving, never torn.

use std::sync::atomic::{AtomicU64, Ordering};

/// log2 of the sub-buckets per octave.
const SUB_BITS: u32 = 4;
/// Sub-buckets per octave; also the worst-case relative-error
/// denominator.
pub const SUB_BUCKETS: u64 = 1 << SUB_BITS;
/// Values below this are their own bucket (exact).
const EXACT_LIMIT: u64 = SUB_BUCKETS;
/// Octaves above the exact range: msb positions `SUB_BITS..=63`.
const OCTAVES: usize = (64 - SUB_BITS) as usize;
/// Total buckets: the exact range plus `SUB_BUCKETS` per octave.
pub const NUM_BUCKETS: usize = EXACT_LIMIT as usize + OCTAVES * SUB_BUCKETS as usize;

/// Index of the bucket holding `v`.
fn bucket_index(v: u64) -> usize {
    if v < EXACT_LIMIT {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let sub = (v >> (msb - SUB_BITS)) & (SUB_BUCKETS - 1);
    EXACT_LIMIT as usize + ((msb - SUB_BITS) as usize) * SUB_BUCKETS as usize + sub as usize
}

/// Largest value mapping to bucket `idx` (the value a percentile read
/// reports).
fn bucket_upper(idx: usize) -> u64 {
    if idx < EXACT_LIMIT as usize {
        return idx as u64;
    }
    let rel = idx - EXACT_LIMIT as usize;
    let octave = (rel / SUB_BUCKETS as usize) as u32 + SUB_BITS;
    let sub = (rel % SUB_BUCKETS as usize) as u64;
    let width = 1u64 << (octave - SUB_BITS);
    let lower = (1u64 << octave) + sub * width;
    lower + (width - 1)
}

/// A fixed-allocation concurrent histogram over `u64` samples
/// (microseconds, batch sizes — anything non-negative).
pub struct Histogram {
    buckets: Box<[AtomicU64; NUM_BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        // `AtomicU64` is not `Copy`; build the boxed array through a Vec
        // to keep the allocation off the stack.
        let buckets: Box<[AtomicU64; NUM_BUCKETS]> = (0..NUM_BUCKETS)
            .map(|_| AtomicU64::new(0))
            .collect::<Vec<_>>()
            .into_boxed_slice()
            .try_into()
            .expect("bucket count is NUM_BUCKETS");
        Histogram {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample. Lock-free; safe from any thread.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // The sum saturates instead of wrapping: a pinned u64::MAX is an
        // obviously-broken mean, a wrapped one is a plausible lie.
        let _ = self
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(v))
            });
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Copy the current state without stopping writers.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }

    /// Snapshot reduced to the wire-friendly seven-number summary.
    pub fn summary(&self) -> HistogramSummary {
        self.snapshot().summary()
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub max: u64,
    buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// The value at quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket holding that rank, clamped to the recorded maximum. `0`
    /// for an empty snapshot.
    ///
    /// Ranks are computed against the bucket array itself (not the
    /// `count` field), so a snapshot racing concurrent records is still
    /// internally consistent.
    pub fn percentile(&self, q: f64) -> u64 {
        let total: u64 = self.buckets.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= rank {
                return bucket_upper(idx).min(self.max.max(bucket_upper(0)));
            }
        }
        self.max
    }

    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            max: self.max,
            p50: self.percentile(0.50),
            p90: self.percentile(0.90),
            p99: self.percentile(0.99),
            p999: self.percentile(0.999),
        }
    }
}

/// The seven numbers a histogram puts on the wire.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    pub count: u64,
    pub sum: u64,
    pub max: u64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
    pub p999: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn empty_snapshot_is_all_zero() {
        let h = Histogram::new();
        let s = h.summary();
        assert_eq!(s, HistogramSummary::default());
        assert_eq!(h.snapshot().percentile(0.5), 0);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let h = Histogram::new();
        h.record(4242);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.sum, 4242);
        assert_eq!(s.max, 4242);
        for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let p = s.percentile(q);
            // Same bucket as the sample, never above the recorded max.
            assert_eq!(bucket_index(p), bucket_index(4242));
            assert!(p <= 4242);
        }
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        let s = h.snapshot();
        // rank k of 16 → value k-1 exactly (buckets 0..16 are unit-width)
        assert_eq!(s.percentile(1.0 / 16.0), 0);
        assert_eq!(s.percentile(0.5), 7);
        assert_eq!(s.percentile(1.0), 15);
    }

    #[test]
    fn bucket_boundaries_roundtrip() {
        // Every bucket's upper bound indexes back to itself, boundaries
        // are monotone, and the neighbours of each boundary stay put.
        for idx in 0..NUM_BUCKETS {
            let upper = bucket_upper(idx);
            assert_eq!(bucket_index(upper), idx, "upper({idx}) = {upper}");
            assert_eq!(
                bucket_index(upper.saturating_add(1)).min(NUM_BUCKETS - 1),
                {
                    if upper == u64::MAX {
                        idx
                    } else {
                        idx + 1
                    }
                }
            );
            if idx > 0 {
                assert!(bucket_upper(idx - 1) < upper);
            }
        }
        // Spot checks at the exact/log seam and the top of the range.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(15), 15);
        assert_eq!(bucket_index(16), 16);
        assert_eq!(bucket_upper(NUM_BUCKETS - 1), u64::MAX);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn relative_error_is_bounded_by_sub_buckets() {
        for v in [17u64, 100, 999, 4242, 1 << 20, u64::MAX / 3] {
            let upper = bucket_upper(bucket_index(v));
            assert!(upper >= v);
            // Bucket width ≤ v / 16 ⇒ reported/true ≤ 1 + 1/16.
            assert!((upper - v) as f64 <= v as f64 / SUB_BUCKETS as f64);
        }
    }

    #[test]
    fn sum_saturates_instead_of_wrapping() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.sum, u64::MAX);
        assert_eq!(s.count, 2);
        assert_eq!(s.max, u64::MAX);
    }

    #[test]
    fn percentiles_are_monotone_in_q() {
        let h = Histogram::new();
        for v in [3u64, 19, 19, 250, 1000, 1001, 70_000, 70_001, 2_000_000] {
            h.record(v);
        }
        let s = h.snapshot();
        let mut last = 0;
        for i in 0..=100 {
            let p = s.percentile(i as f64 / 100.0);
            assert!(p >= last, "p({}) = {p} < {last}", i as f64 / 100.0);
            last = p;
        }
    }

    #[test]
    fn concurrent_record_vs_snapshot_is_never_torn() {
        let h = Arc::new(Histogram::new());
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..5_000u64 {
                        h.record(t * 10_000 + i);
                    }
                })
            })
            .collect();
        // Snapshot while the writers run: every view must be internally
        // consistent (percentiles within range, monotone, non-panicking).
        for _ in 0..50 {
            let s = h.snapshot();
            let p50 = s.percentile(0.5);
            let p99 = s.percentile(0.99);
            assert!(p50 <= p99);
            assert!(s.max <= 4 * 10_000);
        }
        for w in writers {
            w.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count, 20_000);
        assert!(s.percentile(1.0) <= s.max);
    }
}
