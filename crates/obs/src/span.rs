//! Per-request trace spans: the stage clock a traced request carries
//! from admission to reply.
//!
//! A span is a trace id plus a list of `(stage, offset_us)` pairs, each
//! offset measured from the moment the engine accepted the request.
//! Stages are recorded in pipeline order, and each offset marks the
//! point the stage **finished**, so consecutive differences are stage
//! durations:
//!
//! | stage | finished when |
//! |---|---|
//! | [`STAGE_QUEUE`] | the dispatcher formed the batch holding this request |
//! | [`STAGE_BATCH`] | a worker picked the request out of its batch |
//! | [`STAGE_DECODE`] | acoustic decode (features + Viterbi) completed |
//! | [`STAGE_SUPERVECTOR`] | expected-count supervectors were built |
//! | [`STAGE_SCORE`] | SVM scoring + fusion produced the fused LLRs |
//! | [`STAGE_REPLY`] | the reply was handed to the connection writer |
//!
//! Mock scorers cannot split decode from scoring, so a span is allowed
//! to omit interior stages; offsets must still be non-decreasing in
//! stage order (the wire decoder enforces this).

/// Stage ids, in pipeline order.
pub const STAGE_QUEUE: u8 = 0;
pub const STAGE_BATCH: u8 = 1;
pub const STAGE_DECODE: u8 = 2;
pub const STAGE_SUPERVECTOR: u8 = 3;
pub const STAGE_SCORE: u8 = 4;
pub const STAGE_REPLY: u8 = 5;

/// Stable human name for a stage id.
pub fn stage_name(stage: u8) -> &'static str {
    match stage {
        STAGE_QUEUE => "queue",
        STAGE_BATCH => "batch",
        STAGE_DECODE => "decode",
        STAGE_SUPERVECTOR => "supervector",
        STAGE_SCORE => "score",
        STAGE_REPLY => "reply",
        _ => "unknown",
    }
}

/// Stage-time split a scorer reports for one utterance, microseconds.
/// A scorer that cannot split (the default mock path) leaves decode and
/// supervector at zero and attributes everything to `score_us`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageTimes {
    pub decode_us: u64,
    pub supervector_us: u64,
    pub score_us: u64,
}

/// One traced request's stage breakdown.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceSpan {
    /// Minted at admission (router or server); `0` never appears on a
    /// completed span.
    pub trace_id: u64,
    /// `(stage, offset_us)` pairs in recording order; offsets are from
    /// engine admission and non-decreasing.
    pub stages: Vec<(u8, u64)>,
}

impl TraceSpan {
    pub fn new(trace_id: u64) -> TraceSpan {
        TraceSpan {
            trace_id,
            stages: Vec::with_capacity(6),
        }
    }

    /// Append a stage mark.
    pub fn mark(&mut self, stage: u8, offset_us: u64) {
        self.stages.push((stage, offset_us));
    }

    /// Offset of a stage, if recorded.
    pub fn offset_of(&self, stage: u8) -> Option<u64> {
        self.stages
            .iter()
            .find(|(s, _)| *s == stage)
            .map(|&(_, o)| o)
    }

    /// True when stages are in strictly increasing stage order with
    /// non-decreasing offsets — the invariant the wire decoder checks.
    pub fn is_well_formed(&self) -> bool {
        self.stages
            .windows(2)
            .all(|w| w[0].0 < w[1].0 && w[0].1 <= w[1].1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_are_stable() {
        assert_eq!(stage_name(STAGE_QUEUE), "queue");
        assert_eq!(stage_name(STAGE_REPLY), "reply");
        assert_eq!(stage_name(99), "unknown");
    }

    #[test]
    fn well_formedness_checks_order_and_monotonicity() {
        let mut span = TraceSpan::new(7);
        span.mark(STAGE_QUEUE, 10);
        span.mark(STAGE_BATCH, 12);
        span.mark(STAGE_SCORE, 300); // interior stages may be omitted
        span.mark(STAGE_REPLY, 305);
        assert!(span.is_well_formed());
        assert_eq!(span.offset_of(STAGE_BATCH), Some(12));
        assert_eq!(span.offset_of(STAGE_DECODE), None);

        let mut bad = TraceSpan::new(7);
        bad.mark(STAGE_BATCH, 12);
        bad.mark(STAGE_QUEUE, 10); // out of stage order
        assert!(!bad.is_well_formed());

        let mut backwards = TraceSpan::new(7);
        backwards.mark(STAGE_QUEUE, 10);
        backwards.mark(STAGE_BATCH, 5); // time went backwards
        assert!(!backwards.is_well_formed());
    }
}
