//! Telemetry core for the serving stack: histograms, counters, gauges,
//! distribution sketches, a flight recorder, and per-request trace spans.
//!
//! Everything here is built for the hot path of a scoring engine whose
//! unit of work is hundreds of microseconds: recording a sample is a
//! handful of relaxed atomic operations on pre-registered series, with no
//! allocation and no lock. The only locks in the crate guard cold paths —
//! series registration, snapshotting, the flight-recorder ring, and the
//! per-language Welford sketches (one short mutex per scored utterance).
//!
//! - [`hist`]: log-bucketed ([HDR]-style) histograms over `u64` samples
//!   with p50/p90/p99/p99.9 extraction. Sixteen sub-buckets per octave
//!   bound the relative quantile error at 1/16; values below 16 are exact.
//! - [`metrics`]: monotonic [`Counter`]s, [`Gauge`]s, Welford
//!   [`Sketch`]es (count/mean/M2 — the per-language fused-LLR drift
//!   signal), and the by-name [`Registry`] that snapshots them all
//!   without stopping the world.
//! - [`flight`]: a bounded ring of structured [`FlightEvent`]s (ejections,
//!   guard verdicts, swaps, sheds, deadline expiries) that is drainable
//!   over the wire and dumped to stderr on panic.
//! - [`span`]: stage constants and the [`TraceSpan`] a traced request
//!   accumulates as it moves queue → batch → decode → supervector →
//!   score → reply.
//!
//! [HDR]: https://github.com/HdrHistogram/HdrHistogram
//!
//! The crate is deliberately free of any protocol or serving types: the
//! wire encodings for snapshots, spans, and events live with the protocol
//! (`lre-serve`), and this crate stays a leaf every layer — engine,
//! server, router, adaptation — can depend on.

pub mod flight;
pub mod hist;
pub mod metrics;
pub mod span;

pub use flight::{
    event_name, install_panic_dump, FlightEvent, FlightRecorder, EV_DEADLINE, EV_EJECT,
    EV_GUARD_ACCEPT, EV_GUARD_REJECT, EV_READMIT, EV_ROLLBACK, EV_SHED, EV_SWAP, EV_WAL_GC,
    EV_WAL_RECOVER, EV_WAL_SEAL,
};
pub use hist::{Histogram, HistogramSummary};
pub use metrics::{Counter, Gauge, MetricValue, Registry, Sketch, SketchSummary};
pub use span::{
    stage_name, StageTimes, TraceSpan, STAGE_BATCH, STAGE_DECODE, STAGE_QUEUE, STAGE_REPLY,
    STAGE_SCORE, STAGE_SUPERVECTOR,
};
