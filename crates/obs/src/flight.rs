//! The flight recorder: a bounded ring of structured operational events.
//!
//! Counters say *how often*; the flight recorder says *what happened,
//! when, in what order* — the last N ejections, re-admissions, guard
//! verdicts (with their EER / min-Cavg deltas), generation swaps,
//! rollbacks, sheds, and deadline expiries. The ring is deliberately
//! small and bounded: it is a black box for the crash report and the
//! post-incident drill, not an event log.
//!
//! Events are drainable over the wire (protocol tag `REQ_FLIGHT` in
//! `lre-serve`) and dumped to stderr when the process panics
//! ([`install_panic_dump`]), so a replica that dies mid-rollout leaves
//! its last decisions on the console CI captures.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A backend was ejected from rotation (detail: its address).
pub const EV_EJECT: u8 = 1;
/// An ejected backend passed its probe and re-entered rotation.
pub const EV_READMIT: u8 = 2;
/// A candidate bundle passed the guard (`x` = EER delta, `y` = min-Cavg
/// delta, both candidate − parent).
pub const EV_GUARD_ACCEPT: u8 = 3;
/// A candidate bundle failed the guard (same delta payload).
pub const EV_GUARD_REJECT: u8 = 4;
/// A new model generation was installed (`a` = generation, `b` =
/// bundle checksum).
pub const EV_SWAP: u8 = 5;
/// A previous generation was reinstalled (`a` = generation after).
pub const EV_ROLLBACK: u8 = 6;
/// A request was shed unscored (queue full or admission cap).
pub const EV_SHED: u8 = 7;
/// An accepted request expired before a worker reached it.
pub const EV_DEADLINE: u8 = 8;
/// A write-ahead-log segment was sealed (`a` = segment id, `b` = raw
/// bytes, `x` = sealed bytes after compression).
pub const EV_WAL_SEAL: u8 = 9;
/// Write-ahead-log garbage collection reclaimed state (`a` = segments
/// or generations removed, `b` = bytes reclaimed).
pub const EV_WAL_GC: u8 = 10;
/// Crash recovery replayed a write-ahead log (`a` = records replayed,
/// `b` = torn tail records skipped).
pub const EV_WAL_RECOVER: u8 = 11;

/// Stable human name for an event kind (`"unknown"` for anything else,
/// so a newer peer's events still print).
pub fn event_name(kind: u8) -> &'static str {
    match kind {
        EV_EJECT => "eject",
        EV_READMIT => "readmit",
        EV_GUARD_ACCEPT => "guard_accept",
        EV_GUARD_REJECT => "guard_reject",
        EV_SWAP => "swap",
        EV_ROLLBACK => "rollback",
        EV_SHED => "shed",
        EV_DEADLINE => "deadline",
        EV_WAL_SEAL => "wal_seal",
        EV_WAL_GC => "wal_gc",
        EV_WAL_RECOVER => "wal_recover",
        _ => "unknown",
    }
}

/// One recorded event. `a`/`b` are kind-specific integers and
/// `x`/`y` kind-specific floats (see the `EV_*` docs); unused fields
/// are zero.
#[derive(Clone, Debug, PartialEq)]
pub struct FlightEvent {
    /// Monotonic sequence number (never reset, so a drained reader can
    /// detect ring overflow as a seq gap).
    pub seq: u64,
    /// Microseconds since the recorder was created.
    pub at_us: u64,
    pub kind: u8,
    /// Free-form context (a backend address, a stage name); bounded by
    /// the writer, never parsed.
    pub detail: String,
    pub a: u64,
    pub b: u64,
    pub x: f64,
    pub y: f64,
}

impl FlightEvent {
    /// The stable one-line form used by the stderr dump and
    /// `lre-client --flight` (CI greps this).
    pub fn render(&self) -> String {
        format!(
            "flight: seq={} t_us={} kind={} detail={} a={} b={} x={:.6} y={:.6}",
            self.seq,
            self.at_us,
            event_name(self.kind),
            if self.detail.is_empty() {
                "-"
            } else {
                &self.detail
            },
            self.a,
            self.b,
            self.x,
            self.y,
        )
    }
}

/// The bounded event ring. Recording takes one short mutex; events are
/// rare (ejections, swaps, sheds), never per-request-success.
pub struct FlightRecorder {
    start: Instant,
    seq: AtomicU64,
    capacity: usize,
    ring: Mutex<VecDeque<FlightEvent>>,
}

impl FlightRecorder {
    /// A recorder keeping the most recent `capacity` events (clamped to
    /// ≥ 1); older events are overwritten, their seq numbers leaving a
    /// visible gap.
    pub fn new(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            start: Instant::now(),
            seq: AtomicU64::new(0),
            capacity,
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
        }
    }

    /// Record one event. `detail` is truncated at 256 bytes so a caller
    /// can never bloat the ring.
    pub fn record(&self, kind: u8, detail: &str, a: u64, b: u64, x: f64, y: f64) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let at_us = self.start.elapsed().as_micros() as u64;
        let mut detail = detail.to_string();
        if detail.len() > 256 {
            let mut cut = 256;
            while !detail.is_char_boundary(cut) {
                cut -= 1;
            }
            detail.truncate(cut);
        }
        let ev = FlightEvent {
            seq,
            at_us,
            kind,
            detail,
            a,
            b,
            x,
            y,
        };
        let mut ring = self.ring.lock().expect("flight ring poisoned");
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(ev);
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("flight ring poisoned").len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever recorded (buffered + overwritten).
    pub fn recorded(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Copy the buffered events, oldest first, leaving the ring intact.
    pub fn peek(&self) -> Vec<FlightEvent> {
        self.ring
            .lock()
            .expect("flight ring poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// Take the buffered events, oldest first, emptying the ring.
    pub fn drain(&self) -> Vec<FlightEvent> {
        self.ring
            .lock()
            .expect("flight ring poisoned")
            .drain(..)
            .collect()
    }

    /// Print every buffered event to stderr (the panic path; also useful
    /// at orderly shutdown).
    pub fn dump_to_stderr(&self) {
        for ev in self.peek() {
            eprintln!("{}", ev.render());
        }
    }
}

/// Chain a panic hook that dumps the recorder to stderr after the
/// default hook has printed the panic itself. Call once per process.
pub fn install_panic_dump(recorder: &Arc<FlightRecorder>) {
    let recorder = Arc::clone(recorder);
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        prev(info);
        eprintln!("flight recorder ({} events buffered):", recorder.len());
        recorder.dump_to_stderr();
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_seq_is_monotonic() {
        let r = FlightRecorder::new(3);
        for i in 0..5u64 {
            r.record(EV_SHED, "q", i, 0, 0.0, 0.0);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.recorded(), 5);
        let evs = r.peek();
        // Oldest two were overwritten: the survivors are seq 2, 3, 4.
        assert_eq!(evs.iter().map(|e| e.seq).collect::<Vec<_>>(), [2, 3, 4]);
        assert_eq!(evs.iter().map(|e| e.a).collect::<Vec<_>>(), [2, 3, 4]);
    }

    #[test]
    fn drain_empties_peek_does_not() {
        let r = FlightRecorder::new(8);
        r.record(EV_EJECT, "127.0.0.1:7713", 0, 0, 0.0, 0.0);
        assert_eq!(r.peek().len(), 1);
        assert_eq!(r.len(), 1);
        let drained = r.drain();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].kind, EV_EJECT);
        assert_eq!(drained[0].detail, "127.0.0.1:7713");
        assert!(r.is_empty());
        // Seq keeps counting across the drain.
        r.record(EV_READMIT, "127.0.0.1:7713", 0, 0, 0.0, 0.0);
        assert_eq!(r.peek()[0].seq, 1);
    }

    #[test]
    fn detail_is_truncated() {
        let r = FlightRecorder::new(2);
        let long = "x".repeat(1000);
        r.record(EV_SWAP, &long, 1, 2, 0.5, -0.5);
        assert_eq!(r.peek()[0].detail.len(), 256);
    }

    #[test]
    fn render_is_stable_and_greppable() {
        let r = FlightRecorder::new(2);
        r.record(EV_GUARD_REJECT, "cand", 4, 9, 0.03125, -0.5);
        let line = r.peek()[0].render();
        assert!(line.starts_with("flight: seq=0 t_us="));
        assert!(line.contains(" kind=guard_reject detail=cand a=4 b=9 x=0.031250 y=-0.500000"));
        let empty = FlightEvent {
            seq: 1,
            at_us: 2,
            kind: EV_DEADLINE,
            detail: String::new(),
            a: 0,
            b: 0,
            x: 0.0,
            y: 0.0,
        };
        assert!(empty.render().contains("kind=deadline detail=- "));
    }

    #[test]
    fn event_names_cover_all_kinds() {
        for kind in [
            EV_EJECT,
            EV_READMIT,
            EV_GUARD_ACCEPT,
            EV_GUARD_REJECT,
            EV_SWAP,
            EV_ROLLBACK,
            EV_SHED,
            EV_DEADLINE,
            EV_WAL_SEAL,
            EV_WAL_GC,
            EV_WAL_RECOVER,
        ] {
            assert_ne!(event_name(kind), "unknown");
        }
        assert_eq!(event_name(0), "unknown");
        assert_eq!(event_name(200), "unknown");
    }
}
