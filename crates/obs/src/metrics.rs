//! Named metric series and the registry that snapshots them.
//!
//! Series are registered once (typically at startup) and the returned
//! `Arc` is held by the hot path, so recording never touches the
//! registry lock. A [`Registry::snapshot`] walks the name map, loads
//! every series with relaxed atomics, and returns the entries in
//! name-sorted order — the exact order the stats-v3 wire frame and
//! `lre-client --metrics` print.

use crate::hist::{Histogram, HistogramSummary};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing count.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn new() -> Counter {
        Counter::default()
    }

    pub fn incr(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins level (queue depth, inflight, generation).
#[derive(Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    pub fn new() -> Gauge {
        Gauge::default()
    }

    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A Welford running-moments sketch: count, mean, and M2 (the sum of
/// squared deviations, so `variance = m2 / count`). The serving stack
/// keeps one per top-1 language over the fused detection LLR — the
/// score-distribution drift signal the adaptation loop can key off.
///
/// Updates take a short mutex (three f64 field writes); this is recorded
/// once per scored utterance, not per sample, so the lock is never
/// contended for longer than the update itself.
#[derive(Default)]
pub struct Sketch {
    state: Mutex<SketchState>,
}

#[derive(Clone, Copy, Default)]
struct SketchState {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Sketch {
    pub fn new() -> Sketch {
        Sketch::default()
    }

    pub fn record(&self, x: f64) {
        let mut s = self.state.lock().expect("sketch poisoned");
        s.count += 1;
        let delta = x - s.mean;
        s.mean += delta / s.count as f64;
        s.m2 += delta * (x - s.mean);
    }

    pub fn summary(&self) -> SketchSummary {
        let s = self.state.lock().expect("sketch poisoned");
        SketchSummary {
            count: s.count,
            mean: s.mean,
            m2: s.m2,
        }
    }
}

/// The three numbers a sketch puts on the wire.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SketchSummary {
    pub count: u64,
    pub mean: f64,
    pub m2: f64,
}

impl SketchSummary {
    /// Population variance (`0` while empty).
    pub fn variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }
}

/// One registered series, as held by the registry.
enum Series {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
    Sketch(Arc<Sketch>),
}

/// A point-in-time value of one series (what goes on the wire).
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    Counter(u64),
    Gauge(u64),
    Histogram(HistogramSummary),
    Sketch(SketchSummary),
}

impl MetricValue {
    /// Stable kind tag, shared by the wire encoding and the human dump.
    pub fn kind(&self) -> u8 {
        match self {
            MetricValue::Counter(_) => 0,
            MetricValue::Gauge(_) => 1,
            MetricValue::Histogram(_) => 2,
            MetricValue::Sketch(_) => 3,
        }
    }
}

/// Name → series map. Registration is get-or-create and idempotent;
/// re-registering a name as a different kind is a programming error and
/// panics (metric names are compile-time constants in this codebase).
#[derive(Default)]
pub struct Registry {
    series: Mutex<BTreeMap<String, Series>>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.series.lock().expect("registry poisoned");
        let s = map
            .entry(name.to_string())
            .or_insert_with(|| Series::Counter(Arc::new(Counter::new())));
        match s {
            Series::Counter(c) => Arc::clone(c),
            _ => panic!("metric {name} already registered as a different kind"),
        }
    }

    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.series.lock().expect("registry poisoned");
        let s = map
            .entry(name.to_string())
            .or_insert_with(|| Series::Gauge(Arc::new(Gauge::new())));
        match s {
            Series::Gauge(g) => Arc::clone(g),
            _ => panic!("metric {name} already registered as a different kind"),
        }
    }

    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.series.lock().expect("registry poisoned");
        let s = map
            .entry(name.to_string())
            .or_insert_with(|| Series::Histogram(Arc::new(Histogram::new())));
        match s {
            Series::Histogram(h) => Arc::clone(h),
            _ => panic!("metric {name} already registered as a different kind"),
        }
    }

    pub fn sketch(&self, name: &str) -> Arc<Sketch> {
        let mut map = self.series.lock().expect("registry poisoned");
        let s = map
            .entry(name.to_string())
            .or_insert_with(|| Series::Sketch(Arc::new(Sketch::new())));
        match s {
            Series::Sketch(sk) => Arc::clone(sk),
            _ => panic!("metric {name} already registered as a different kind"),
        }
    }

    /// Snapshot every series, name-sorted. Writers are never stopped:
    /// each series is loaded with the same relaxed atomics the hot path
    /// writes with.
    pub fn snapshot(&self) -> Vec<(String, MetricValue)> {
        let map = self.series.lock().expect("registry poisoned");
        map.iter()
            .map(|(name, s)| {
                let v = match s {
                    Series::Counter(c) => MetricValue::Counter(c.get()),
                    Series::Gauge(g) => MetricValue::Gauge(g.get()),
                    Series::Histogram(h) => MetricValue::Histogram(h.summary()),
                    Series::Sketch(sk) => MetricValue::Sketch(sk.summary()),
                };
                (name.clone(), v)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_shared() {
        let r = Registry::new();
        let a = r.counter("x.count");
        let b = r.counter("x.count");
        a.incr();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(r.counter("x.count").get(), 3);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("x");
        let _ = r.gauge("x");
    }

    #[test]
    fn snapshot_is_name_sorted_and_typed() {
        let r = Registry::new();
        r.gauge("b.gauge").set(7);
        r.counter("a.count").add(3);
        r.histogram("c.hist").record(100);
        r.sketch("d.sketch").record(1.5);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a.count", "b.gauge", "c.hist", "d.sketch"]);
        assert_eq!(snap[0].1, MetricValue::Counter(3));
        assert_eq!(snap[1].1, MetricValue::Gauge(7));
        match &snap[2].1 {
            MetricValue::Histogram(h) => {
                assert_eq!(h.count, 1);
                assert_eq!(h.max, 100);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
        match &snap[3].1 {
            MetricValue::Sketch(s) => {
                assert_eq!(s.count, 1);
                assert!((s.mean - 1.5).abs() < 1e-12);
                assert_eq!(s.variance(), 0.0);
            }
            other => panic!("expected sketch, got {other:?}"),
        }
    }

    #[test]
    fn welford_moments_match_direct_computation() {
        let sk = Sketch::new();
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        for x in xs {
            sk.record(x);
        }
        let s = sk.summary();
        assert_eq!(s.count, xs.len() as u64);
        let mean: f64 = xs.iter().sum::<f64>() / xs.len() as f64;
        let var: f64 = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((s.mean - mean).abs() < 1e-12);
        assert!((s.variance() - var).abs() < 1e-12);
    }
}
