//! Property-based tests for supervectors and TFLLR scaling.

use lre_artifact::{check_damage_detected, ArtifactRead, ArtifactWrite};
use lre_lattice::{ConfusionNetwork, SlotEntry};
use lre_vsm::{SparseVec, SupervectorBuilder, TfllrScaler};
use proptest::prelude::*;

fn network(p: u16) -> impl Strategy<Value = ConfusionNetwork> {
    prop::collection::vec(prop::collection::vec((0..p, 0.1f32..1.0), 1..4), 2..10).prop_map(
        |slots| {
            let slots = slots
                .into_iter()
                .map(|mut entries| {
                    entries.sort_by_key(|e| e.0);
                    entries.dedup_by_key(|e| e.0);
                    let total: f32 = entries.iter().map(|e| e.1).sum();
                    entries
                        .into_iter()
                        .map(|(phone, w)| SlotEntry {
                            phone,
                            prob: w / total,
                        })
                        .collect::<Vec<_>>()
                })
                .collect();
            ConfusionNetwork::new(slots)
        },
    )
}

proptest! {
    #[test]
    fn supervector_blocks_are_probability_distributions(net in network(10)) {
        let b = SupervectorBuilder::new(10, 2);
        let sv = b.build(&net);
        prop_assert!(sv.max_dim() <= b.dim());
        prop_assert!(sv.values().iter().all(|&v| (0.0..=1.0 + 1e-5).contains(&v)));
        let uni_end = b.block_offset(2) as u32;
        let uni: f32 = sv.iter().filter(|&(i, _)| i < uni_end).map(|(_, v)| v).sum();
        prop_assert!((uni - 1.0).abs() < 1e-3, "unigram mass {uni}");
        if net.num_slots() >= 2 {
            let bi: f32 = sv.iter().filter(|&(i, _)| i >= uni_end).map(|(_, v)| v).sum();
            prop_assert!((bi - 1.0).abs() < 1e-3, "bigram mass {bi}");
        }
    }

    #[test]
    fn tfllr_kernel_equals_explicit_eq5(
        nets in prop::collection::vec(network(6), 2..6),
    ) {
        let b = SupervectorBuilder::new(6, 1);
        let svs: Vec<SparseVec> = nets.iter().map(|n| b.build(n)).collect();
        let floor = 1e-6f32;
        let scaler = TfllrScaler::fit(&svs, b.dim(), floor);

        // Explicit Eq. 5: Σ_q a_q b_q / max(p̄_q, floor).
        let mut mean = vec![0.0f64; b.dim()];
        for sv in &svs {
            for (i, v) in sv.iter() {
                mean[i as usize] += v as f64;
            }
        }
        for m in mean.iter_mut() {
            *m /= svs.len() as f64;
        }
        let (a, c) = (&svs[0], &svs[1]);
        let mut expect = 0.0f64;
        for (i, va) in a.iter() {
            let vb = c.get(i);
            if vb != 0.0 {
                expect += (va as f64) * (vb as f64) / mean[i as usize].max(floor as f64);
            }
        }
        let got = scaler.transformed(a).dot_sparse(&scaler.transformed(c)) as f64;
        prop_assert!((got - expect).abs() < 1e-3 * (1.0 + expect.abs()),
            "kernel {got} vs Eq.5 {expect}");
    }

    #[test]
    fn tfllr_transform_is_linear(net in network(8), alpha in 0.1f32..5.0) {
        let b = SupervectorBuilder::new(8, 2);
        let sv = b.build(&net);
        let scaler = TfllrScaler::fit(std::slice::from_ref(&sv), b.dim(), 1e-5);
        let mut scaled_first = sv.clone();
        scaled_first.scale(alpha);
        let t1 = scaler.transformed(&scaled_first);
        let mut t2 = scaler.transformed(&sv);
        t2.scale(alpha);
        for ((i1, v1), (i2, v2)) in t1.iter().zip(t2.iter()) {
            prop_assert_eq!(i1, i2);
            prop_assert!((v1 - v2).abs() < 1e-4 * (1.0 + v2.abs()));
        }
    }

    #[test]
    fn sparse_from_pairs_total_mass_preserved(pairs in prop::collection::vec((0u32..32, 0.0f32..1.0), 0..50)) {
        let expect: f32 = pairs.iter().map(|(_, v)| v).sum();
        let sv = SparseVec::from_pairs(pairs);
        let got: f32 = sv.values().iter().sum();
        prop_assert!((got - expect).abs() < 1e-3 * (1.0 + expect));
        // Indices strictly increasing.
        for w in sv.indices().windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn vsm_artifact_roundtrips_transform_bit_identically(
        nets in prop::collection::vec(network(6), 2..6),
        probe in 0usize..1 << 16,
    ) {
        let b = SupervectorBuilder::new(6, 2);
        let svs: Vec<SparseVec> = nets.iter().map(|n| b.build(n)).collect();
        let scaler = TfllrScaler::fit(&svs, b.dim(), 1e-4);

        // Builder config round trip: an identically-configured builder must
        // emit identical supervectors.
        let b_sealed = b.to_artifact_bytes();
        let b_back = SupervectorBuilder::from_artifact_bytes(&b_sealed).expect("builder round trip");
        for (net, sv) in nets.iter().zip(&svs) {
            let sv2 = b_back.build(net);
            prop_assert_eq!(sv.indices(), sv2.indices());
            for (v, w) in sv.values().iter().zip(sv2.values()) {
                prop_assert_eq!(v.to_bits(), w.to_bits());
            }
        }
        check_damage_detected::<SupervectorBuilder>(&b_sealed, probe);

        // Scaler round trip: TFLLR scaling must be bit-identical.
        let s_sealed = scaler.to_artifact_bytes();
        let s_back = TfllrScaler::from_artifact_bytes(&s_sealed).expect("scaler round trip");
        for sv in &svs {
            let t1 = scaler.transformed(sv);
            let t2 = s_back.transformed(sv);
            prop_assert_eq!(t1.indices(), t2.indices());
            for (v, w) in t1.values().iter().zip(t2.values()) {
                prop_assert_eq!(v.to_bits(), w.to_bits());
            }
        }
        check_damage_detected::<TfllrScaler>(&s_sealed, probe);
    }
}
