//! Vector space modeling features: phonotactic supervectors.
//!
//! §2.2-2.3 of the paper: the probabilities of phonetic N-grams in an
//! utterance's lattice form a supervector
//! `φ(x) = [p(d₁|ℓ), p(d₂|ℓ), …, p(d_F|ℓ)]` with `F = f_nᴺ` (Eq. 3), and the
//! SVM uses the TFLLR kernel, equivalent to scaling each component by
//! `1/√p(d_q|ℓ_all)` where `ℓ_all` is the probability over all lattices
//! (Eq. 5). This crate provides:
//!
//! - [`SparseVec`]: the sorted sparse vector type used throughout the
//!   classifier stack (supervectors are overwhelmingly sparse),
//! - [`SupervectorBuilder`]: confusion network → concatenated per-order
//!   N-gram probability blocks,
//! - [`TfllrScaler`]: background statistics + the 1/√p scaling.

mod sparse;
mod supervector;
mod tfllr;

pub use sparse::SparseVec;
pub use supervector::SupervectorBuilder;
pub use tfllr::TfllrScaler;
