//! Confusion network → phonotactic probability supervector (Eq. 3).

use crate::sparse::SparseVec;
use lre_lattice::{expected_ngram_counts_cn, ConfusionNetwork};

/// Builds supervectors for one recognizer: concatenated blocks of
/// normalized expected-count probabilities for orders `1..=max_order`.
///
/// The paper's `F = f_nᴺ` dimension is the top-order block; like standard
/// PR-SVM implementations we also keep the lower-order blocks, which
/// corresponds to `d_i = h_i…h_{i+n-1}, n ≤ N` in Eq. 3's surrounding text.
#[derive(Clone, Copy, Debug)]
pub struct SupervectorBuilder {
    num_phones: usize,
    max_order: usize,
}

impl SupervectorBuilder {
    pub fn new(num_phones: usize, max_order: usize) -> SupervectorBuilder {
        assert!(num_phones > 0 && (1..=3).contains(&max_order));
        SupervectorBuilder {
            num_phones,
            max_order,
        }
    }

    pub fn num_phones(&self) -> usize {
        self.num_phones
    }

    pub fn max_order(&self) -> usize {
        self.max_order
    }

    /// Total supervector dimension `Σ_{n=1..N} Pⁿ`.
    pub fn dim(&self) -> usize {
        (1..=self.max_order)
            .map(|n| self.num_phones.pow(n as u32))
            .sum()
    }

    /// Offset of order-`n`'s block within the supervector.
    pub fn block_offset(&self, order: usize) -> usize {
        (1..order).map(|n| self.num_phones.pow(n as u32)).sum()
    }

    /// Build the probability supervector for a decoded utterance: each
    /// order's expected counts are normalized by that order's total mass
    /// (Eq. 2's denominator), then placed in its block.
    pub fn build(&self, network: &ConfusionNetwork) -> SparseVec {
        let mut pairs: Vec<(u32, f32)> = Vec::new();
        for order in 1..=self.max_order {
            let counts = expected_ngram_counts_cn(network, order, self.num_phones);
            let total = counts.total();
            if total <= 0.0 {
                continue;
            }
            let offset = self.block_offset(order) as u32;
            for (key, c) in counts.iter() {
                pairs.push((offset + key, c / total));
            }
        }
        SparseVec::from_pairs(pairs)
    }
}

impl lre_artifact::ArtifactWrite for SupervectorBuilder {
    const KIND: [u8; 4] = *b"SVBL";
    const VERSION: u32 = 1;

    fn write_payload(&self, w: &mut lre_artifact::ArtifactWriter) {
        w.put_u32(self.num_phones as u32);
        w.put_u32(self.max_order as u32);
    }
}

impl lre_artifact::ArtifactRead for SupervectorBuilder {
    fn read_payload(
        r: &mut lre_artifact::ArtifactReader,
    ) -> Result<SupervectorBuilder, lre_artifact::ArtifactError> {
        let num_phones = r.get_u32()? as usize;
        let max_order = r.get_u32()? as usize;
        if num_phones == 0 || !(1..=3).contains(&max_order) {
            return Err(lre_artifact::ArtifactError::Corrupt(
                "supervector builder shape out of range",
            ));
        }
        Ok(SupervectorBuilder {
            num_phones,
            max_order,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lre_lattice::{Slot, SlotEntry};

    fn net() -> ConfusionNetwork {
        let mk = |phone: u16| -> Slot { vec![SlotEntry { phone, prob: 1.0 }] };
        ConfusionNetwork::new(vec![mk(0), mk(1), mk(0), mk(1)])
    }

    #[test]
    fn dims_and_offsets() {
        let b = SupervectorBuilder::new(4, 2);
        assert_eq!(b.dim(), 4 + 16);
        assert_eq!(b.block_offset(1), 0);
        assert_eq!(b.block_offset(2), 4);
        let b3 = SupervectorBuilder::new(3, 3);
        assert_eq!(b3.dim(), 3 + 9 + 27);
        assert_eq!(b3.block_offset(3), 12);
    }

    #[test]
    fn deterministic_network_probabilities() {
        let b = SupervectorBuilder::new(4, 2);
        let sv = b.build(&net());
        // Unigrams: phones 0 and 1 each appear twice of 4 slots ⇒ 0.5.
        assert!((sv.get(0) - 0.5).abs() < 1e-6);
        assert!((sv.get(1) - 0.5).abs() < 1e-6);
        // Bigrams (3 windows): 0→1 twice, 1→0 once.
        let off = b.block_offset(2) as u32;
        let key01 = 1;
        let key10 = 4; // 1*4 + 0
        assert!((sv.get(off + key01) - 2.0 / 3.0).abs() < 1e-6);
        assert!((sv.get(off + key10) - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn blocks_each_sum_to_one() {
        let b = SupervectorBuilder::new(4, 2);
        let sv = b.build(&net());
        let uni_block_end = b.block_offset(2) as u32;
        let uni_sum: f32 = sv
            .iter()
            .filter(|&(i, _)| i < uni_block_end)
            .map(|(_, v)| v)
            .sum();
        let bi_sum: f32 = sv
            .iter()
            .filter(|&(i, _)| i >= uni_block_end)
            .map(|(_, v)| v)
            .sum();
        assert!((uni_sum - 1.0).abs() < 1e-5);
        assert!((bi_sum - 1.0).abs() < 1e-5);
    }

    #[test]
    fn empty_network_gives_empty_vector() {
        let b = SupervectorBuilder::new(4, 2);
        let sv = b.build(&ConfusionNetwork::new(vec![]));
        assert!(sv.is_empty());
    }

    #[test]
    fn vector_fits_declared_dim() {
        let b = SupervectorBuilder::new(4, 2);
        let sv = b.build(&net());
        assert!(sv.max_dim() <= b.dim());
    }
}
