//! Sorted sparse vector.

/// A sparse vector with strictly increasing indices.
///
/// This is the feature representation for the SVM stack: a bigram
/// supervector over a 64-phone set has 4,160 nominal dimensions but an
/// utterance only touches a few hundred of them.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SparseVec {
    indices: Vec<u32>,
    values: Vec<f32>,
}

impl SparseVec {
    pub fn new() -> SparseVec {
        SparseVec::default()
    }

    /// Build from parallel arrays; panics unless indices are strictly
    /// increasing.
    pub fn from_parts(indices: Vec<u32>, values: Vec<f32>) -> SparseVec {
        assert_eq!(indices.len(), values.len());
        for w in indices.windows(2) {
            assert!(w[0] < w[1], "indices must be strictly increasing");
        }
        SparseVec { indices, values }
    }

    /// Build from unsorted `(index, value)` pairs, combining duplicates.
    pub fn from_pairs(mut pairs: Vec<(u32, f32)>) -> SparseVec {
        pairs.sort_unstable_by_key(|&(i, _)| i);
        let mut indices = Vec::with_capacity(pairs.len());
        let mut values = Vec::with_capacity(pairs.len());
        for (i, v) in pairs {
            if indices.last() == Some(&i) {
                *values.last_mut().unwrap() += v;
            } else {
                indices.push(i);
                values.push(v);
            }
        }
        SparseVec { indices, values }
    }

    /// Number of stored (non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Iterate `(index, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (u32, f32)> + '_ {
        self.indices
            .iter()
            .copied()
            .zip(self.values.iter().copied())
    }

    /// Value at `index` (zero if absent) — O(log nnz).
    pub fn get(&self, index: u32) -> f32 {
        match self.indices.binary_search(&index) {
            Ok(pos) => self.values[pos],
            Err(_) => 0.0,
        }
    }

    /// Dot product with a dense weight slice.
    #[inline]
    pub fn dot_dense(&self, dense: &[f32]) -> f32 {
        let mut acc = 0.0f32;
        for (i, v) in self.iter() {
            acc += v * dense[i as usize];
        }
        acc
    }

    /// `dense += alpha * self`.
    #[inline]
    pub fn axpy_into(&self, alpha: f32, dense: &mut [f32]) {
        for (i, v) in self.iter() {
            dense[i as usize] += alpha * v;
        }
    }

    /// Sparse-sparse dot product (merge join).
    pub fn dot_sparse(&self, other: &SparseVec) -> f32 {
        let (mut a, mut b) = (0usize, 0usize);
        let mut acc = 0.0f32;
        while a < self.nnz() && b < other.nnz() {
            match self.indices[a].cmp(&other.indices[b]) {
                std::cmp::Ordering::Less => a += 1,
                std::cmp::Ordering::Greater => b += 1,
                std::cmp::Ordering::Equal => {
                    acc += self.values[a] * other.values[b];
                    a += 1;
                    b += 1;
                }
            }
        }
        acc
    }

    /// Squared Euclidean norm.
    pub fn norm_sq(&self) -> f32 {
        self.values.iter().map(|v| v * v).sum()
    }

    /// Scale all values in place.
    pub fn scale(&mut self, alpha: f32) {
        for v in &mut self.values {
            *v *= alpha;
        }
    }

    /// Apply a per-dimension multiplier from a dense table.
    pub fn scale_by_table(&mut self, table: &[f32]) {
        for (i, v) in self.indices.iter().zip(&mut self.values) {
            *v *= table[*i as usize];
        }
    }

    /// Largest index + 1, or 0 when empty.
    pub fn max_dim(&self) -> usize {
        self.indices.last().map_or(0, |&i| i as usize + 1)
    }
}

impl lre_artifact::ArtifactWrite for SparseVec {
    const KIND: [u8; 4] = *b"SPVC";
    const VERSION: u32 = 1;

    fn write_payload(&self, w: &mut lre_artifact::ArtifactWriter) {
        w.put_u32_slice(&self.indices);
        w.put_f32_slice(&self.values);
    }
}

impl lre_artifact::ArtifactRead for SparseVec {
    fn read_payload(
        r: &mut lre_artifact::ArtifactReader,
    ) -> Result<SparseVec, lre_artifact::ArtifactError> {
        use lre_artifact::ArtifactError;
        let indices = r.get_u32_slice()?;
        let values = r.get_f32_slice()?;
        if indices.len() != values.len() {
            return Err(ArtifactError::Corrupt(
                "sparse index/value lengths disagree",
            ));
        }
        // `from_parts` panics on unsorted input; corrupt bytes must not.
        if indices.windows(2).any(|w| w[0] >= w[1]) {
            return Err(ArtifactError::Corrupt(
                "sparse indices not strictly increasing",
            ));
        }
        Ok(SparseVec { indices, values })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(pairs: &[(u32, f32)]) -> SparseVec {
        SparseVec::from_pairs(pairs.to_vec())
    }

    #[test]
    fn from_pairs_sorts_and_merges() {
        let s = v(&[(5, 1.0), (2, 2.0), (5, 3.0)]);
        assert_eq!(s.indices(), &[2, 5]);
        assert_eq!(s.values(), &[2.0, 4.0]);
    }

    #[test]
    fn get_present_and_absent() {
        let s = v(&[(1, 0.5), (10, 2.5)]);
        assert_eq!(s.get(1), 0.5);
        assert_eq!(s.get(10), 2.5);
        assert_eq!(s.get(3), 0.0);
    }

    #[test]
    fn dot_dense_matches_manual() {
        let s = v(&[(0, 1.0), (2, 3.0)]);
        let dense = [2.0, 100.0, -1.0];
        assert_eq!(s.dot_dense(&dense), 2.0 - 3.0);
    }

    #[test]
    fn axpy_into_updates_dense() {
        let s = v(&[(1, 2.0)]);
        let mut dense = vec![0.0; 3];
        s.axpy_into(0.5, &mut dense);
        assert_eq!(dense, vec![0.0, 1.0, 0.0]);
    }

    #[test]
    fn sparse_sparse_dot() {
        let a = v(&[(0, 1.0), (3, 2.0), (7, 4.0)]);
        let b = v(&[(3, 5.0), (8, 1.0)]);
        assert_eq!(a.dot_sparse(&b), 10.0);
        assert_eq!(b.dot_sparse(&a), 10.0);
        assert_eq!(a.dot_sparse(&SparseVec::new()), 0.0);
    }

    #[test]
    fn norm_and_scale() {
        let mut s = v(&[(0, 3.0), (1, 4.0)]);
        assert_eq!(s.norm_sq(), 25.0);
        s.scale(2.0);
        assert_eq!(s.norm_sq(), 100.0);
    }

    #[test]
    fn scale_by_table() {
        let mut s = v(&[(0, 1.0), (2, 2.0)]);
        s.scale_by_table(&[10.0, 0.0, 0.5]);
        assert_eq!(s.values(), &[10.0, 1.0]);
    }

    #[test]
    #[should_panic]
    fn unsorted_parts_rejected() {
        let _ = SparseVec::from_parts(vec![3, 1], vec![1.0, 1.0]);
    }
}
