//! TFLLR scaling (Eq. 5): per-dimension `1/√p(d_q | ℓ_all)`.

use crate::sparse::SparseVec;

/// Term-frequency log-likelihood-ratio scaler.
///
/// Fitted on the training supervectors: `p(d_q|ℓ_all)` is the mean
/// probability of N-gram `d_q` across all lattices; the kernel of Eq. 5 is
/// then an inner product of vectors whose components are divided by
/// `√p(d_q|ℓ_all)`. Unseen/rare dimensions are floored so the scale stays
/// bounded (standard practice; otherwise a single unseen test N-gram would
/// dominate the kernel).
#[derive(Clone, Debug)]
pub struct TfllrScaler {
    /// Per-dimension multiplier `min(1/√p̄_q, cap)`.
    scale: Vec<f32>,
}

impl TfllrScaler {
    /// Fit on training supervectors. `dim` is the full supervector
    /// dimension; `floor` is the minimum background probability (the scale
    /// cap is `1/√floor`).
    pub fn fit(train: &[SparseVec], dim: usize, floor: f32) -> TfllrScaler {
        assert!(floor > 0.0);
        let mut mean = vec![0.0f64; dim];
        for sv in train {
            for (i, v) in sv.iter() {
                mean[i as usize] += v as f64;
            }
        }
        let n = train.len().max(1) as f64;
        let scale = mean
            .iter()
            .map(|&m| {
                let p = (m / n).max(floor as f64);
                (1.0 / p.sqrt()) as f32
            })
            .collect();
        TfllrScaler { scale }
    }

    /// Uniform (identity) scaler of a given dimension — useful as an
    /// ablation baseline for the TFLLR kernel.
    pub fn identity(dim: usize) -> TfllrScaler {
        TfllrScaler {
            scale: vec![1.0; dim],
        }
    }

    pub fn dim(&self) -> usize {
        self.scale.len()
    }

    /// Scale factor for dimension `i`.
    pub fn factor(&self, i: usize) -> f32 {
        self.scale[i]
    }

    /// Apply in place: `v_q ← v_q / √p(d_q|ℓ_all)`.
    pub fn transform(&self, sv: &mut SparseVec) {
        sv.scale_by_table(&self.scale);
    }

    /// Convenience: transformed copy.
    pub fn transformed(&self, sv: &SparseVec) -> SparseVec {
        let mut out = sv.clone();
        self.transform(&mut out);
        out
    }
}

impl lre_artifact::ArtifactWrite for TfllrScaler {
    const KIND: [u8; 4] = *b"TFLR";
    const VERSION: u32 = 1;

    fn write_payload(&self, w: &mut lre_artifact::ArtifactWriter) {
        w.put_f32_slice(&self.scale);
    }
}

impl lre_artifact::ArtifactRead for TfllrScaler {
    fn read_payload(
        r: &mut lre_artifact::ArtifactReader,
    ) -> Result<TfllrScaler, lre_artifact::ArtifactError> {
        let scale = r.get_f32_slice()?;
        if scale.is_empty() {
            return Err(lre_artifact::ArtifactError::Corrupt("empty TFLLR table"));
        }
        Ok(TfllrScaler { scale })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(pairs: &[(u32, f32)]) -> SparseVec {
        SparseVec::from_pairs(pairs.to_vec())
    }

    #[test]
    fn tfllr_kernel_matches_eq5() {
        // Two "utterances" over 2 dims with background p = mean.
        let train = vec![sv(&[(0, 0.8), (1, 0.2)]), sv(&[(0, 0.4), (1, 0.6)])];
        let scaler = TfllrScaler::fit(&train, 2, 1e-6);
        // p_all = [0.6, 0.4]
        let a = scaler.transformed(&train[0]);
        let b = scaler.transformed(&train[1]);
        let got = a.dot_sparse(&b);
        let expect = (0.8 * 0.4) / 0.6 + (0.2 * 0.6) / 0.4;
        assert!((got - expect).abs() < 1e-5, "{got} vs {expect}");
    }

    #[test]
    fn frequent_terms_are_downweighted() {
        let train = vec![sv(&[(0, 0.9), (1, 0.1)])];
        let scaler = TfllrScaler::fit(&train, 2, 1e-6);
        assert!(scaler.factor(0) < scaler.factor(1));
    }

    #[test]
    fn floor_caps_unseen_dimensions() {
        let train = vec![sv(&[(0, 1.0)])];
        let scaler = TfllrScaler::fit(&train, 3, 0.01);
        // Dimension 2 never seen: scale = 1/√0.01 = 10.
        assert!((scaler.factor(2) - 10.0).abs() < 1e-5);
    }

    #[test]
    fn identity_scaler_is_noop() {
        let scaler = TfllrScaler::identity(4);
        let v = sv(&[(1, 0.5), (3, 0.25)]);
        assert_eq!(scaler.transformed(&v), v);
    }

    #[test]
    fn transform_only_touches_present_indices() {
        let train = vec![sv(&[(0, 0.5), (1, 0.5)])];
        let scaler = TfllrScaler::fit(&train, 2, 1e-6);
        let t = scaler.transformed(&sv(&[(1, 0.5)]));
        assert_eq!(t.nnz(), 1);
        assert!((t.get(1) - 0.5 / (0.5f32).sqrt()).abs() < 1e-5);
    }
}
