//! Acoustic language recognition: per-language GMMs over SDC features.
//!
//! §1 of the paper: "acoustic language recognition (LR) systems [3] and
//! phonotactic LR systems [2] are both widely used". This crate is the
//! acoustic family — the Torres-Carrasquillo-style system: MFCC base
//! cepstra → shifted delta cepstra → one diagonal GMM per target language →
//! average frame log-likelihood scores, normalized against the pooled
//! background model. It serves as a comparison baseline for the
//! reproduction's phonotactic PPRVSM/DBA stack (see the
//! `acoustic_vs_phonotactic` bench binary).

use lre_am::DiagGmm;
use lre_corpus::{render_utterance, Dataset, DeriveRng, LanguageId, UttSpec};
use lre_dsp::{cmvn_in_place, mfcc, sdc, FrameMatrix, MfccConfig, SdcConfig};
use lre_eval::ScoreMatrix;
use lre_phone::UniversalInventory;
use rayon::prelude::*;

/// Configuration for the acoustic system.
#[derive(Clone, Debug)]
pub struct AcousticConfig {
    pub sdc: SdcConfig,
    /// Gaussians per language model.
    pub mixtures: usize,
    pub em_iters: usize,
    pub seed: u64,
}

impl Default for AcousticConfig {
    fn default() -> Self {
        Self {
            sdc: SdcConfig::default(),
            mixtures: 16,
            em_iters: 4,
            seed: 11,
        }
    }
}

/// A trained acoustic LR system: one GMM per target language + a pooled
/// background GMM for score normalization.
pub struct AcousticSystem {
    cfg: AcousticConfig,
    models: Vec<DiagGmm>,
    background: DiagGmm,
}

/// SDC feature extraction used by the system (per-utterance CMVN on the SDC
/// stream — acoustic systems normalize per utterance since there is no
/// cross-language phone-decoding step to destabilize).
pub fn acoustic_features(samples: &[f32], cfg: &SdcConfig) -> FrameMatrix {
    let base = mfcc(samples, &MfccConfig::default());
    let mut s = sdc(&base, cfg);
    cmvn_in_place(&mut s);
    s
}

impl AcousticSystem {
    /// Train on the dataset's (labelled) train split.
    pub fn train(ds: &Dataset, inv: &UniversalInventory, cfg: &AcousticConfig) -> AcousticSystem {
        let dim = cfg.sdc.dim();
        // Collect SDC frames per language (parallel over utterances).
        let per_utt: Vec<(usize, Vec<f32>)> = ds
            .train
            .par_iter()
            .map(|u| {
                let r = render_utterance(u, ds.language(u.language), inv);
                let f = acoustic_features(&r.samples, &cfg.sdc);
                (u.language.target_index().unwrap(), f.as_slice().to_vec())
            })
            .collect();

        let k = LanguageId::targets().len();
        let mut frames_by_lang: Vec<Vec<f32>> = vec![Vec::new(); k];
        let mut all_frames: Vec<f32> = Vec::new();
        for (lang, frames) in per_utt {
            frames_by_lang[lang].extend_from_slice(&frames);
            all_frames.extend_from_slice(&frames);
        }

        let node = DeriveRng::new(cfg.seed);
        let models: Vec<DiagGmm> = frames_by_lang
            .par_iter()
            .enumerate()
            .map(|(l, data)| {
                let mut rng = node.derive(l as u64).rng();
                DiagGmm::train(data, dim, cfg.mixtures, cfg.em_iters, &mut rng)
            })
            .collect();
        // Background model on a subsample of everything (caps EM cost).
        let stride = (all_frames.len() / dim / 20_000).max(1);
        let bg_frames: Vec<f32> = all_frames
            .chunks_exact(dim)
            .step_by(stride)
            .flat_map(|c| c.iter().copied())
            .collect();
        let mut rng = node.derive(0xB6).rng();
        let background = DiagGmm::train(&bg_frames, dim, cfg.mixtures, cfg.em_iters, &mut rng);

        AcousticSystem {
            cfg: cfg.clone(),
            models,
            background,
        }
    }

    /// Detection scores for one utterance: per language, the average frame
    /// log-likelihood ratio against the background model.
    pub fn score(&self, samples: &[f32]) -> Vec<f32> {
        let feats = acoustic_features(samples, &self.cfg.sdc);
        let mut scores = vec![0.0f32; self.models.len()];
        if feats.num_frames() == 0 {
            return scores;
        }
        for frame in feats.iter() {
            let bg = self.background.log_likelihood(frame);
            for (s, m) in scores.iter_mut().zip(&self.models) {
                *s += m.log_likelihood(frame) - bg;
            }
        }
        let inv_t = 1.0 / feats.num_frames() as f32;
        scores.iter_mut().for_each(|s| *s *= inv_t);
        scores
    }

    /// Score a batch of utterance specs into a [`ScoreMatrix`].
    pub fn score_set(
        &self,
        utts: &[UttSpec],
        ds: &Dataset,
        inv: &UniversalInventory,
    ) -> ScoreMatrix {
        let rows: Vec<Vec<f32>> = utts
            .par_iter()
            .map(|u| {
                let r = render_utterance(u, ds.language(u.language), inv);
                self.score(&r.samples)
            })
            .collect();
        let mut m = ScoreMatrix::new(self.models.len());
        for row in rows {
            m.push_row(&row);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lre_corpus::{DatasetConfig, Duration, Scale};

    #[test]
    fn features_have_sdc_dimension() {
        let samples: Vec<f32> = (0..8000)
            .map(|i| (2.0 * std::f32::consts::PI * 500.0 * i as f32 / 8000.0).sin())
            .collect();
        let f = acoustic_features(&samples, &SdcConfig::default());
        assert_eq!(f.dim(), 56);
        assert!(f.num_frames() > 90);
    }

    #[test]
    fn system_beats_chance_on_smoke_corpus() {
        let inv = UniversalInventory::new();
        let ds = Dataset::generate(DatasetConfig::new(Scale::Smoke, 42));
        let cfg = AcousticConfig {
            mixtures: 8,
            em_iters: 2,
            ..Default::default()
        };
        let sys = AcousticSystem::train(&ds, &inv, &cfg);
        let test = ds.test_set(Duration::S30);
        let labels: Vec<usize> = test
            .iter()
            .map(|u| u.language.target_index().unwrap())
            .collect();
        let m = sys.score_set(test, &ds, &inv);
        let eer = lre_eval::pooled_eer(&m, &labels);
        assert!(eer < 0.45, "acoustic system at chance: EER {eer}");
        // Scores must be finite everywhere.
        for i in 0..m.num_utts() {
            assert!(m.row(i).iter().all(|v| v.is_finite()));
        }
    }
}
