//! Synthetic language definitions: phonotactic Markov models.

use crate::rng::DeriveRng;
use lre_phone::{PhoneClass, UniversalInventory, UNIVERSAL_SIZE};
use rand::RngExt;

/// The 23 NIST LRE 2009 target languages plus the two recognizer-only
/// languages (Hungarian, Czech) needed to train the BUT-style front-ends.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum LanguageId {
    Amharic,
    Bosnian,
    Cantonese,
    Creole,
    Croatian,
    Dari,
    EnglishAmerican,
    EnglishIndian,
    Farsi,
    French,
    Georgian,
    Hausa,
    Hindi,
    Korean,
    Mandarin,
    Pashto,
    Portuguese,
    Russian,
    Spanish,
    Turkish,
    Ukrainian,
    Urdu,
    Vietnamese,
    // Recognizer-training-only languages (not LRE09 targets):
    Hungarian,
    Czech,
}

/// Number of LRE 2009 target languages (closed-set condition).
pub const NUM_TARGET_LANGUAGES: usize = 23;

impl LanguageId {
    /// All 25 languages, targets first (in enum order).
    pub fn all() -> [LanguageId; 25] {
        use LanguageId::*;
        [
            Amharic,
            Bosnian,
            Cantonese,
            Creole,
            Croatian,
            Dari,
            EnglishAmerican,
            EnglishIndian,
            Farsi,
            French,
            Georgian,
            Hausa,
            Hindi,
            Korean,
            Mandarin,
            Pashto,
            Portuguese,
            Russian,
            Spanish,
            Turkish,
            Ukrainian,
            Urdu,
            Vietnamese,
            Hungarian,
            Czech,
        ]
    }

    /// The 23 closed-set target languages.
    pub fn targets() -> &'static [LanguageId] {
        use LanguageId::*;
        &[
            Amharic,
            Bosnian,
            Cantonese,
            Creole,
            Croatian,
            Dari,
            EnglishAmerican,
            EnglishIndian,
            Farsi,
            French,
            Georgian,
            Hausa,
            Hindi,
            Korean,
            Mandarin,
            Pashto,
            Portuguese,
            Russian,
            Spanish,
            Turkish,
            Ukrainian,
            Urdu,
            Vietnamese,
        ]
    }

    /// Dense index of a target language in `targets()`, if it is one.
    pub fn target_index(&self) -> Option<usize> {
        LanguageId::targets().iter().position(|l| l == self)
    }

    pub fn name(&self) -> &'static str {
        use LanguageId::*;
        match self {
            Amharic => "amharic",
            Bosnian => "bosnian",
            Cantonese => "cantonese",
            Creole => "creole",
            Croatian => "croatian",
            Dari => "dari",
            EnglishAmerican => "english-am",
            EnglishIndian => "english-in",
            Farsi => "farsi",
            French => "french",
            Georgian => "georgian",
            Hausa => "hausa",
            Hindi => "hindi",
            Korean => "korean",
            Mandarin => "mandarin",
            Pashto => "pashto",
            Portuguese => "portuguese",
            Russian => "russian",
            Spanish => "spanish",
            Turkish => "turkish",
            Ukrainian => "ukrainian",
            Urdu => "urdu",
            Vietnamese => "vietnamese",
            Hungarian => "hungarian",
            Czech => "czech",
        }
    }

    /// Language-family clustering. Same tag ⇒ shared phonotactic prototype;
    /// `spread` is how far the language deviates from the prototype
    /// (small spread ⇒ highly confusable pairs, like Hindi/Urdu in real LRE).
    fn family(&self) -> (u64, f32) {
        use LanguageId::*;
        match self {
            Hindi | Urdu => (1, 0.12),
            Bosnian | Croatian => (2, 0.10),
            Russian | Ukrainian => (3, 0.18),
            EnglishAmerican | EnglishIndian => (4, 0.25),
            Farsi | Dari => (5, 0.12),
            Mandarin | Cantonese => (6, 0.30),
            French | Spanish | Portuguese => (7, 0.45),
            Amharic => (10, 0.8),
            Creole => (11, 0.8),
            Georgian => (12, 0.8),
            Hausa => (13, 0.8),
            Korean => (14, 0.8),
            Pashto => (15, 0.6),
            Turkish => (16, 0.8),
            Vietnamese => (17, 0.7),
            Hungarian => (18, 0.8),
            Czech => (19, 0.55),
        }
    }

    /// Whether the language uses the tone-vowel phones heavily.
    fn is_tonal(&self) -> bool {
        matches!(
            self,
            LanguageId::Mandarin | LanguageId::Cantonese | LanguageId::Vietnamese
        )
    }
}

/// A language's generative phonotactic model over the universal phone space.
#[derive(Clone, Debug)]
pub struct LanguageModel {
    pub id: LanguageId,
    /// Initial phone distribution (length [`UNIVERSAL_SIZE`]).
    initial: Vec<f32>,
    /// Row-stochastic transition matrix, flat `UNIVERSAL_SIZE²`.
    trans: Vec<f32>,
    /// Base fundamental frequency scale for the language (prosody flavor).
    pub f0_scale: f32,
    /// Base speaking-rate factor (1.0 = inventory mean durations).
    pub rate: f32,
}

/// Structural plausibility of a `class → class` transition; this encodes
/// universal phonotactics (CV alternation, clusters rarer, silence behavior)
/// so every synthetic language sounds speech-like.
fn class_weight(from: PhoneClass, to: PhoneClass) -> f32 {
    use PhoneClass::*;
    match (from, to) {
        (Silence, Silence) => 0.05,
        (Silence, Noise) => 0.1,
        (Silence, _) => 1.0,
        (_, Silence) => 0.12,
        (Noise, Noise) => 0.05,
        (Noise, _) => 0.6,
        (_, Noise) => 0.03,
        (Vowel, Vowel) => 0.25,
        (Vowel, _) => 1.0,
        (Stop, Vowel) | (Fricative, Vowel) | (Affricate, Vowel) => 1.6,
        (Nasal, Vowel) | (Liquid, Vowel) | (Glide, Vowel) => 1.8,
        (Stop, Liquid) | (Stop, Glide) | (Fricative, Liquid) => 0.5,
        (Fricative, Stop) | (Stop, Fricative) => 0.25,
        (Nasal, Stop) => 0.5,
        _ => 0.2,
    }
}

/// Build the model for one language, deterministically from `corpus_seed`.
pub fn build_language(id: LanguageId, corpus_seed: u64, inv: &UniversalInventory) -> LanguageModel {
    let n = inv.len();
    debug_assert_eq!(n, UNIVERSAL_SIZE);
    let (family_tag, spread) = id.family();
    let root = DeriveRng::new(corpus_seed);
    let fam = root.derive(0x00FA_0000 + family_tag);
    let lang = root.derive(0x001A_0000 + id as u64);
    let mut fam_rng = fam.rng();
    let mut lang_rng = lang.rng();

    // --- Phone preference vector -------------------------------------------------
    // Family prototype preferences, then language-level perturbation by
    // `spread`, then tonal boosting / suppression.
    let mut pref = vec![0.0f32; n];
    for p in pref.iter_mut() {
        *p = gaussian(&mut fam_rng, 0.0, 0.9).exp() as f32;
    }
    for p in pref.iter_mut() {
        *p *= gaussian(&mut lang_rng, 0.0, spread as f64).exp() as f32;
    }
    // Suppress a language-specific subset of phones (phones "missing" from
    // the language) — never the non-speech units or all vowels.
    for (u, p) in pref.iter_mut().enumerate() {
        let def = inv.phone(u);
        let keep_always =
            matches!(def.class, PhoneClass::Silence | PhoneClass::Noise) || def.symbol.len() == 1;
        if !keep_always && lang_rng.random::<f32>() < 0.30 {
            *p *= 0.02;
        }
    }
    // Tone vowels: boosted in tonal languages, suppressed elsewhere.
    for (u, p) in pref.iter_mut().enumerate() {
        let sym = &inv.phone(u).symbol;
        let is_tone = sym.ends_with(|c: char| c.is_ascii_digit());
        if is_tone {
            *p *= if id.is_tonal() { 4.0 } else { 0.01 };
        }
    }

    // --- Transition matrix ---------------------------------------------------------
    let mut trans = vec![0.0f32; n * n];
    // Family-level pair noise must be identical for all family members, so it
    // comes from a fresh family stream; language-level noise from `lang`.
    let mut fam_pair_rng = fam.derive(1).rng();
    let mut lang_pair_rng = lang.derive(1).rng();
    for i in 0..n {
        let ci = inv.phone(i).class;
        let row = &mut trans[i * n..(i + 1) * n];
        let mut sum = 0.0f32;
        for (j, t) in row.iter_mut().enumerate() {
            let cj = inv.phone(j).class;
            let g_fam = gaussian(&mut fam_pair_rng, 0.0, 0.55);
            let g_lang = gaussian(&mut lang_pair_rng, 0.0, (0.9 * spread) as f64);
            let self_penalty = if i == j { 0.05 } else { 1.0 };
            let w = class_weight(ci, cj) * pref[j] * ((g_fam + g_lang).exp() as f32) * self_penalty;
            *t = w;
            sum += w;
        }
        // Normalize the row; every row has positive mass because class
        // weights are positive.
        let inv_sum = 1.0 / sum;
        for t in row.iter_mut() {
            *t *= inv_sum;
        }
    }

    // --- Initial distribution: start at silence mostly ------------------------------
    let mut initial = vec![0.0f32; n];
    let sil = inv.silence();
    for (u, v) in initial.iter_mut().enumerate() {
        *v = if u == sil { 5.0 } else { pref[u] * 0.05 };
    }
    let s: f32 = initial.iter().sum();
    initial.iter_mut().for_each(|v| *v /= s);

    let f0_scale = 0.9 + 0.2 * lang_rng.random::<f32>();
    let rate = 0.9 + 0.2 * lang_rng.random::<f32>();
    LanguageModel {
        id,
        initial,
        trans,
        f0_scale,
        rate,
    }
}

/// Build all 25 languages for a corpus seed.
pub fn all_languages(corpus_seed: u64) -> Vec<LanguageModel> {
    let inv = UniversalInventory::new();
    LanguageId::all()
        .into_iter()
        .map(|id| build_language(id, corpus_seed, &inv))
        .collect()
}

impl LanguageModel {
    /// A phonetically balanced variant of this language: transitions are
    /// blended toward the class-structured uniform distribution with weight
    /// `w`, so every universal phone gets real coverage.
    ///
    /// Used for recognizer acoustic-model training data — real phone
    /// recognizers (SpeechDat-E, Switchboard) are trained on phonetically
    /// balanced material, which is why they transcribe *other* languages
    /// usably. Without this, a recognizer would never see the phones its
    /// own language suppresses and would shred every other language.
    pub fn phonetically_balanced(&self, w: f32, inv: &UniversalInventory) -> LanguageModel {
        assert!((0.0..=1.0).contains(&w));
        let n = self.initial.len();
        let mut out = self.clone();
        // Uniform-within-class-weights rows.
        for i in 0..n {
            let ci = inv.phone(i).class;
            let mut uniform: Vec<f32> = (0..n)
                .map(|j| class_weight(ci, inv.phone(j).class) * if i == j { 0.05 } else { 1.0 })
                .collect();
            let s: f32 = uniform.iter().sum();
            uniform.iter_mut().for_each(|v| *v /= s);
            let row = &mut out.trans[i * n..(i + 1) * n];
            for (r, u) in row.iter_mut().zip(&uniform) {
                *r = (1.0 - w) * *r + w * u;
            }
        }
        let mut uniform_init = vec![1.0 / n as f32; n];
        uniform_init[inv.silence()] += 0.1;
        let s: f32 = uniform_init.iter().sum();
        uniform_init.iter_mut().for_each(|v| *v /= s);
        for (iv, u) in out.initial.iter_mut().zip(&uniform_init) {
            *iv = (1.0 - w) * *iv + w * u;
        }
        out
    }

    /// Transition row for phone `i` (sums to 1).
    #[inline]
    pub fn transitions_from(&self, i: usize) -> &[f32] {
        let n = self.initial.len();
        &self.trans[i * n..(i + 1) * n]
    }

    /// Initial phone distribution.
    #[inline]
    pub fn initial(&self) -> &[f32] {
        &self.initial
    }

    /// Sample the next phone given the current one.
    pub fn sample_next<R: RngExt>(&self, current: usize, rng: &mut R) -> usize {
        sample_categorical(self.transitions_from(current), rng)
    }

    /// Sample an initial phone.
    pub fn sample_initial<R: RngExt>(&self, rng: &mut R) -> usize {
        sample_categorical(&self.initial, rng)
    }
}

/// Sample an index from an (already normalized) categorical distribution.
pub fn sample_categorical<R: RngExt>(probs: &[f32], rng: &mut R) -> usize {
    let u: f32 = rng.random();
    let mut acc = 0.0f32;
    for (i, &p) in probs.iter().enumerate() {
        acc += p;
        if u < acc {
            return i;
        }
    }
    probs.len() - 1 // numerical tail
}

/// Box-Muller standard normal, scaled.
pub fn gaussian<R: RngExt>(rng: &mut R, mean: f64, std: f64) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random();
    mean + std * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_stochastic() {
        let inv = UniversalInventory::new();
        let lm = build_language(LanguageId::French, 3, &inv);
        for i in 0..UNIVERSAL_SIZE {
            let s: f32 = lm.transitions_from(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-4, "row {i} sums to {s}");
            assert!(lm.transitions_from(i).iter().all(|&p| p >= 0.0));
        }
        let s0: f32 = lm.initial().iter().sum();
        assert!((s0 - 1.0).abs() < 1e-4);
    }

    #[test]
    fn deterministic_construction() {
        let inv = UniversalInventory::new();
        let a = build_language(LanguageId::Korean, 9, &inv);
        let b = build_language(LanguageId::Korean, 9, &inv);
        assert_eq!(a.transitions_from(5), b.transitions_from(5));
    }

    #[test]
    fn family_members_are_closer_than_strangers() {
        let inv = UniversalInventory::new();
        let hi = build_language(LanguageId::Hindi, 42, &inv);
        let ur = build_language(LanguageId::Urdu, 42, &inv);
        let ko = build_language(LanguageId::Korean, 42, &inv);
        let dist = |a: &LanguageModel, b: &LanguageModel| -> f32 {
            let mut d = 0.0;
            for i in 0..UNIVERSAL_SIZE {
                for (x, y) in a.transitions_from(i).iter().zip(b.transitions_from(i)) {
                    d += (x - y).abs();
                }
            }
            d
        };
        assert!(
            dist(&hi, &ur) < 0.5 * dist(&hi, &ko),
            "Hindi-Urdu {} vs Hindi-Korean {}",
            dist(&hi, &ur),
            dist(&hi, &ko)
        );
    }

    #[test]
    fn tonal_languages_emit_tone_phones() {
        let inv = UniversalInventory::new();
        let ma = build_language(LanguageId::Mandarin, 5, &inv);
        let fr = build_language(LanguageId::French, 5, &inv);
        let tone_idx = inv.index_of("a1").unwrap();
        // Average inbound probability of a tone phone.
        let avg_in = |lm: &LanguageModel| -> f32 {
            (0..UNIVERSAL_SIZE)
                .map(|i| lm.transitions_from(i)[tone_idx])
                .sum::<f32>()
                / UNIVERSAL_SIZE as f32
        };
        assert!(avg_in(&ma) > 10.0 * avg_in(&fr));
    }

    #[test]
    fn sampling_respects_support() {
        let inv = UniversalInventory::new();
        let lm = build_language(LanguageId::Turkish, 8, &inv);
        let mut rng = DeriveRng::new(1).rng();
        let mut phone = lm.sample_initial(&mut rng);
        for _ in 0..500 {
            phone = lm.sample_next(phone, &mut rng);
            assert!(phone < UNIVERSAL_SIZE);
        }
    }

    #[test]
    fn target_index_consistency() {
        assert_eq!(LanguageId::Amharic.target_index(), Some(0));
        assert_eq!(LanguageId::Vietnamese.target_index(), Some(22));
        assert_eq!(LanguageId::Hungarian.target_index(), None);
        assert_eq!(LanguageId::targets().len(), NUM_TARGET_LANGUAGES);
    }

    #[test]
    fn sample_categorical_is_correct_on_point_mass() {
        let mut rng = DeriveRng::new(3).rng();
        for _ in 0..20 {
            assert_eq!(sample_categorical(&[0.0, 1.0, 0.0], &mut rng), 1);
        }
    }
}
