//! Synthetic multilingual speech corpus.
//!
//! The paper evaluates on the closed NIST LRE 2009 corpus (41,793 test
//! segments, 23 languages, telephone + Voice-of-America broadcast audio) and
//! trains on 180,000 conversations from Call-Home/Call-Friend/OGI/OHSU/VOA
//! (§4.2). None of that data is available, so this crate is the substitution
//! substrate: a fully generative corpus with the *structure* that matters to
//! the DBA algorithm —
//!
//! 1. **23 target languages** (the LRE09 inventory) defined as distinct
//!    phonotactic Markov models over the shared universal phone space, with
//!    language-family clustering so that the usual LRE confusion pairs
//!    (Hindi/Urdu, Bosnian/Croatian, Russian/Ukrainian, the two Englishes)
//!    are genuinely confusable;
//! 2. **speaker variability** — per-speaker vocal-tract (formant) scale,
//!    pitch and speaking-rate factors, with *disjoint speaker pools* for
//!    train and test;
//! 3. **channel variability** — telephone (CTS) vs. broadcast (VOA)
//!    transmission tilts plus additive noise, with a *shifted mixture* at
//!    test time.
//!
//! (2) and (3) create exactly the train/test mismatch ("variable in
//! speakers, background noise, channel conditions", §1) whose exploitation
//! by self-training is the paper's motivation.
//!
//! Utterances are described by lightweight [`UttSpec`]s and rendered to
//! waveform + frame alignment on demand, so even paper-scale datasets fit
//! in memory as metadata.

mod channel;
mod dataset;
mod language;
mod rng;
mod speaker;
mod utterance;

pub use channel::{Channel, ChannelKind};
pub use dataset::{Dataset, DatasetConfig, Duration, Scale};
pub use language::{
    all_languages, build_language, sample_categorical, LanguageId, LanguageModel,
    NUM_TARGET_LANGUAGES,
};
pub use rng::DeriveRng;
pub use speaker::Speaker;
pub use utterance::{render_utterance, RenderedUtterance, UttSpec};

#[cfg(test)]
mod integration {
    use super::*;

    #[test]
    fn languages_generate_distinct_renderable_utterances() {
        let inv = lre_phone::UniversalInventory::new();
        let langs = all_languages(7);
        let ru = langs.iter().find(|l| l.id == LanguageId::Russian).unwrap();
        let ko = langs.iter().find(|l| l.id == LanguageId::Korean).unwrap();

        let spec = |lm: &LanguageModel| UttSpec {
            language: lm.id,
            speaker_seed: 11,
            channel: Channel::telephone(20.0),
            num_frames: 100,
            seed: 1234,
        };
        let a = render_utterance(&spec(ru), ru, &inv);
        let b = render_utterance(&spec(ko), ko, &inv);
        assert!(a.samples.len() > 1000);
        assert_eq!(a.alignment.len(), 100);
        // Different languages, same seeds: phone sequences must differ.
        assert_ne!(a.alignment, b.alignment);
    }
}
