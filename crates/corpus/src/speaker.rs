//! Speaker variability model.

use crate::language::gaussian;
use crate::rng::DeriveRng;

/// Per-speaker factors applied at synthesis time.
///
/// `formant_scale` models vocal-tract length (shifts all formants), `f0_scale`
/// pitch, and `rate` speaking rate (scales phone durations). Train and test
/// speaker pools are drawn with *different* population parameters so that
/// test utterances are systematically mismatched — the condition DBA's
/// self-training exploits.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Speaker {
    pub formant_scale: f32,
    pub f0_scale: f32,
    pub rate: f32,
}

impl Speaker {
    /// Draw a speaker from the *training* population.
    pub fn train_pool(seed: u64) -> Speaker {
        let mut rng = DeriveRng::new(seed).derive(0x5EED_0001).rng();
        Speaker {
            formant_scale: gaussian(&mut rng, 1.0, 0.045).clamp(0.8, 1.25) as f32,
            f0_scale: gaussian(&mut rng, 1.0, 0.18).clamp(0.5, 2.0) as f32,
            rate: gaussian(&mut rng, 1.0, 0.08).clamp(0.7, 1.4) as f32,
        }
    }

    /// Draw a speaker from the *test* population: slightly shifted mean and
    /// wider spread (unseen speakers, more diverse demographics).
    pub fn test_pool(seed: u64) -> Speaker {
        let mut rng = DeriveRng::new(seed).derive(0x5EED_0002).rng();
        Speaker {
            formant_scale: gaussian(&mut rng, 1.03, 0.065).clamp(0.8, 1.3) as f32,
            f0_scale: gaussian(&mut rng, 1.05, 0.24).clamp(0.5, 2.2) as f32,
            rate: gaussian(&mut rng, 0.97, 0.11).clamp(0.65, 1.5) as f32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(Speaker::train_pool(7), Speaker::train_pool(7));
        assert_eq!(Speaker::test_pool(7), Speaker::test_pool(7));
    }

    #[test]
    fn pools_differ_for_same_seed() {
        assert_ne!(Speaker::train_pool(7), Speaker::test_pool(7));
    }

    #[test]
    fn factors_are_physical() {
        for seed in 0..200 {
            for s in [Speaker::train_pool(seed), Speaker::test_pool(seed)] {
                assert!(s.formant_scale > 0.5 && s.formant_scale < 1.5);
                assert!(s.f0_scale > 0.3 && s.f0_scale < 2.5);
                assert!(s.rate > 0.5 && s.rate < 1.6);
            }
        }
    }

    #[test]
    fn test_pool_mean_formant_shift() {
        let mean = |f: fn(u64) -> Speaker| -> f32 {
            (0..500).map(|s| f(s).formant_scale).sum::<f32>() / 500.0
        };
        let (train, test) = (mean(Speaker::train_pool), mean(Speaker::test_pool));
        assert!(test > train + 0.01, "train {train} test {test}");
    }
}
