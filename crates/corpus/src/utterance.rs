//! Utterance specification and rendering.

use crate::channel::Channel;
use crate::language::{gaussian, LanguageId, LanguageModel};
use crate::rng::DeriveRng;
use crate::speaker::Speaker;
use lre_dsp::{Segment, SynthConfig, Synthesizer};
use lre_phone::UniversalInventory;

/// Samples per 10 ms frame hop at 8 kHz.
pub const HOP: usize = 80;
/// Analysis window length in samples (25 ms at 8 kHz).
pub const WINDOW: usize = 200;

/// Lightweight description of one utterance; rendering is done on demand so
/// datasets are stored as metadata only.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UttSpec {
    pub language: LanguageId,
    /// Seed identifying the speaker (pool chosen by the dataset builder).
    pub speaker_seed: u64,
    pub channel: Channel,
    /// Nominal length in 10 ms frames (750/250/75 for "30s/10s/3s").
    pub num_frames: usize,
    /// Master seed for the utterance's phone sequence and noise.
    pub seed: u64,
}

/// A rendered utterance: channel-processed waveform plus the frame-level
/// reference alignment (universal phone index per frame) used to train the
/// recognizers supervised.
#[derive(Clone, Debug)]
pub struct RenderedUtterance {
    pub samples: Vec<f32>,
    /// `alignment[t]` = universal phone active in frame `t`; length equals
    /// the spec's `num_frames`.
    pub alignment: Vec<u16>,
}

/// Number of samples needed so the 25 ms / 10 ms analysis yields exactly
/// `num_frames` frames.
pub fn samples_for_frames(num_frames: usize) -> usize {
    if num_frames == 0 {
        0
    } else {
        (num_frames - 1) * HOP + WINDOW
    }
}

/// Render an utterance: sample a phone sequence from the language model,
/// synthesize it for the given speaker, and push it through the channel.
pub fn render_utterance(
    spec: &UttSpec,
    lang: &LanguageModel,
    inv: &UniversalInventory,
) -> RenderedUtterance {
    assert_eq!(
        lang.id, spec.language,
        "language model does not match the spec"
    );
    let node = DeriveRng::new(spec.seed);
    let mut seq_rng = node.derive(1).rng();
    let speaker = pick_speaker(spec);

    // --- Sample phone sequence with durations until the frame budget is met.
    let rate = lang.rate * speaker.rate;
    let mut phones: Vec<(usize, usize)> = Vec::new(); // (universal idx, dur frames)
    let mut total = 0usize;
    let mut current = lang.sample_initial(&mut seq_rng);
    while total < spec.num_frames {
        let def = inv.phone(current);
        let dur = (gaussian(
            &mut seq_rng,
            def.mean_dur_frames as f64,
            def.std_dur_frames as f64,
        ) / rate as f64)
            .round()
            .max(2.0) as usize;
        let dur = dur.min(spec.num_frames - total.min(spec.num_frames)).max(1);
        phones.push((current, dur));
        total += dur;
        current = lang.sample_next(current, &mut seq_rng);
    }

    // --- Frame alignment.
    let mut alignment = Vec::with_capacity(spec.num_frames);
    for &(p, dur) in &phones {
        for _ in 0..dur {
            if alignment.len() < spec.num_frames {
                alignment.push(p as u16);
            }
        }
    }
    debug_assert_eq!(alignment.len(), spec.num_frames);

    // --- Synthesize.
    let mut jitter_rng = node.derive(2).rng();
    let segments: Vec<Segment> = phones
        .iter()
        .map(|&(p, dur)| {
            let def = inv.phone(p);
            let mut spec_j = def.spec;
            for f in spec_j.formants.iter_mut() {
                if *f > 0.0 {
                    let jitter = 1.0 + 0.03 * gaussian(&mut jitter_rng, 0.0, 1.0) as f32;
                    *f = (*f * speaker.formant_scale * jitter).min(3900.0);
                }
            }
            let f0_scale = lang.f0_scale
                * speaker.f0_scale
                * tone_f0(&def.symbol)
                * (1.0 + 0.05 * gaussian(&mut jitter_rng, 0.0, 1.0) as f32);
            Segment {
                spec: spec_j,
                samples: dur * HOP,
                f0_scale: f0_scale.clamp(0.4, 2.5),
            }
        })
        .collect();

    let cfg = SynthConfig {
        sample_rate: 8000.0,
        f0: 120.0,
    };
    let mut synth = Synthesizer::new(cfg, node.derive(3).0);
    let want = samples_for_frames(spec.num_frames);
    let mut samples = Vec::with_capacity(want + WINDOW);
    synth.render_into(&segments, &mut samples);
    // Top up (window tail) or trim to the exact analysis length.
    while samples.len() < want {
        samples.push(0.0);
    }
    samples.truncate(want);

    // --- Channel.
    spec.channel.apply(&mut samples, node.derive(4).0);

    RenderedUtterance { samples, alignment }
}

/// The speaker pool is encoded in the top bit of `speaker_seed` by the
/// dataset builder: test-pool speakers have it set.
fn pick_speaker(spec: &UttSpec) -> Speaker {
    const TEST_POOL_BIT: u64 = 1 << 63;
    if spec.speaker_seed & TEST_POOL_BIT != 0 {
        Speaker::test_pool(spec.speaker_seed & !TEST_POOL_BIT)
    } else {
        Speaker::train_pool(spec.speaker_seed)
    }
}

/// Marks a speaker seed as belonging to the test pool.
pub fn test_pool_seed(seed: u64) -> u64 {
    seed | (1 << 63)
}

/// f0 multiplier realizing a crude tone contour for the tone-vowel phones.
fn tone_f0(symbol: &str) -> f32 {
    match symbol.as_bytes().last() {
        Some(b'1') => 1.25,
        Some(b'2') => 1.05,
        Some(b'3') => 0.80,
        Some(b'4') => 1.12,
        _ => 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::language::build_language;

    fn setup() -> (UniversalInventory, LanguageModel) {
        let inv = UniversalInventory::new();
        let lm = build_language(LanguageId::Spanish, 11, &inv);
        (inv, lm)
    }

    fn spec(frames: usize, seed: u64) -> UttSpec {
        UttSpec {
            language: LanguageId::Spanish,
            speaker_seed: 3,
            channel: Channel::telephone(20.0),
            num_frames: frames,
            seed,
        }
    }

    #[test]
    fn exact_frame_and_sample_counts() {
        let (inv, lm) = setup();
        for frames in [75, 250, 750] {
            let r = render_utterance(&spec(frames, 5), &lm, &inv);
            assert_eq!(r.alignment.len(), frames);
            assert_eq!(r.samples.len(), samples_for_frames(frames));
        }
    }

    #[test]
    fn rendering_is_deterministic() {
        let (inv, lm) = setup();
        let a = render_utterance(&spec(100, 77), &lm, &inv);
        let b = render_utterance(&spec(100, 77), &lm, &inv);
        assert_eq!(a.samples, b.samples);
        assert_eq!(a.alignment, b.alignment);
    }

    #[test]
    fn different_seeds_give_different_utterances() {
        let (inv, lm) = setup();
        let a = render_utterance(&spec(100, 1), &lm, &inv);
        let b = render_utterance(&spec(100, 2), &lm, &inv);
        assert_ne!(a.alignment, b.alignment);
    }

    #[test]
    fn alignment_has_multiple_phones() {
        let (inv, lm) = setup();
        let r = render_utterance(&spec(250, 9), &lm, &inv);
        let distinct: std::collections::HashSet<u16> = r.alignment.iter().copied().collect();
        assert!(
            distinct.len() >= 5,
            "only {} distinct phones",
            distinct.len()
        );
    }

    #[test]
    fn audio_has_energy() {
        let (inv, lm) = setup();
        let r = render_utterance(&spec(250, 13), &lm, &inv);
        let e: f32 = r.samples.iter().map(|v| v * v).sum();
        assert!(e > 1.0, "energy {e}");
        assert!(r.samples.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn test_pool_bit_changes_speaker_not_language() {
        let (inv, lm) = setup();
        let mut s2 = spec(100, 5);
        s2.speaker_seed = test_pool_seed(3);
        let a = render_utterance(&spec(100, 5), &lm, &inv);
        let b = render_utterance(&s2, &lm, &inv);
        // Same phone-sequence stream (same seed) so the first phone agrees,
        // but the test-pool speaker's rate/formants differ: the audio must
        // change (durations may shift the rest of the alignment).
        assert_eq!(a.alignment[0], b.alignment[0]);
        assert_ne!(a.samples, b.samples);
    }
}
