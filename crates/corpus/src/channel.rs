//! Transmission-channel and noise model.

use crate::rng::DeriveRng;
use rand::RngExt;

/// Channel family. The LRE 2009 evaluation mixed conversational telephone
/// speech (CTS) with Voice-of-America broadcast audio; the two differ in
/// spectral tilt and noise floor, and that mismatch is part of what makes
/// the evaluation hard (§1, §4.2).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ChannelKind {
    /// Conversational telephone speech.
    Cts,
    /// Broadcast (VOA-style) audio.
    Voa,
}

/// A concrete channel instance: kind + SNR.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Channel {
    pub kind: ChannelKind,
    /// Signal-to-noise ratio in dB for the additive noise stage.
    pub snr_db: f32,
}

impl Channel {
    pub fn telephone(snr_db: f32) -> Channel {
        Channel {
            kind: ChannelKind::Cts,
            snr_db,
        }
    }

    pub fn broadcast(snr_db: f32) -> Channel {
        Channel {
            kind: ChannelKind::Voa,
            snr_db,
        }
    }

    /// Apply the channel to a waveform in place: spectral shaping followed by
    /// additive white noise at the configured SNR. Deterministic in `seed`.
    pub fn apply(&self, samples: &mut [f32], seed: u64) {
        if samples.is_empty() {
            return;
        }
        match self.kind {
            ChannelKind::Cts => {
                // Telephone: mild high-pass tilt (300 Hz-ish) via a one-pole
                // differencer blended with the dry signal.
                let a = 0.35f32;
                let mut prev = samples[0];
                for s in samples.iter_mut().skip(1) {
                    let cur = *s;
                    *s = cur - a * prev;
                    prev = cur;
                }
            }
            ChannelKind::Voa => {
                // Broadcast: smoother band, slight low-pass (3-tap average)
                // plus a gain ripple to mimic compression/AGC artifacts.
                let mut prev2 = samples[0];
                let mut prev1 = samples[0];
                for (i, s) in samples.iter_mut().enumerate() {
                    let cur = *s;
                    *s = 0.25 * prev2 + 0.5 * prev1 + 0.25 * cur;
                    // Slow AGC-style ripple, period ~0.5 s at 8 kHz.
                    let ripple = 1.0 + 0.15 * ((i as f32) * (std::f32::consts::TAU / 4000.0)).sin();
                    *s *= ripple;
                    prev2 = prev1;
                    prev1 = cur;
                }
            }
        }

        // Additive noise at the requested SNR relative to the shaped signal.
        let power: f32 = samples.iter().map(|v| v * v).sum::<f32>() / samples.len() as f32;
        if power <= 0.0 {
            return;
        }
        let noise_power = power / 10f32.powf(self.snr_db / 10.0);
        let mut rng = DeriveRng::new(seed).derive(0x0C4A_77E1).rng();
        // Speech-shaped (pink-ish) noise: white noise through a leaky
        // integrator, then rescaled to the target power. Flat (white) noise
        // at 8 kHz would concentrate its energy where speech has little,
        // which is neither realistic nor survivable for any front-end.
        let mut shaped = Vec::with_capacity(samples.len());
        let mut state = 0.0f32;
        for _ in 0..samples.len() {
            let u: f32 = rng.random::<f32>() - 0.5;
            state = 0.9 * state + u;
            shaped.push(state);
        }
        let shaped_power: f32 = shaped.iter().map(|v| v * v).sum::<f32>() / shaped.len() as f32;
        let gain = (noise_power / shaped_power.max(1e-12)).sqrt();
        for (s, n) in samples.iter_mut().zip(&shaped) {
            *s += n * gain;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| (2.0 * std::f32::consts::PI * 440.0 * i as f32 / 8000.0).sin())
            .collect()
    }

    #[test]
    fn apply_is_deterministic() {
        let mut a = tone(2000);
        let mut b = tone(2000);
        Channel::telephone(15.0).apply(&mut a, 99);
        Channel::telephone(15.0).apply(&mut b, 99);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = tone(2000);
        let mut b = tone(2000);
        Channel::telephone(15.0).apply(&mut a, 1);
        Channel::telephone(15.0).apply(&mut b, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn kinds_shape_differently() {
        let mut a = tone(2000);
        let mut b = tone(2000);
        Channel {
            kind: ChannelKind::Cts,
            snr_db: 100.0,
        }
        .apply(&mut a, 1);
        Channel {
            kind: ChannelKind::Voa,
            snr_db: 100.0,
        }
        .apply(&mut b, 1);
        let diff: f32 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 1.0);
    }

    #[test]
    fn snr_controls_noise_level() {
        // Compare residual noise on a silent signal: lower SNR => more noise.
        let measure = |snr: f32| -> f32 {
            let mut s = tone(4000);
            Channel::telephone(snr).apply(&mut s, 5);
            let mut clean = tone(4000);
            Channel::telephone(1000.0).apply(&mut clean, 5); // effectively noiseless
            s.iter()
                .zip(&clean)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f32>()
        };
        assert!(measure(5.0) > 5.0 * measure(25.0));
    }

    #[test]
    fn empty_signal_ok() {
        let mut s: Vec<f32> = Vec::new();
        Channel::broadcast(10.0).apply(&mut s, 0);
        assert!(s.is_empty());
    }
}
