//! Deterministic seed derivation.
//!
//! Every stochastic object in the corpus (language models, speakers,
//! utterances) derives its own RNG from a parent seed and a stream of
//! "path" components. Derivation is pure, so rayon-parallel rendering of
//! utterances is reproducible regardless of scheduling order.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// SplitMix64 step — the standard 64-bit mixer.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A seed that can be hierarchically derived: `seed.derive(a).derive(b)` is
/// deterministic in `(seed, a, b)` and well-separated from siblings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeriveRng(pub u64);

impl DeriveRng {
    pub fn new(seed: u64) -> Self {
        Self(seed)
    }

    /// Child seed for path component `tag`.
    #[must_use]
    pub fn derive(&self, tag: u64) -> DeriveRng {
        let mut s = self.0 ^ tag.wrapping_mul(0xD6E8FEB86659FD93);
        let a = splitmix64(&mut s);
        let b = splitmix64(&mut s);
        DeriveRng(a ^ b.rotate_left(17))
    }

    /// Materialize an RNG at this node.
    pub fn rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn derivation_is_deterministic() {
        let a = DeriveRng::new(42).derive(1).derive(7);
        let b = DeriveRng::new(42).derive(1).derive(7);
        assert_eq!(a, b);
    }

    #[test]
    fn siblings_differ() {
        let root = DeriveRng::new(42);
        assert_ne!(root.derive(1), root.derive(2));
        assert_ne!(root.derive(1).0, root.0);
    }

    #[test]
    fn path_order_matters() {
        let root = DeriveRng::new(9);
        assert_ne!(root.derive(1).derive(2), root.derive(2).derive(1));
    }

    #[test]
    fn rng_streams_are_usable_and_distinct() {
        let mut r1 = DeriveRng::new(5).derive(100).rng();
        let mut r2 = DeriveRng::new(5).derive(101).rng();
        let v1: f64 = r1.random();
        let v2: f64 = r2.random();
        assert!((0.0..1.0).contains(&v1));
        assert_ne!(v1, v2);
    }

    #[test]
    fn no_trivial_collisions_across_many_tags() {
        let root = DeriveRng::new(1234);
        let mut seen = std::collections::HashSet::new();
        for tag in 0..10_000u64 {
            assert!(seen.insert(root.derive(tag).0), "collision at tag {tag}");
        }
    }
}
