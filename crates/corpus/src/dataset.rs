//! Dataset assembly: train/dev/test splits with controlled mismatch.

use crate::channel::Channel;
use crate::language::{all_languages, gaussian, LanguageId, LanguageModel};
use crate::rng::DeriveRng;
use crate::utterance::{test_pool_seed, UttSpec};
use rand::RngExt;

/// Nominal test-segment durations of NIST LRE 2009. The reproduction runs a
/// 4× time-compressed clock (see DESIGN.md): frame counts keep the paper's
/// 10:1 ratio structure (750/250/75 frames) so the EER-vs-duration ordering
/// is preserved while the corpus stays laptop-renderable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Duration {
    S30,
    S10,
    S3,
}

impl Duration {
    pub fn all() -> [Duration; 3] {
        [Duration::S30, Duration::S10, Duration::S3]
    }

    /// Frame budget for the nominal duration.
    pub fn frames(&self) -> usize {
        match self {
            Duration::S30 => 750,
            Duration::S10 => 250,
            Duration::S3 => 75,
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            Duration::S30 => "30s",
            Duration::S10 => "10s",
            Duration::S3 => "3s",
        }
    }
}

/// Corpus size presets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Tiny: CI-speed sanity runs.
    Smoke,
    /// Default for the table-regeneration binaries.
    Demo,
    /// Largest preset; closest in spirit to the 41,793-segment evaluation.
    Paper,
}

impl Scale {
    /// (train utts/lang, test utts/lang/duration, dev utts/lang, AM-train utts/recognizer-lang)
    fn sizes(&self) -> (usize, usize, usize, usize) {
        match self {
            Scale::Smoke => (8, 6, 6, 60),
            Scale::Demo => (18, 40, 15, 240),
            Scale::Paper => (45, 90, 21, 420),
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            Scale::Smoke => "smoke",
            Scale::Demo => "demo",
            Scale::Paper => "paper",
        }
    }

    /// Parse a `--scale` argument.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "smoke" => Some(Scale::Smoke),
            "demo" => Some(Scale::Demo),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }
}

/// Configuration for dataset generation.
#[derive(Clone, Copy, Debug)]
pub struct DatasetConfig {
    pub scale: Scale,
    pub seed: u64,
    /// Training-utterance length in frames (conversation excerpts).
    pub train_frames: usize,
    /// AM-training utterance length in frames.
    pub am_frames: usize,
}

impl DatasetConfig {
    pub fn new(scale: Scale, seed: u64) -> Self {
        Self {
            scale,
            seed,
            train_frames: 300,
            am_frames: 200,
        }
    }
}

/// A fully specified dataset. Utterances are [`UttSpec`]s; call
/// [`crate::render_utterance`] to materialize audio.
///
/// The mismatch structure (the thing DBA exploits):
/// - train: training-pool speakers, CTS channel, SNR ≈ N(22 dB, 3);
/// - test: *test-pool* speakers (disjoint, shifted population), 60 % CTS at
///   SNR ≈ N(15, 4) + 40 % VOA at SNR ≈ N(18, 4);
/// - dev: training-pool speakers but test-like channel mix (for backend
///   calibration, mirroring the paper's LRE03/05/07+VOA dev set).
#[derive(Clone, Debug)]
pub struct Dataset {
    pub config: DatasetConfig,
    /// All 25 language models (23 targets + HU + CZ).
    pub languages: Vec<LanguageModel>,
    /// VSM training utterances (labelled).
    pub train: Vec<UttSpec>,
    /// Test utterances per duration (labels only used by evaluation).
    pub test: Vec<(Duration, Vec<UttSpec>)>,
    /// Development utterances (labelled; used for backend training).
    pub dev: Vec<UttSpec>,
    /// Per-recognizer-language acoustic-model training utterances.
    pub am_train: Vec<(LanguageId, Vec<UttSpec>)>,
}

impl Dataset {
    /// Generate a dataset deterministically from the config.
    pub fn generate(config: DatasetConfig) -> Dataset {
        let (n_train, n_test, n_dev, n_am) = config.scale.sizes();
        let languages = all_languages(config.seed);
        let root = DeriveRng::new(config.seed);

        let mut train = Vec::new();
        let mut dev = Vec::new();
        let mut test: Vec<(Duration, Vec<UttSpec>)> =
            Duration::all().iter().map(|&d| (d, Vec::new())).collect();

        for (li, &lang) in LanguageId::targets().iter().enumerate() {
            let lang_node = root.derive(0xDA7A_0000 + li as u64);
            let mut rng = lang_node.rng();

            // --- Train: CTS, train-pool speakers (a finite pool of 32/lang).
            for u in 0..n_train {
                let speaker_seed = lang_node.derive(10_000 + (u % 32) as u64).0 >> 1;
                let snr = gaussian(&mut rng, 35.0, 2.5).clamp(25.0, 45.0) as f32;
                train.push(UttSpec {
                    language: lang,
                    speaker_seed,
                    channel: Channel::telephone(snr),
                    num_frames: config.train_frames,
                    seed: lang_node.derive(20_000 + u as u64).0,
                });
            }

            // --- Dev: *held-out-pool* speakers (disjoint from both train and
            // test speaker seeds) with the test-like channel mix and test
            // durations cycled across utterances — the role the paper's
            // LRE03/05/07+VOA development data plays: same condition family
            // as the evaluation, different speakers.
            for u in 0..n_dev {
                let speaker_seed = test_pool_seed(
                    0x00DE_0000 + (lang_node.derive(11_000 + (u % 16) as u64).0 >> 2),
                );
                let (channel, _) = test_channel(&mut rng);
                let dur = Duration::all()[u % 3];
                dev.push(UttSpec {
                    language: lang,
                    speaker_seed,
                    channel,
                    num_frames: dur.frames(),
                    seed: lang_node.derive(30_000 + u as u64).0,
                });
            }

            // --- Test: disjoint test-pool speakers, shifted channel mix.
            for (di, (dur, bucket)) in test.iter_mut().enumerate() {
                for u in 0..n_test {
                    let speaker_seed =
                        test_pool_seed(lang_node.derive(12_000 + (u % 48) as u64).0 >> 1);
                    let (channel, _) = test_channel(&mut rng);
                    bucket.push(UttSpec {
                        language: lang,
                        speaker_seed,
                        channel,
                        num_frames: dur.frames(),
                        seed: lang_node.derive(40_000 + (di * 10_000 + u) as u64).0,
                    });
                }
            }
        }

        // --- AM training data: the five recognizer languages.
        let am_langs = [
            LanguageId::Hungarian,
            LanguageId::Russian,
            LanguageId::Czech,
            LanguageId::EnglishAmerican,
            LanguageId::Mandarin,
        ];
        let am_train = am_langs
            .iter()
            .map(|&lang| {
                let node = root.derive(0xAC00_0000 + lang as u64);
                let mut rng = node.rng();
                let utts = (0..n_am)
                    .map(|u| {
                        let snr = gaussian(&mut rng, 35.0, 2.5).clamp(25.0, 45.0) as f32;
                        UttSpec {
                            language: lang,
                            speaker_seed: node.derive(10_000 + (u % 32) as u64).0 >> 1,
                            channel: Channel::telephone(snr),
                            num_frames: config.am_frames,
                            seed: node.derive(20_000 + u as u64).0,
                        }
                    })
                    .collect();
                (lang, utts)
            })
            .collect();

        Dataset {
            config,
            languages,
            train,
            test,
            dev,
            am_train,
        }
    }

    /// Language model lookup by id.
    pub fn language(&self, id: LanguageId) -> &LanguageModel {
        self.languages
            .iter()
            .find(|l| l.id == id)
            .expect("all languages are generated")
    }

    /// Test bucket for a duration.
    pub fn test_set(&self, dur: Duration) -> &[UttSpec] {
        &self
            .test
            .iter()
            .find(|(d, _)| *d == dur)
            .expect("all durations present")
            .1
    }
}

/// Sample a test-condition channel: 60 % CTS at lower SNR, 40 % VOA.
fn test_channel<R: RngExt>(rng: &mut R) -> (Channel, bool) {
    if rng.random::<f32>() < 0.6 {
        let snr = gaussian(rng, 31.0, 2.0).clamp(24.0, 40.0) as f32;
        (Channel::telephone(snr), false)
    } else {
        let snr = gaussian(rng, 33.0, 2.0).clamp(24.0, 40.0) as f32;
        (Channel::broadcast(snr), true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_dataset_shape() {
        let ds = Dataset::generate(DatasetConfig::new(Scale::Smoke, 1));
        assert_eq!(ds.train.len(), 23 * 8);
        assert_eq!(ds.dev.len(), 23 * 6);
        for (d, bucket) in &ds.test {
            assert_eq!(bucket.len(), 23 * 6, "{}", d.name());
            assert!(bucket.iter().all(|u| u.num_frames == d.frames()));
        }
        assert_eq!(ds.am_train.len(), 5);
        assert!(ds.am_train.iter().all(|(_, v)| v.len() == 60));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::generate(DatasetConfig::new(Scale::Smoke, 5));
        let b = Dataset::generate(DatasetConfig::new(Scale::Smoke, 5));
        assert_eq!(a.train, b.train);
        assert_eq!(a.test_set(Duration::S3), b.test_set(Duration::S3));
    }

    #[test]
    fn train_and_test_speaker_pools_are_disjoint() {
        let ds = Dataset::generate(DatasetConfig::new(Scale::Smoke, 2));
        // Test speakers carry the pool bit; train speakers never do.
        assert!(ds.train.iter().all(|u| u.speaker_seed & (1 << 63) == 0));
        for (_, bucket) in &ds.test {
            assert!(bucket.iter().all(|u| u.speaker_seed & (1 << 63) != 0));
        }
    }

    #[test]
    fn test_channels_are_mixed() {
        let ds = Dataset::generate(DatasetConfig::new(Scale::Demo, 3));
        let bucket = ds.test_set(Duration::S30);
        let voa = bucket
            .iter()
            .filter(|u| matches!(u.channel.kind, crate::ChannelKind::Voa))
            .count();
        let frac = voa as f32 / bucket.len() as f32;
        assert!(frac > 0.25 && frac < 0.55, "VOA fraction {frac}");
    }

    #[test]
    fn train_covers_all_targets() {
        let ds = Dataset::generate(DatasetConfig::new(Scale::Smoke, 4));
        for &lang in LanguageId::targets() {
            assert!(ds.train.iter().any(|u| u.language == lang), "{:?}", lang);
        }
    }

    #[test]
    fn duration_frames_are_the_documented_values() {
        assert_eq!(Duration::S30.frames(), 750);
        assert_eq!(Duration::S10.frames(), 250);
        assert_eq!(Duration::S3.frames(), 75);
    }

    #[test]
    fn scale_parse_roundtrip() {
        for s in [Scale::Smoke, Scale::Demo, Scale::Paper] {
            assert_eq!(Scale::parse(s.name()), Some(s));
        }
        assert_eq!(Scale::parse("bogus"), None);
    }
}
