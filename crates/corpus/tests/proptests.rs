//! Property-based tests for the synthetic corpus.

use lre_corpus::{
    build_language, render_utterance, sample_categorical, Channel, DeriveRng, LanguageId, UttSpec,
};
use lre_phone::{UniversalInventory, UNIVERSAL_SIZE};
use proptest::prelude::*;
use rand::RngExt;

fn any_language() -> impl Strategy<Value = LanguageId> {
    prop::sample::select(LanguageId::all().to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn language_models_are_stochastic_for_all_seeds(lang in any_language(), seed in 0u64..50) {
        let inv = UniversalInventory::new();
        let lm = build_language(lang, seed, &inv);
        for i in 0..UNIVERSAL_SIZE {
            let row = lm.transitions_from(i);
            let s: f32 = row.iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-3, "row {i} sums to {s}");
            prop_assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn rendering_matches_spec_exactly(
        lang in any_language(),
        frames in 20usize..200,
        seed in 0u64..1000,
        speaker in 0u64..100,
        snr in 15.0f32..40.0,
    ) {
        let inv = UniversalInventory::new();
        let lm = build_language(lang, 5, &inv);
        let spec = UttSpec {
            language: lang,
            speaker_seed: speaker,
            channel: Channel::telephone(snr),
            num_frames: frames,
            seed,
        };
        let r = render_utterance(&spec, &lm, &inv);
        prop_assert_eq!(r.alignment.len(), frames);
        prop_assert_eq!(r.samples.len(), lre_corpus::render_utterance(&spec, &lm, &inv).samples.len());
        prop_assert!(r.samples.iter().all(|v| v.is_finite()));
        prop_assert!(r.alignment.iter().all(|&p| (p as usize) < UNIVERSAL_SIZE));
    }

    #[test]
    fn sample_categorical_respects_support(seed in 0u64..500) {
        // A distribution with a zeroed-out region must never sample from it.
        let mut probs = vec![0.0f32; 10];
        probs[3] = 0.5;
        probs[7] = 0.5;
        let mut rng = DeriveRng::new(seed).rng();
        for _ in 0..50 {
            let s = sample_categorical(&probs, &mut rng);
            prop_assert!(s == 3 || s == 7, "sampled index {s} outside support");
        }
    }

    #[test]
    fn derive_rng_streams_do_not_collide(seed in 0u64..1000, a in 0u64..5000, b in 0u64..5000) {
        if a != b {
            let root = DeriveRng::new(seed);
            prop_assert_ne!(root.derive(a).0, root.derive(b).0);
            let mut ra = root.derive(a).rng();
            let mut rb = root.derive(b).rng();
            let va: u64 = ra.random();
            let vb: u64 = rb.random();
            prop_assert_ne!(va, vb);
        }
    }

    #[test]
    fn channel_preserves_length_and_finiteness(
        n in 10usize..4000,
        snr in 5.0f32..45.0,
        seed in 0u64..100,
        voa in proptest::bool::ANY,
    ) {
        let mut samples: Vec<f32> =
            (0..n).map(|i| ((i as f32) * 0.21).sin() * 0.7).collect();
        let ch = if voa { Channel::broadcast(snr) } else { Channel::telephone(snr) };
        ch.apply(&mut samples, seed);
        prop_assert_eq!(samples.len(), n);
        prop_assert!(samples.iter().all(|v| v.is_finite()));
    }
}
