//! Property-based tests for the linear-algebra kernels.

use lre_linalg::{autocorrelation, jacobi_eigen, levinson_durbin, mean_vector, Mat};
use proptest::prelude::*;

fn matrix(n: usize) -> impl Strategy<Value = Mat> {
    prop::collection::vec(-3.0f64..3.0, n * n).prop_map(move |v| Mat::from_vec(n, n, v))
}

fn vector(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-3.0f64..3.0, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    // --- Mat -------------------------------------------------------------------

    #[test]
    fn matmul_is_associative(a in matrix(3), b in matrix(3), c in matrix(3)) {
        let ab_c = a.matmul(&b).matmul(&c);
        let a_bc = a.matmul(&b.matmul(&c));
        for i in 0..3 {
            for j in 0..3 {
                prop_assert!((ab_c[(i, j)] - a_bc[(i, j)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn transpose_reverses_products(a in matrix(3), b in matrix(3)) {
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        for i in 0..3 {
            for j in 0..3 {
                prop_assert!((lhs[(i, j)] - rhs[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn matvec_agrees_with_matmul(a in matrix(4), x in vector(4)) {
        let as_vec = a.matvec(&x);
        let as_mat = a.matmul(&Mat::from_vec(4, 1, x.clone()));
        for i in 0..4 {
            prop_assert!((as_vec[i] - as_mat[(i, 0)]).abs() < 1e-10);
        }
    }

    // --- Decompositions ------------------------------------------------------------

    #[test]
    fn lu_solve_satisfies_system(a in matrix(4), b in vector(4)) {
        if let Some(lu) = a.lu() {
            let x = lu.solve(&b);
            let back = a.matvec(&x);
            for i in 0..4 {
                prop_assert!((back[i] - b[i]).abs() < 1e-6 * (1.0 + b[i].abs()),
                    "residual too large at {}", i);
            }
        }
    }

    #[test]
    fn det_of_product_is_product_of_dets(a in matrix(3), b in matrix(3)) {
        if let (Some(la), Some(lb), Some(lab)) = (a.lu(), b.lu(), a.matmul(&b).lu()) {
            let expect = la.det() * lb.det();
            prop_assert!((lab.det() - expect).abs() < 1e-6 * (1.0 + expect.abs()));
        }
    }

    #[test]
    fn spd_eigenvalues_are_positive(a in matrix(4)) {
        // AᵀA + I is symmetric positive definite.
        let mut spd = a.transpose().matmul(&a);
        for i in 0..4 { spd[(i, i)] += 1.0; }
        let e = jacobi_eigen(&spd, 100);
        for &l in &e.values {
            prop_assert!(l > 0.99, "eigenvalue {l} of SPD matrix not ≥ 1");
        }
        // Cholesky must also accept it.
        prop_assert!(spd.cholesky().is_some());
    }

    #[test]
    fn cholesky_log_det_matches_lu(a in matrix(3)) {
        let mut spd = a.transpose().matmul(&a);
        for i in 0..3 { spd[(i, i)] += 1.0; }
        let chol = spd.cholesky().unwrap();
        let lu = spd.lu().unwrap();
        prop_assert!((chol.log_det() - lu.det().ln()).abs() < 1e-8);
    }

    // --- Levinson-Durbin -----------------------------------------------------------

    #[test]
    fn levinson_reflections_bounded(x in prop::collection::vec(-1.0f64..1.0, 32..64)) {
        let r = autocorrelation(&x, 8);
        if r[0] > 1e-6 {
            if let Some(lpc) = levinson_durbin(&r, 8) {
                for &k in &lpc.reflection {
                    prop_assert!(k.abs() <= 1.0 + 1e-6);
                }
                prop_assert!(lpc.error >= 0.0);
                prop_assert!(lpc.error <= r[0] * (1.0 + 1e-9));
            }
        }
    }

    // --- Stats -----------------------------------------------------------------------

    #[test]
    fn mean_is_translation_equivariant(rows in prop::collection::vec(vector(3), 2..10), shift in -5.0f64..5.0) {
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let m = Mat::from_rows(&refs);
        let mean1 = mean_vector(&m);
        let shifted: Vec<Vec<f64>> =
            rows.iter().map(|r| r.iter().map(|v| v + shift).collect()).collect();
        let refs2: Vec<&[f64]> = shifted.iter().map(|r| r.as_slice()).collect();
        let mean2 = mean_vector(&Mat::from_rows(&refs2));
        for d in 0..3 {
            prop_assert!((mean2[d] - mean1[d] - shift).abs() < 1e-9);
        }
    }
}
