//! Small dense linear-algebra kernels for the LRE-DBA reproduction.
//!
//! This crate is a deliberately minimal substrate: the paper's backend needs
//! LDA (a generalized symmetric-definite eigenproblem), the acoustic models
//! need covariance handling (Cholesky), PLP feature extraction needs
//! Levinson-Durbin recursion, and the MMI backend needs plain dense solves.
//! Everything is `f64`, row-major, and allocation-explicit; no external BLAS.
//!
//! # Example
//! ```
//! use lre_linalg::Mat;
//! let a = Mat::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
//! let chol = a.cholesky().unwrap();
//! let x = chol.solve(&[1.0, 2.0]);
//! // verify A x = b
//! let b = a.matvec(&x);
//! assert!((b[0] - 1.0).abs() < 1e-12 && (b[1] - 2.0).abs() < 1e-12);
//! ```

mod cholesky;
mod eigen;
mod geig;
mod levinson;
mod lu;
mod matrix;
mod stats;

pub use cholesky::Cholesky;
pub use eigen::{jacobi_eigen, EigenDecomposition};
pub use geig::{generalized_symmetric_eigen, GeneralizedEigen};
pub use levinson::{autocorrelation, levinson_durbin, lpc_to_cepstrum, LpcResult};
pub use lu::Lu;
pub use matrix::{axpy_f32, gemm_xwt_f32, Mat};
pub use stats::{covariance_matrix, mean_vector, weighted_mean_vector};

/// Numerical tolerance used by the decompositions in this crate when deciding
/// whether a pivot / eigenvalue is effectively zero.
pub const EPS: f64 = 1e-12;

/// Dot product of two equal-length slices.
///
/// Panics in debug builds if the lengths differ.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm of a slice.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// `y += alpha * x` over equal-length slices.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Scale a slice in place.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn axpy_basic() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn norm2_basic() {
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn scale_basic() {
        let mut x = vec![1.0, -2.0];
        scale(-3.0, &mut x);
        assert_eq!(x, vec![-3.0, 6.0]);
    }
}
