//! Row-major dense matrix type.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major `f64` matrix.
///
/// The storage is a single flat `Vec<f64>` (perf-book idiom: avoid
/// `Vec<Vec<f64>>` so rows are contiguous and the allocator is touched once).
#[derive(Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// All-zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a flat row-major buffer. Panics if the length mismatches.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "flat buffer length must equal rows*cols"
        );
        Self { rows, cols, data }
    }

    /// Build from row slices. Panics on ragged input.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Diagonal matrix from a slice.
    pub fn from_diag(d: &[f64]) -> Self {
        let mut m = Self::zeros(d.len(), d.len());
        for (i, &v) in d.iter().enumerate() {
            m[(i, i)] = v;
        }
        m
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy of column `j`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Flat row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Mat {
        let mut t = Mat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix-matrix product `self * other`.
    ///
    /// Uses the i-k-j loop order so the inner loop walks both operands
    /// contiguously (row-major friendly).
    pub fn matmul(&self, other: &Mat) -> Mat {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut out = Mat::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let brow = other.row(k);
                let orow = out.row_mut(i);
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix-vector product.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, x.len(), "dimension mismatch");
        (0..self.rows).map(|i| crate::dot(self.row(i), x)).collect()
    }

    /// `self += alpha * other` elementwise.
    pub fn add_scaled(&mut self, alpha: f64, other: &Mat) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Scale all entries in place.
    pub fn scale_inplace(&mut self, alpha: f64) {
        crate::scale(alpha, &mut self.data);
    }

    /// Rank-1 update `self += alpha * x * y^T`.
    pub fn rank1_update(&mut self, alpha: f64, x: &[f64], y: &[f64]) {
        assert_eq!(x.len(), self.rows);
        assert_eq!(y.len(), self.cols);
        for (i, &xi) in x.iter().enumerate() {
            crate::axpy(alpha * xi, y, self.row_mut(i));
        }
    }

    /// Maximum absolute entry; 0 for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &v| m.max(v.abs()))
    }

    /// Sum of the diagonal entries (requires square).
    pub fn trace(&self) -> f64 {
        assert_eq!(self.rows, self.cols);
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Symmetrize in place: `A <- (A + A^T)/2`. Useful after accumulating
    /// scatter matrices where round-off breaks exact symmetry.
    pub fn symmetrize(&mut self) {
        assert_eq!(self.rows, self.cols);
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                let v = 0.5 * (self[(i, j)] + self[(j, i)]);
                self[(i, j)] = v;
                self[(j, i)] = v;
            }
        }
    }

    /// True if every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

/// Row-block edge for the blocked `f32` kernels below. A transposed block
/// panel holds `TILE × k` floats — L1/L2-resident for the feature and
/// hidden-layer widths used by the acoustic models (k ≤ a few hundred) —
/// and the per-output accumulator strip is `TILE` floats on the stack.
const TILE: usize = 128;

/// Blocked `out = x · wᵀ + bias` over `f32` row-major panels — the emission
/// hot-path kernel (`x`: `rows × k` frames, `w`: `out_dim × k` weights,
/// `out`: `rows × out_dim`).
///
/// Each output element is one dot product accumulated strictly in `k`
/// order, so results are **bit-identical** to the scalar per-row loop. The
/// exactness matters: the decoder's `beam: None` path promises bit-identical
/// output to the historical per-frame scorer. The speed-up comes from
/// making the *row* (frame) dimension the inner, data-parallel axis: each
/// row block is transposed once into a `k × TILE` panel, and for every
/// output the `k` accumulation steps then run over `TILE` independent
/// unit-stride accumulators — the serial chain a single dot product imposes
/// is carried across frames in parallel instead, which vectorizes where the
/// per-frame loop cannot.
pub fn gemm_xwt_f32(x: &[f32], w: &[f32], bias: &[f32], k: usize, out: &mut [f32]) {
    assert!(k > 0, "inner dimension must be positive");
    let rows = x.len() / k;
    let out_dim = bias.len();
    assert_eq!(x.len(), rows * k, "x must be rows × k");
    assert_eq!(w.len(), out_dim * k, "w must be out_dim × k");
    assert_eq!(out.len(), rows * out_dim, "out must be rows × out_dim");
    let mut xt = vec![0.0f32; TILE.min(rows.max(1)) * k];
    let mut acc = [0.0f32; TILE];
    for r0 in (0..rows).step_by(TILE) {
        let rb = TILE.min(rows - r0);
        // Transpose the block: xt[kk · rb + j] = x[(r0 + j) · k + kk].
        for j in 0..rb {
            let xr = &x[(r0 + j) * k..(r0 + j + 1) * k];
            for (kk, &v) in xr.iter().enumerate() {
                xt[kk * rb + j] = v;
            }
        }
        for o in 0..out_dim {
            let wo = &w[o * k..(o + 1) * k];
            let accs = &mut acc[..rb];
            accs.fill(0.0);
            for (kk, &wk) in wo.iter().enumerate() {
                let col = &xt[kk * rb..kk * rb + rb];
                for (a, &xv) in accs.iter_mut().zip(col) {
                    *a += xv * wk;
                }
            }
            let b = bias[o];
            for (j, &a) in accs.iter().enumerate() {
                out[(r0 + j) * out_dim + o] = b + a;
            }
        }
    }
}

/// `y += alpha * x` over `f32` slices (single-precision twin of [`axpy`]).
///
/// [`axpy`]: crate::axpy
#[inline]
pub fn axpy_f32(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

impl Index<(usize, usize)> for Mat {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:10.4} ", self[(i, j)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matmul_is_noop() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Mat::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Mat::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Mat::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn transpose_involution() {
        let a = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matvec_known() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn rank1_update_known() {
        let mut a = Mat::zeros(2, 2);
        a.rank1_update(2.0, &[1.0, 3.0], &[4.0, 5.0]);
        assert_eq!(a, Mat::from_rows(&[&[8.0, 10.0], &[24.0, 30.0]]));
    }

    #[test]
    fn symmetrize_makes_symmetric() {
        let mut a = Mat::from_rows(&[&[1.0, 2.0], &[4.0, 3.0]]);
        a.symmetrize();
        assert_eq!(a[(0, 1)], a[(1, 0)]);
        assert_eq!(a[(0, 1)], 3.0);
    }

    #[test]
    #[should_panic]
    fn ragged_rows_panic() {
        let _ = Mat::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }

    #[test]
    fn gemm_xwt_matches_scalar_reference_bitwise() {
        // Odd sizes exercise partial tiles on both axes.
        let (rows, k, out_dim) = (67, 39, 41);
        let x: Vec<f32> = (0..rows * k)
            .map(|i| ((i * 37 % 97) as f32 - 48.0) * 0.063)
            .collect();
        let w: Vec<f32> = (0..out_dim * k)
            .map(|i| ((i * 53 % 89) as f32 - 44.0) * 0.041)
            .collect();
        let bias: Vec<f32> = (0..out_dim).map(|i| i as f32 * 0.11 - 2.0).collect();
        let mut out = vec![0.0f32; rows * out_dim];
        gemm_xwt_f32(&x, &w, &bias, k, &mut out);
        for r in 0..rows {
            for o in 0..out_dim {
                let mut acc = 0.0f32;
                for j in 0..k {
                    acc += x[r * k + j] * w[o * k + j];
                }
                assert_eq!(out[r * out_dim + o].to_bits(), (bias[o] + acc).to_bits());
            }
        }
    }

    #[test]
    fn gemm_xwt_empty_rows_is_noop() {
        let mut out = Vec::new();
        gemm_xwt_f32(&[], &[0.5, 0.5], &[1.0], 2, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn axpy_f32_basic() {
        let mut y = vec![1.0f32, 1.0];
        axpy_f32(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn trace_and_max_abs() {
        let a = Mat::from_rows(&[&[1.0, -9.0], &[2.0, 3.0]]);
        assert_eq!(a.trace(), 4.0);
        assert_eq!(a.max_abs(), 9.0);
    }
}
