//! Row-major dense matrix type.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major `f64` matrix.
///
/// The storage is a single flat `Vec<f64>` (perf-book idiom: avoid
/// `Vec<Vec<f64>>` so rows are contiguous and the allocator is touched once).
#[derive(Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// All-zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a flat row-major buffer. Panics if the length mismatches.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "flat buffer length must equal rows*cols");
        Self { rows, cols, data }
    }

    /// Build from row slices. Panics on ragged input.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Self { rows: r, cols: c, data }
    }

    /// Diagonal matrix from a slice.
    pub fn from_diag(d: &[f64]) -> Self {
        let mut m = Self::zeros(d.len(), d.len());
        for (i, &v) in d.iter().enumerate() {
            m[(i, i)] = v;
        }
        m
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy of column `j`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Flat row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Mat {
        let mut t = Mat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix-matrix product `self * other`.
    ///
    /// Uses the i-k-j loop order so the inner loop walks both operands
    /// contiguously (row-major friendly).
    pub fn matmul(&self, other: &Mat) -> Mat {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut out = Mat::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let brow = other.row(k);
                let orow = out.row_mut(i);
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix-vector product.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, x.len(), "dimension mismatch");
        (0..self.rows).map(|i| crate::dot(self.row(i), x)).collect()
    }

    /// `self += alpha * other` elementwise.
    pub fn add_scaled(&mut self, alpha: f64, other: &Mat) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Scale all entries in place.
    pub fn scale_inplace(&mut self, alpha: f64) {
        crate::scale(alpha, &mut self.data);
    }

    /// Rank-1 update `self += alpha * x * y^T`.
    pub fn rank1_update(&mut self, alpha: f64, x: &[f64], y: &[f64]) {
        assert_eq!(x.len(), self.rows);
        assert_eq!(y.len(), self.cols);
        for i in 0..self.rows {
            let ax = alpha * x[i];
            crate::axpy(ax, y, self.row_mut(i));
        }
    }

    /// Maximum absolute entry; 0 for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &v| m.max(v.abs()))
    }

    /// Sum of the diagonal entries (requires square).
    pub fn trace(&self) -> f64 {
        assert_eq!(self.rows, self.cols);
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Symmetrize in place: `A <- (A + A^T)/2`. Useful after accumulating
    /// scatter matrices where round-off breaks exact symmetry.
    pub fn symmetrize(&mut self) {
        assert_eq!(self.rows, self.cols);
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                let v = 0.5 * (self[(i, j)] + self[(j, i)]);
                self[(i, j)] = v;
                self[(j, i)] = v;
            }
        }
    }

    /// True if every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

impl Index<(usize, usize)> for Mat {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:10.4} ", self[(i, j)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matmul_is_noop() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Mat::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Mat::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Mat::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn transpose_involution() {
        let a = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matvec_known() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn rank1_update_known() {
        let mut a = Mat::zeros(2, 2);
        a.rank1_update(2.0, &[1.0, 3.0], &[4.0, 5.0]);
        assert_eq!(a, Mat::from_rows(&[&[8.0, 10.0], &[24.0, 30.0]]));
    }

    #[test]
    fn symmetrize_makes_symmetric() {
        let mut a = Mat::from_rows(&[&[1.0, 2.0], &[4.0, 3.0]]);
        a.symmetrize();
        assert_eq!(a[(0, 1)], a[(1, 0)]);
        assert_eq!(a[(0, 1)], 3.0);
    }

    #[test]
    #[should_panic]
    fn ragged_rows_panic() {
        let _ = Mat::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }

    #[test]
    fn trace_and_max_abs() {
        let a = Mat::from_rows(&[&[1.0, -9.0], &[2.0, 3.0]]);
        assert_eq!(a.trace(), 4.0);
        assert_eq!(a.max_abs(), 9.0);
    }
}
