//! Sample statistics over row-major data matrices.

use crate::Mat;

/// Mean of the rows of `data` (each row is one observation).
pub fn mean_vector(data: &Mat) -> Vec<f64> {
    let (n, d) = (data.rows(), data.cols());
    assert!(n > 0, "mean of empty sample");
    let mut mean = vec![0.0; d];
    for i in 0..n {
        crate::axpy(1.0, data.row(i), &mut mean);
    }
    crate::scale(1.0 / n as f64, &mut mean);
    mean
}

/// Weighted mean of the rows of `data`; weights need not be normalized but
/// must have a positive sum.
pub fn weighted_mean_vector(data: &Mat, weights: &[f64]) -> Vec<f64> {
    let (n, d) = (data.rows(), data.cols());
    assert_eq!(n, weights.len());
    let wsum: f64 = weights.iter().sum();
    assert!(wsum > 0.0, "weights must have positive sum");
    let mut mean = vec![0.0; d];
    for (i, &w) in weights.iter().enumerate() {
        crate::axpy(w, data.row(i), &mut mean);
    }
    crate::scale(1.0 / wsum, &mut mean);
    mean
}

/// Sample covariance (divides by `n`, not `n-1`) of the rows of `data`
/// around the supplied mean.
pub fn covariance_matrix(data: &Mat, mean: &[f64]) -> Mat {
    let (n, d) = (data.rows(), data.cols());
    assert!(n > 0);
    assert_eq!(mean.len(), d);
    let mut cov = Mat::zeros(d, d);
    let mut centered = vec![0.0; d];
    for i in 0..n {
        for (c, (&x, &m)) in centered.iter_mut().zip(data.row(i).iter().zip(mean)) {
            *c = x - m;
        }
        cov.rank1_update(1.0, &centered, &centered);
    }
    cov.scale_inplace(1.0 / n as f64);
    cov.symmetrize();
    cov
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_two_points() {
        let data = Mat::from_rows(&[&[0.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(mean_vector(&data), vec![1.0, 3.0]);
    }

    #[test]
    fn weighted_mean_degenerate_weight() {
        let data = Mat::from_rows(&[&[0.0], &[10.0]]);
        let m = weighted_mean_vector(&data, &[1.0, 0.0]);
        assert_eq!(m, vec![0.0]);
    }

    #[test]
    fn covariance_of_isotropic_square() {
        // Four corners of a square: variance 1 per axis, zero correlation.
        let data = Mat::from_rows(&[&[1.0, 1.0], &[1.0, -1.0], &[-1.0, 1.0], &[-1.0, -1.0]]);
        let mean = mean_vector(&data);
        let cov = covariance_matrix(&data, &mean);
        assert!((cov[(0, 0)] - 1.0).abs() < 1e-12);
        assert!((cov[(1, 1)] - 1.0).abs() < 1e-12);
        assert!(cov[(0, 1)].abs() < 1e-12);
    }

    #[test]
    fn covariance_perfectly_correlated() {
        let data = Mat::from_rows(&[&[-1.0, -2.0], &[1.0, 2.0]]);
        let mean = mean_vector(&data);
        let cov = covariance_matrix(&data, &mean);
        assert!((cov[(0, 0)] - 1.0).abs() < 1e-12);
        assert!((cov[(1, 1)] - 4.0).abs() < 1e-12);
        assert!((cov[(0, 1)] - 2.0).abs() < 1e-12);
    }
}
