//! Cyclic Jacobi eigensolver for real symmetric matrices.

use crate::Mat;

/// Eigendecomposition of a real symmetric matrix: `A = V diag(λ) V^T`.
///
/// Eigenpairs are sorted by **descending** eigenvalue; `vectors` stores the
/// eigenvectors as columns.
#[derive(Clone, Debug)]
pub struct EigenDecomposition {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors, one per column, aligned with `values`.
    pub vectors: Mat,
}

/// Diagonalize a symmetric matrix with the cyclic Jacobi method.
///
/// `a` must be symmetric (only symmetry up to round-off is required; the
/// strictly upper triangle drives the rotations). Converges quadratically;
/// `max_sweeps` bounds the work for pathological inputs.
pub fn jacobi_eigen(a: &Mat, max_sweeps: usize) -> EigenDecomposition {
    assert_eq!(a.rows(), a.cols(), "jacobi_eigen requires a square matrix");
    let n = a.rows();
    let mut m = a.clone();
    let mut v = Mat::identity(n);

    for _sweep in 0..max_sweeps {
        // Off-diagonal Frobenius norm; stop when it is negligible relative to
        // the diagonal scale.
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m[(i, j)] * m[(i, j)];
            }
        }
        let diag_scale: f64 = (0..n)
            .map(|i| m[(i, i)] * m[(i, i)])
            .sum::<f64>()
            .max(1e-300);
        if off <= 1e-26 * diag_scale {
            break;
        }

        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                // Rotation angle: tan(2θ) = 2 a_pq / (a_pp - a_qq)
                let theta = 0.5 * (aqq - app) / apq;
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // Apply the rotation G(p,q,θ): M <- Gᵀ M G, V <- V G.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }

    // Extract and sort by descending eigenvalue.
    let mut order: Vec<usize> = (0..n).collect();
    let values_raw: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
    order.sort_by(|&i, &j| values_raw[j].partial_cmp(&values_raw[i]).unwrap());

    let mut values = Vec::with_capacity(n);
    let mut vectors = Mat::zeros(n, n);
    for (new_col, &old_col) in order.iter().enumerate() {
        values.push(values_raw[old_col]);
        for row in 0..n {
            vectors[(row, new_col)] = v[(row, old_col)];
        }
    }
    EigenDecomposition { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix_eigenvalues_are_diagonal() {
        let a = Mat::from_diag(&[3.0, 1.0, 2.0]);
        let e = jacobi_eigen(&a, 50);
        assert!((e.values[0] - 3.0).abs() < 1e-12);
        assert!((e.values[1] - 2.0).abs() < 1e-12);
        assert!((e.values[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Mat::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = jacobi_eigen(&a, 50);
        assert!((e.values[0] - 3.0).abs() < 1e-12);
        assert!((e.values[1] - 1.0).abs() < 1e-12);
        // Leading eigenvector ∝ (1,1)/√2.
        let v0 = e.vectors.col(0);
        assert!((v0[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-10);
        assert!((v0[0] - v0[1]).abs() < 1e-10);
    }

    #[test]
    fn reconstruction() {
        let a = Mat::from_rows(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, 0.2], &[0.5, 0.2, 1.0]]);
        let e = jacobi_eigen(&a, 100);
        let lam = Mat::from_diag(&e.values);
        let rec = e.vectors.matmul(&lam).matmul(&e.vectors.transpose());
        for i in 0..3 {
            for j in 0..3 {
                assert!((rec[(i, j)] - a[(i, j)]).abs() < 1e-9, "at ({i},{j})");
            }
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = Mat::from_rows(&[&[2.0, -1.0, 0.0], &[-1.0, 2.0, -1.0], &[0.0, -1.0, 2.0]]);
        let e = jacobi_eigen(&a, 100);
        let vtv = e.vectors.transpose().matmul(&e.vectors);
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((vtv[(i, j)] - expect).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let a = Mat::from_rows(&[&[5.0, 2.0], &[2.0, -3.0]]);
        let e = jacobi_eigen(&a, 50);
        assert!((e.values.iter().sum::<f64>() - a.trace()).abs() < 1e-10);
    }
}
