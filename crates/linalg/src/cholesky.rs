//! Cholesky decomposition of symmetric positive-definite matrices.

use crate::{Mat, EPS};

/// Lower-triangular Cholesky factor `L` with `A = L L^T`.
#[derive(Clone, Debug)]
pub struct Cholesky {
    l: Mat,
}

impl Mat {
    /// Cholesky-decompose a symmetric positive-definite matrix.
    ///
    /// Returns `None` when a pivot drops below [`EPS`] (matrix not positive
    /// definite to working precision). Only the lower triangle of `self` is
    /// read, so callers may pass matrices whose upper triangle is stale.
    pub fn cholesky(&self) -> Option<Cholesky> {
        assert_eq!(
            self.rows(),
            self.cols(),
            "cholesky requires a square matrix"
        );
        let n = self.rows();
        let mut l = Mat::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= EPS {
                        return None;
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Some(Cholesky { l })
    }
}

impl Cholesky {
    /// The lower-triangular factor.
    pub fn factor(&self) -> &Mat {
        &self.l
    }

    /// Order of the decomposed matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Solve `A x = b` via forward + back substitution.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(b.len(), n);
        // Forward: L y = b
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for (k, &yk) in y.iter().enumerate().take(i) {
                sum -= self.l[(i, k)] * yk;
            }
            y[i] = sum / self.l[(i, i)];
        }
        // Backward: L^T x = y
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for (k, &xk) in x.iter().enumerate().skip(i + 1) {
                sum -= self.l[(k, i)] * xk;
            }
            x[i] = sum / self.l[(i, i)];
        }
        x
    }

    /// Solve `L y = b` only (forward substitution). Used for whitening.
    pub fn forward_solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(b.len(), n);
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for (k, &yk) in y.iter().enumerate().take(i) {
                sum -= self.l[(i, k)] * yk;
            }
            y[i] = sum / self.l[(i, i)];
        }
        y
    }

    /// Inverse of the original matrix, column by column.
    pub fn inverse(&self) -> Mat {
        let n = self.dim();
        let mut inv = Mat::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let x = self.solve(&e);
            for i in 0..n {
                inv[(i, j)] = x[i];
            }
            e[j] = 0.0;
        }
        inv
    }

    /// `log(det A) = 2 * sum(log L_ii)`.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Mat {
        Mat::from_rows(&[&[4.0, 2.0, 0.6], &[2.0, 5.0, 1.0], &[0.6, 1.0, 3.0]])
    }

    #[test]
    fn reconstructs_original() {
        let a = spd3();
        let c = a.cholesky().unwrap();
        let rec = c.factor().matmul(&c.factor().transpose());
        for i in 0..3 {
            for j in 0..3 {
                assert!((rec[(i, j)] - a[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn solve_roundtrip() {
        let a = spd3();
        let c = a.cholesky().unwrap();
        let b = [1.0, -2.0, 0.5];
        let x = c.solve(&b);
        let ax = a.matvec(&x);
        for i in 0..3 {
            assert!((ax[i] - b[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = spd3();
        let inv = a.cholesky().unwrap().inverse();
        let prod = a.matmul(&inv);
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((prod[(i, j)] - expect).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn log_det_matches_2x2_closed_form() {
        let a = Mat::from_rows(&[&[2.0, 0.5], &[0.5, 3.0]]);
        let det: f64 = 2.0 * 3.0 - 0.25;
        let c = a.cholesky().unwrap();
        assert!((c.log_det() - det.ln()).abs() < 1e-12);
    }

    #[test]
    fn rejects_indefinite() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(a.cholesky().is_none());
    }

    #[test]
    fn rejects_zero_matrix() {
        assert!(Mat::zeros(3, 3).cholesky().is_none());
    }
}
