//! LU decomposition with partial pivoting.

use crate::{Mat, EPS};

/// Packed LU factors of a square matrix with a row-permutation record.
#[derive(Clone, Debug)]
pub struct Lu {
    /// Combined L (unit lower, below diagonal) and U (upper incl. diagonal).
    lu: Mat,
    /// Row permutation: row `i` of the factorization came from `perm[i]` of A.
    perm: Vec<usize>,
    /// Sign of the permutation (+1 or -1); needed for the determinant.
    sign: f64,
}

impl Mat {
    /// LU-decompose with partial pivoting. Returns `None` for a singular
    /// matrix (pivot magnitude below [`EPS`]).
    pub fn lu(&self) -> Option<Lu> {
        assert_eq!(self.rows(), self.cols(), "lu requires a square matrix");
        let n = self.rows();
        let mut lu = self.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;

        for col in 0..n {
            // Pivot search.
            let mut pivot_row = col;
            let mut pivot_val = lu[(col, col)].abs();
            for r in (col + 1)..n {
                let v = lu[(r, col)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < EPS {
                return None;
            }
            if pivot_row != col {
                perm.swap(pivot_row, col);
                sign = -sign;
                for j in 0..n {
                    let tmp = lu[(col, j)];
                    lu[(col, j)] = lu[(pivot_row, j)];
                    lu[(pivot_row, j)] = tmp;
                }
            }
            // Eliminate below the pivot.
            let piv = lu[(col, col)];
            for r in (col + 1)..n {
                let factor = lu[(r, col)] / piv;
                lu[(r, col)] = factor;
                for j in (col + 1)..n {
                    let u = lu[(col, j)];
                    lu[(r, j)] -= factor * u;
                }
            }
        }
        Some(Lu { lu, perm, sign })
    }
}

impl Lu {
    /// Order of the decomposed matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solve `A x = b`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(b.len(), n);
        // Apply permutation, then forward substitution with unit-lower L.
        let mut y: Vec<f64> = (0..n).map(|i| b[self.perm[i]]).collect();
        for i in 0..n {
            for k in 0..i {
                let l = self.lu[(i, k)];
                y[i] -= l * y[k];
            }
        }
        // Back substitution with U.
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                let u = self.lu[(i, k)];
                y[i] -= u * y[k];
            }
            y[i] /= self.lu[(i, i)];
        }
        y
    }

    /// Matrix inverse.
    pub fn inverse(&self) -> Mat {
        let n = self.dim();
        let mut inv = Mat::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let x = self.solve(&e);
            for i in 0..n {
                inv[(i, j)] = x[i];
            }
            e[j] = 0.0;
        }
        inv
    }

    /// Determinant of the original matrix.
    pub fn det(&self) -> f64 {
        let mut d = self.sign;
        for i in 0..self.dim() {
            d *= self.lu[(i, i)];
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_matches_known_solution() {
        // x + 2y = 5 ; 3x - y = 1  =>  x = 1, y = 2
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, -1.0]]);
        let x = a.lu().unwrap().solve(&[5.0, 1.0]);
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn det_known() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert!((a.lu().unwrap().det() + 2.0).abs() < 1e-12);
    }

    #[test]
    fn det_triangular_needs_pivoting() {
        // Zero in the (0,0) slot forces a row swap.
        let a = Mat::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        assert!((a.lu().unwrap().det() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_roundtrip() {
        let a = Mat::from_rows(&[&[2.0, 1.0, 0.0], &[1.0, 3.0, 1.0], &[0.0, 1.0, 2.0]]);
        let inv = a.lu().unwrap().inverse();
        let prod = a.matmul(&inv);
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((prod[(i, j)] - expect).abs() < 1e-10, "at ({i},{j})");
            }
        }
    }

    #[test]
    fn singular_is_rejected() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(a.lu().is_none());
    }
}
