//! Generalized symmetric-definite eigenproblem `A v = λ B v`.
//!
//! This is the numerical core of LDA: with `A` the between-class scatter and
//! `B` the (positive-definite) within-class scatter, the leading generalized
//! eigenvectors span the most discriminative subspace.

use crate::{jacobi_eigen, Mat};

/// Solution of `A v = λ B v` with `B` symmetric positive definite.
#[derive(Clone, Debug)]
pub struct GeneralizedEigen {
    /// Generalized eigenvalues, descending.
    pub values: Vec<f64>,
    /// Eigenvectors (columns), `B`-orthonormal: `Vᵀ B V = I`.
    pub vectors: Mat,
}

/// Solve via Cholesky whitening: with `B = L Lᵀ`, the problem reduces to the
/// ordinary symmetric eigenproblem `(L⁻¹ A L⁻ᵀ) w = λ w`, `v = L⁻ᵀ w`.
///
/// Returns `None` when `B` is not positive definite to working precision.
pub fn generalized_symmetric_eigen(a: &Mat, b: &Mat) -> Option<GeneralizedEigen> {
    assert_eq!(a.rows(), a.cols());
    assert_eq!(b.rows(), b.cols());
    assert_eq!(a.rows(), b.rows(), "A and B must have the same order");
    let n = a.rows();
    let chol = b.cholesky()?;
    let l = chol.factor();

    // C = L⁻¹ A L⁻ᵀ, built column-by-column: first solve L X = A (forward
    // substitution on each column of A), then L Y = Xᵀ, giving C = Yᵀ... but
    // since C is symmetric it is simpler to do it in two passes directly.
    let mut x = Mat::zeros(n, n);
    for j in 0..n {
        let colj = a.col(j);
        let sol = chol.forward_solve(&colj);
        for i in 0..n {
            x[(i, j)] = sol[i];
        }
    }
    // Now C = X L⁻ᵀ  <=>  Cᵀ = L⁻¹ Xᵀ; X row i solved against L gives C row i.
    let mut c = Mat::zeros(n, n);
    for i in 0..n {
        let rowi: Vec<f64> = x.row(i).to_vec();
        let sol = chol.forward_solve(&rowi);
        for j in 0..n {
            c[(i, j)] = sol[j];
        }
    }
    c.symmetrize();

    let eig = jacobi_eigen(&c, 100);

    // Back-substitute: v = L⁻ᵀ w for each eigenvector w (columns of eig.vectors).
    let mut vectors = Mat::zeros(n, n);
    for col in 0..n {
        let w = eig.vectors.col(col);
        // Solve Lᵀ v = w by back substitution.
        let mut v = w;
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                let lk = l[(k, i)];
                let vk = v[k];
                v[i] -= lk * vk;
            }
            v[i] /= l[(i, i)];
        }
        for i in 0..n {
            vectors[(i, col)] = v[i];
        }
    }

    Some(GeneralizedEigen {
        values: eig.values,
        vectors,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduces_to_ordinary_when_b_is_identity() {
        let a = Mat::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let b = Mat::identity(2);
        let g = generalized_symmetric_eigen(&a, &b).unwrap();
        assert!((g.values[0] - 3.0).abs() < 1e-10);
        assert!((g.values[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn satisfies_generalized_equation() {
        let a = Mat::from_rows(&[&[3.0, 1.0, 0.0], &[1.0, 2.0, 0.5], &[0.0, 0.5, 1.0]]);
        let b = Mat::from_rows(&[&[2.0, 0.3, 0.0], &[0.3, 1.5, 0.2], &[0.0, 0.2, 1.0]]);
        let g = generalized_symmetric_eigen(&a, &b).unwrap();
        for col in 0..3 {
            let v = g.vectors.col(col);
            let av = a.matvec(&v);
            let bv = b.matvec(&v);
            for i in 0..3 {
                assert!(
                    (av[i] - g.values[col] * bv[i]).abs() < 1e-8,
                    "eigenpair {col} violates A v = λ B v at row {i}"
                );
            }
        }
    }

    #[test]
    fn vectors_are_b_orthonormal() {
        let a = Mat::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]);
        let b = Mat::from_rows(&[&[2.0, 0.5], &[0.5, 1.0]]);
        let g = generalized_symmetric_eigen(&a, &b).unwrap();
        let vtbv = g.vectors.transpose().matmul(&b).matmul(&g.vectors);
        for i in 0..2 {
            for j in 0..2 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((vtbv[(i, j)] - expect).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn rejects_indefinite_b() {
        let a = Mat::identity(2);
        let b = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        assert!(generalized_symmetric_eigen(&a, &b).is_none());
    }
}
