//! Levinson-Durbin recursion for linear-prediction (LPC) analysis.
//!
//! Used by the PLP feature pipeline in `lre-dsp`: an all-pole model is fit to
//! the (perceptually warped) power spectrum via its autocorrelation.

/// Result of fitting an order-`p` all-pole model.
#[derive(Clone, Debug)]
pub struct LpcResult {
    /// LPC coefficients `a[1..=p]` with the convention
    /// `x[n] ≈ -Σ_k a[k] x[n-k]`; `coeffs.len() == p`.
    pub coeffs: Vec<f64>,
    /// Reflection (PARCOR) coefficients, one per order.
    pub reflection: Vec<f64>,
    /// Final prediction-error power (model gain²).
    pub error: f64,
}

/// Biased autocorrelation of `x` for lags `0..=max_lag`.
pub fn autocorrelation(x: &[f64], max_lag: usize) -> Vec<f64> {
    let n = x.len();
    let mut r = vec![0.0; max_lag + 1];
    for (lag, rl) in r.iter_mut().enumerate() {
        if lag >= n {
            break;
        }
        let mut acc = 0.0;
        for i in lag..n {
            acc += x[i] * x[i - lag];
        }
        *rl = acc;
    }
    r
}

/// Levinson-Durbin recursion on autocorrelation `r[0..=p]`.
///
/// Returns `None` when `r[0] <= 0` (no signal energy) or the recursion goes
/// numerically unstable (prediction error becomes non-positive).
pub fn levinson_durbin(r: &[f64], order: usize) -> Option<LpcResult> {
    assert!(r.len() > order, "need autocorrelation up to lag `order`");
    if r[0] <= 0.0 {
        return None;
    }
    let mut a = vec![0.0_f64; order + 1]; // a[0] implicitly 1, slots 1..=order used
    let mut reflection = Vec::with_capacity(order);
    let mut err = r[0];

    for m in 1..=order {
        let mut acc = r[m];
        for k in 1..m {
            acc += a[k] * r[m - k];
        }
        let k_m = -acc / err;
        reflection.push(k_m);

        // Update coefficients symmetrically.
        a[m] = k_m;
        let half = m / 2;
        for k in 1..=half {
            let tmp = a[k] + k_m * a[m - k];
            a[m - k] += k_m * a[k];
            a[k] = tmp;
        }

        err *= 1.0 - k_m * k_m;
        if err <= 0.0 {
            return None;
        }
    }

    Some(LpcResult {
        coeffs: a[1..=order].to_vec(),
        reflection,
        error: err,
    })
}

/// Convert LPC coefficients to `n_cep` cepstral coefficients (excluding c0)
/// using the standard recursion; `gain2` is the prediction-error power.
///
/// The returned vector is `[c0, c1, ..., c_{n_cep}]` where `c0 = ln(gain2)`.
pub fn lpc_to_cepstrum(lpc: &[f64], gain2: f64, n_cep: usize) -> Vec<f64> {
    let p = lpc.len();
    let mut c = vec![0.0; n_cep + 1];
    c[0] = gain2.max(1e-300).ln();
    for n in 1..=n_cep {
        // c_n = -a_n - (1/n) Σ_{k=1}^{n-1} k c_k a_{n-k}
        let mut acc = if n <= p { -lpc[n - 1] } else { 0.0 };
        for k in 1..n {
            if n - k <= p {
                acc -= (k as f64 / n as f64) * c[k] * lpc[n - k - 1];
            }
        }
        c[n] = acc;
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn autocorrelation_of_impulse() {
        let r = autocorrelation(&[1.0, 0.0, 0.0, 0.0], 3);
        assert_eq!(r, vec![1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn autocorrelation_symmetric_signal() {
        let x = [1.0, 2.0, 3.0];
        let r = autocorrelation(&x, 2);
        assert!((r[0] - 14.0).abs() < 1e-12);
        assert!((r[1] - 8.0).abs() < 1e-12); // 2*1 + 3*2
        assert!((r[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn recovers_ar1_coefficient() {
        // AR(1): x[n] = 0.9 x[n-1] + e[n]. Theoretical autocorrelation r[k] ∝ 0.9^k.
        let rho: f64 = 0.9;
        let r: Vec<f64> = (0..4).map(|k| rho.powi(k)).collect();
        let lpc = levinson_durbin(&r, 1).unwrap();
        // Convention: x[n] ≈ -a1 x[n-1] so a1 ≈ -0.9.
        assert!((lpc.coeffs[0] + rho).abs() < 1e-10);
        assert!((lpc.error - (1.0 - rho * rho)).abs() < 1e-10);
    }

    #[test]
    fn recovers_ar2_coefficients() {
        // Build exact autocorrelation of AR(2) via Yule-Walker forward pass.
        let (a1, a2) = (1.2, -0.5); // x[n] = a1 x[n-1] + a2 x[n-2] + e
                                    // Solve stationary Yule-Walker equations for r1, r2 with r0 = 1:
                                    // r1 = a1 r0 + a2 r1 => r1 = a1 / (1 - a2)
        let r1 = a1 / (1.0 - a2);
        let r2 = a1 * r1 + a2;
        let r3 = a1 * r2 + a2 * r1;
        let r = vec![1.0, r1, r2, r3];
        let lpc = levinson_durbin(&r, 2).unwrap();
        assert!((lpc.coeffs[0] + a1).abs() < 1e-9, "a1: {}", lpc.coeffs[0]);
        assert!((lpc.coeffs[1] + a2).abs() < 1e-9, "a2: {}", lpc.coeffs[1]);
    }

    #[test]
    fn reflection_coefficients_bounded_for_valid_autocorrelation() {
        let x: Vec<f64> = (0..128)
            .map(|i| ((i as f64) * 0.7).sin() + 0.3 * ((i as f64) * 2.1).cos())
            .collect();
        let r = autocorrelation(&x, 12);
        let lpc = levinson_durbin(&r, 12).unwrap();
        for &k in &lpc.reflection {
            assert!(k.abs() <= 1.0 + 1e-9, "|k| = {}", k.abs());
        }
        assert!(lpc.error > 0.0);
    }

    #[test]
    fn zero_energy_rejected() {
        assert!(levinson_durbin(&[0.0, 0.0, 0.0], 2).is_none());
    }

    #[test]
    fn cepstrum_of_first_order_model() {
        // For A(z) = 1 + a1 z^{-1}, c_n = -(-a1)^n / n … specifically c1 = -a1.
        let c = lpc_to_cepstrum(&[-0.5], 1.0, 3);
        assert!((c[0] - 0.0).abs() < 1e-12); // ln(1.0)
        assert!((c[1] - 0.5).abs() < 1e-12);
        // c2 = -a2 - (1/2) c1 a1 = 0 - 0.5*0.5*(-0.5) = 0.125
        assert!((c[2] - 0.125).abs() < 1e-12);
    }
}
