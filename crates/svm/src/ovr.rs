//! One-versus-rest multiclass wrapper (Eq. 6/7).

use crate::dcd::{train_binary, LinearSvm, SvmTrainConfig};
use lre_vsm::SparseVec;
use rayon::prelude::*;

/// One-vs-rest ensemble: model `k` scores "class k vs the rest".
///
/// This is the paper's language-model matrix **M** for one subsystem
/// (Eq. 7): `mdl_qk` is the SVM for language `k` in subsystem `q`, trained
/// with `y'_i = +1` for class-k examples and `−1` otherwise (Eq. 6). The
/// same code path trains baseline VSMs and DBA-retrained VSMs — the paper's
/// "component classifiers have the same structure … and are trained with
/// the same criterion" property.
#[derive(Clone, Debug)]
pub struct OneVsRest {
    models: Vec<LinearSvm>,
}

impl OneVsRest {
    /// Train `num_classes` binary models. `labels[i] ∈ 0..num_classes`.
    ///
    /// Per-class cost weighting: the positive class cost is scaled by the
    /// negative/positive count ratio so the 1-vs-(K−1) imbalance does not
    /// collapse the positive margin. Classes train in parallel (rayon).
    pub fn train(
        xs: &[SparseVec],
        labels: &[usize],
        num_classes: usize,
        dim: usize,
        cfg: &SvmTrainConfig,
    ) -> OneVsRest {
        assert_eq!(xs.len(), labels.len());
        assert!(labels.iter().all(|&l| l < num_classes));
        let models = (0..num_classes)
            .into_par_iter()
            .map(|k| {
                let ys: Vec<i8> = labels
                    .iter()
                    .map(|&l| if l == k { 1 } else { -1 })
                    .collect();
                let n_pos = ys.iter().filter(|&&y| y == 1).count().max(1);
                let n_neg = (ys.len() - n_pos).max(1);
                let class_cfg = SvmTrainConfig {
                    c_pos: cfg.c_pos * (n_neg as f32 / n_pos as f32),
                    seed: cfg.seed ^ (k as u64).wrapping_mul(0x9E37_79B9),
                    ..*cfg
                };
                train_binary(xs, &ys, dim, &class_cfg)
            })
            .collect();
        OneVsRest { models }
    }

    pub fn num_classes(&self) -> usize {
        self.models.len()
    }

    pub fn model(&self, k: usize) -> &LinearSvm {
        &self.models[k]
    }

    /// Decision values of all class models for one input — one row of the
    /// paper's score matrix **F_q** (Eq. 9).
    pub fn scores(&self, x: &SparseVec) -> Vec<f32> {
        self.models.iter().map(|m| m.score(x)).collect()
    }

    /// Arg-max classification.
    pub fn predict(&self, x: &SparseVec) -> usize {
        let s = self.scores(x);
        let mut best = 0;
        for (k, &v) in s.iter().enumerate() {
            if v > s[best] {
                best = k;
            }
        }
        best
    }
}

impl lre_artifact::ArtifactWrite for OneVsRest {
    const KIND: [u8; 4] = *b"OVRS";
    const VERSION: u32 = 1;

    fn write_payload(&self, w: &mut lre_artifact::ArtifactWriter) {
        w.put_u32(self.models.len() as u32);
        for m in &self.models {
            m.write_payload(w);
        }
    }
}

impl lre_artifact::ArtifactRead for OneVsRest {
    fn read_payload(
        r: &mut lre_artifact::ArtifactReader,
    ) -> Result<OneVsRest, lre_artifact::ArtifactError> {
        use lre_artifact::ArtifactError;
        let n = r.get_u32()? as usize;
        if n == 0 {
            return Err(ArtifactError::Corrupt("one-vs-rest with zero classes"));
        }
        let models: Vec<LinearSvm> = (0..n)
            .map(|_| LinearSvm::read_payload(r))
            .collect::<Result<_, _>>()?;
        if models
            .iter()
            .any(|m| m.weights().len() != models[0].weights().len())
        {
            return Err(ArtifactError::Corrupt("class model dimensions disagree"));
        }
        Ok(OneVsRest { models })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(pairs: &[(u32, f32)]) -> SparseVec {
        SparseVec::from_pairs(pairs.to_vec())
    }

    /// Three well-separated classes at corners of a triangle in 2-D.
    fn three_class() -> (Vec<SparseVec>, Vec<usize>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let centers = [(0.0f32, 3.0f32), (-3.0, -2.0), (3.0, -2.0)];
        for (k, &(cx, cy)) in centers.iter().enumerate() {
            for (dx, dy) in [(0.0, 0.0), (0.3, -0.2), (-0.2, 0.3), (0.1, 0.1)] {
                xs.push(sv(&[(0, cx + dx), (1, cy + dy)]));
                ys.push(k);
            }
        }
        (xs, ys)
    }

    #[test]
    fn classifies_three_classes() {
        let (xs, ys) = three_class();
        let ovr = OneVsRest::train(&xs, &ys, 3, 2, &SvmTrainConfig::default());
        for (x, &y) in xs.iter().zip(&ys) {
            assert_eq!(ovr.predict(x), y);
        }
    }

    #[test]
    fn own_class_scores_highest_and_positive() {
        let (xs, ys) = three_class();
        let ovr = OneVsRest::train(&xs, &ys, 3, 2, &SvmTrainConfig::default());
        let s = ovr.scores(&xs[0]);
        assert_eq!(s.len(), 3);
        assert!(s[ys[0]] > 0.0);
        for k in 0..3 {
            if k != ys[0] {
                assert!(s[ys[0]] > s[k]);
            }
        }
    }

    #[test]
    fn handles_class_with_single_example() {
        let xs = vec![
            sv(&[(0, 1.0)]),
            sv(&[(0, -1.0)]),
            sv(&[(0, -1.2)]),
            sv(&[(0, -0.8)]),
        ];
        let ys = vec![0usize, 1, 1, 1];
        let ovr = OneVsRest::train(&xs, &ys, 2, 1, &SvmTrainConfig::default());
        assert_eq!(ovr.predict(&sv(&[(0, 1.1)])), 0);
        assert_eq!(ovr.predict(&sv(&[(0, -1.1)])), 1);
    }

    #[test]
    fn deterministic_training() {
        let (xs, ys) = three_class();
        let a = OneVsRest::train(&xs, &ys, 3, 2, &SvmTrainConfig::default());
        let b = OneVsRest::train(&xs, &ys, 3, 2, &SvmTrainConfig::default());
        for k in 0..3 {
            assert_eq!(a.model(k).weights(), b.model(k).weights());
        }
    }
}
