//! Linear support vector machines over sparse supervectors.
//!
//! The paper's VSM back-end is "a popular classifier LIBLINEAR" (§4.1) with
//! the TFLLR kernel (Eq. 5) and one-versus-rest training (§2.3). Since
//! TFLLR scaling is applied to the features (see `lre-vsm`), the kernel is
//! linear and the model of Eq. 4 reduces to `f(φ(x)) = wᵀφ(x) + d`. This
//! crate reimplements the matching LIBLINEAR algorithm — dual coordinate
//! descent for L2-regularized L1/L2-loss SVC (Hsieh et al., 2008) — plus the
//! one-vs-rest wrapper (Eq. 6/7: each class's model is trained with that
//! class mapped to +1 and the rest to −1).

mod dcd;
mod ovr;

pub use dcd::{train_binary, LinearSvm, Loss, SvmTrainConfig};
pub use ovr::OneVsRest;
