//! Dual coordinate descent for L2-regularized L1/L2-loss linear SVC.

use lre_vsm::SparseVec;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Hinge-loss variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Loss {
    /// L1 (standard hinge): dual upper bound `α ≤ C`.
    L1,
    /// L2 (squared hinge): unbounded dual, diagonal regularizer `1/(2C)`.
    L2,
}

/// Training configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SvmTrainConfig {
    /// Cost parameter for positive examples.
    pub c_pos: f32,
    /// Cost parameter for negative examples (one-vs-rest is 1-vs-22
    /// imbalanced, so `c_pos > c_neg` is the usual compensation).
    pub c_neg: f32,
    pub loss: Loss,
    /// Outer epochs over the (shuffled) training set.
    pub max_iter: usize,
    /// Stop when the largest projected-gradient violation in an epoch falls
    /// below this.
    pub tol: f32,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for SvmTrainConfig {
    fn default() -> Self {
        Self {
            c_pos: 1.0,
            c_neg: 1.0,
            loss: Loss::L2,
            max_iter: 60,
            tol: 1e-3,
            seed: 1,
        }
    }
}

/// A trained linear SVM: `f(x) = wᵀx + d` (Eq. 4 after TFLLR scaling).
#[derive(Clone, Debug)]
pub struct LinearSvm {
    /// Weights over the feature dimensions.
    w: Vec<f32>,
    /// Bias term `d`, learned via an implicit all-ones feature.
    bias: f32,
}

impl LinearSvm {
    /// Decision value for a sparse input.
    #[inline]
    pub fn score(&self, x: &SparseVec) -> f32 {
        x.dot_dense(&self.w) + self.bias
    }

    pub fn weights(&self) -> &[f32] {
        &self.w
    }

    pub fn bias(&self) -> f32 {
        self.bias
    }

    pub fn dim(&self) -> usize {
        self.w.len()
    }
}

/// Train a binary SVM on sparse features.
///
/// `ys[i]` must be `+1` or `-1`; `dim` bounds the feature indices. The bias
/// is learned by augmenting every example with a constant-1 feature
/// (LIBLINEAR's `-B 1`).
pub fn train_binary(xs: &[SparseVec], ys: &[i8], dim: usize, cfg: &SvmTrainConfig) -> LinearSvm {
    assert_eq!(xs.len(), ys.len());
    let n = xs.len();
    let mut w = vec![0.0f32; dim];
    let mut bias = 0.0f32;
    if n == 0 {
        return LinearSvm { w, bias };
    }
    assert!(ys.iter().all(|&y| y == 1 || y == -1), "labels must be ±1");

    // Per-example constants: Q̄_ii = ‖x_i‖² + 1 (bias feature) [+ 1/(2C)],
    // dual upper bound U_i.
    type LossFn = Box<dyn Fn(f32) -> f32>;
    let (diag_add, upper): (LossFn, LossFn) = match cfg.loss {
        Loss::L1 => (Box::new(|_c: f32| 0.0), Box::new(|c: f32| c)),
        Loss::L2 => (
            Box::new(|c: f32| 1.0 / (2.0 * c)),
            Box::new(|_c: f32| f32::INFINITY),
        ),
    };
    let cost = |y: i8| if y > 0 { cfg.c_pos } else { cfg.c_neg };
    let qdiag: Vec<f32> = xs
        .iter()
        .zip(ys)
        .map(|(x, &y)| x.norm_sq() + 1.0 + diag_add(cost(y)))
        .collect();

    let mut alpha = vec![0.0f32; n];
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    for _epoch in 0..cfg.max_iter {
        // Fisher-Yates shuffle per epoch, as in LIBLINEAR.
        for i in (1..n).rev() {
            order.swap(i, rng.random_range(0..=i));
        }
        let mut max_violation = 0.0f32;
        for &i in &order {
            let x = &xs[i];
            let y = ys[i] as f32;
            let c = cost(ys[i]);
            let u = upper(c);

            // Gradient of the dual objective for coordinate i.
            let g = y * (x.dot_dense(&w) + bias) - 1.0 + diag_add(c) * alpha[i];

            // Projected gradient.
            let pg = if alpha[i] <= 0.0 {
                g.min(0.0)
            } else if alpha[i] >= u {
                g.max(0.0)
            } else {
                g
            };
            max_violation = max_violation.max(pg.abs());
            if pg.abs() < 1e-12 {
                continue;
            }

            let old = alpha[i];
            alpha[i] = (old - g / qdiag[i]).clamp(0.0, u);
            let delta = (alpha[i] - old) * y;
            if delta != 0.0 {
                x.axpy_into(delta, &mut w);
                bias += delta; // the implicit constant-1 feature
            }
        }
        if max_violation < cfg.tol {
            break;
        }
    }
    LinearSvm { w, bias }
}

// The training config travels inside system bundles so downstream
// retraining (the online DBA adaptation worker) reproduces offline
// training bit-for-bit — same costs, same loss, same shuffle seed.
impl lre_artifact::ArtifactWrite for SvmTrainConfig {
    const KIND: [u8; 4] = *b"SVCF";
    const VERSION: u32 = 1;

    fn write_payload(&self, w: &mut lre_artifact::ArtifactWriter) {
        w.put_f32(self.c_pos);
        w.put_f32(self.c_neg);
        w.put_u8(match self.loss {
            Loss::L1 => 0,
            Loss::L2 => 1,
        });
        w.put_u32(self.max_iter as u32);
        w.put_f32(self.tol);
        w.put_u64(self.seed);
    }
}

impl lre_artifact::ArtifactRead for SvmTrainConfig {
    fn read_payload(
        r: &mut lre_artifact::ArtifactReader,
    ) -> Result<SvmTrainConfig, lre_artifact::ArtifactError> {
        let c_pos = r.get_f32()?;
        let c_neg = r.get_f32()?;
        let loss = match r.get_u8()? {
            0 => Loss::L1,
            1 => Loss::L2,
            _ => return Err(lre_artifact::ArtifactError::Corrupt("unknown SVM loss tag")),
        };
        let max_iter = r.get_u32()? as usize;
        let tol = r.get_f32()?;
        let seed = r.get_u64()?;
        Ok(SvmTrainConfig {
            c_pos,
            c_neg,
            loss,
            max_iter,
            tol,
            seed,
        })
    }
}

impl lre_artifact::ArtifactWrite for LinearSvm {
    const KIND: [u8; 4] = *b"LSVM";
    const VERSION: u32 = 1;

    fn write_payload(&self, w: &mut lre_artifact::ArtifactWriter) {
        w.put_f32_slice(&self.w);
        w.put_f32(self.bias);
    }
}

impl lre_artifact::ArtifactRead for LinearSvm {
    fn read_payload(
        r: &mut lre_artifact::ArtifactReader,
    ) -> Result<LinearSvm, lre_artifact::ArtifactError> {
        let w = r.get_f32_slice()?;
        let bias = r.get_f32()?;
        if w.is_empty() {
            return Err(lre_artifact::ArtifactError::Corrupt("SVM with no weights"));
        }
        Ok(LinearSvm { w, bias })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(pairs: &[(u32, f32)]) -> SparseVec {
        SparseVec::from_pairs(pairs.to_vec())
    }

    /// Linearly separable 2-D set.
    fn separable() -> (Vec<SparseVec>, Vec<i8>) {
        let xs = vec![
            sv(&[(0, 2.0), (1, 2.0)]),
            sv(&[(0, 1.5), (1, 2.5)]),
            sv(&[(0, 2.5), (1, 1.5)]),
            sv(&[(0, -2.0), (1, -2.0)]),
            sv(&[(0, -1.5), (1, -2.5)]),
            sv(&[(0, -2.5), (1, -1.5)]),
        ];
        let ys = vec![1, 1, 1, -1, -1, -1];
        (xs, ys)
    }

    #[test]
    fn separates_separable_data() {
        let (xs, ys) = separable();
        for loss in [Loss::L1, Loss::L2] {
            let cfg = SvmTrainConfig {
                loss,
                ..Default::default()
            };
            let m = train_binary(&xs, &ys, 2, &cfg);
            for (x, &y) in xs.iter().zip(&ys) {
                assert!(
                    m.score(x) * y as f32 > 0.0,
                    "{loss:?}: misclassified {x:?} (score {})",
                    m.score(x)
                );
            }
        }
    }

    #[test]
    fn margins_reach_one_on_support_vectors() {
        let (xs, ys) = separable();
        let cfg = SvmTrainConfig {
            c_pos: 10.0,
            c_neg: 10.0,
            max_iter: 500,
            ..Default::default()
        };
        let m = train_binary(&xs, &ys, 2, &cfg);
        // With large C the functional margin of the closest points ≈ 1.
        let min_margin = xs
            .iter()
            .zip(&ys)
            .map(|(x, &y)| m.score(x) * y as f32)
            .fold(f32::INFINITY, f32::min);
        assert!((min_margin - 1.0).abs() < 0.1, "min margin {min_margin}");
    }

    #[test]
    fn class_weighting_shifts_boundary() {
        // Overlapping point at origin labelled negative; heavy positive cost
        // should push the boundary so the origin scores closer to positive.
        let xs = vec![sv(&[(0, 1.0)]), sv(&[(0, -1.0)]), sv(&[(0, -0.1)])];
        let ys = vec![1, -1, 1];
        let balanced = train_binary(&xs, &ys, 1, &SvmTrainConfig::default());
        let heavy_pos = train_binary(
            &xs,
            &ys,
            1,
            &SvmTrainConfig {
                c_pos: 20.0,
                c_neg: 0.5,
                ..Default::default()
            },
        );
        assert!(heavy_pos.score(&sv(&[(0, -0.1)])) > balanced.score(&sv(&[(0, -0.1)])));
    }

    #[test]
    fn empty_training_set_gives_zero_model() {
        let m = train_binary(&[], &[], 4, &SvmTrainConfig::default());
        assert_eq!(m.score(&sv(&[(0, 1.0)])), 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let (xs, ys) = separable();
        let a = train_binary(&xs, &ys, 2, &SvmTrainConfig::default());
        let b = train_binary(&xs, &ys, 2, &SvmTrainConfig::default());
        assert_eq!(a.weights(), b.weights());
        assert_eq!(a.bias(), b.bias());
    }

    #[test]
    fn bias_handles_offset_data() {
        // One-dimensional data separable only with a bias: y=+1 iff x > 3.
        let xs: Vec<SparseVec> = (0..10).map(|i| sv(&[(0, i as f32)])).collect();
        let ys: Vec<i8> = (0..10).map(|i| if i > 3 { 1 } else { -1 }).collect();
        let cfg = SvmTrainConfig {
            c_pos: 10.0,
            c_neg: 10.0,
            max_iter: 300,
            ..Default::default()
        };
        let m = train_binary(&xs, &ys, 1, &cfg);
        let correct = xs
            .iter()
            .zip(&ys)
            .filter(|(x, &y)| m.score(x) * y as f32 > 0.0)
            .count();
        assert_eq!(
            correct,
            10,
            "bias term failed: w={:?} d={}",
            m.weights(),
            m.bias()
        );
    }

    #[test]
    fn train_config_roundtrips_and_rejects_bad_loss() {
        use lre_artifact::{ArtifactRead, ArtifactWrite};
        let cfg = SvmTrainConfig {
            c_pos: 23.0,
            c_neg: 0.5,
            loss: Loss::L1,
            max_iter: 17,
            tol: 2.5e-4,
            seed: 0xFEED_FACE,
        };
        let back = SvmTrainConfig::from_artifact_bytes(&cfg.to_artifact_bytes()).unwrap();
        assert_eq!(back, cfg);
        // A corrupted loss tag is a typed error, not a silent default.
        let mut w = lre_artifact::ArtifactWriter::new();
        cfg.write_payload(&mut w);
        let mut bytes = w.into_bytes();
        bytes[8] = 9; // the loss tag byte (after two f32 costs)
        let sealed = lre_artifact::seal(SvmTrainConfig::KIND, SvmTrainConfig::VERSION, &bytes);
        assert!(SvmTrainConfig::from_artifact_bytes(&sealed).is_err());
    }
}
