//! Property-based tests for the dual-coordinate-descent SVM.

use lre_artifact::{check_damage_detected, ArtifactRead, ArtifactWrite};
use lre_svm::{train_binary, Loss, OneVsRest, SvmTrainConfig};
use lre_vsm::SparseVec;
use proptest::prelude::*;

/// Generate a linearly separable problem: points at `center ± margin` along
/// a random-ish axis with bounded jitter.
fn separable_problem() -> impl Strategy<Value = (Vec<SparseVec>, Vec<i8>)> {
    (2usize..6, 4usize..20, 0.0f32..0.3).prop_map(|(dim, n_per_class, jitter)| {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..2 * n_per_class {
            let y: i8 = if i % 2 == 0 { 1 } else { -1 };
            let pairs: Vec<(u32, f32)> = (0..dim as u32)
                .map(|d| {
                    let base = if d == 0 { 2.0 * y as f32 } else { 0.3 };
                    (d, base + jitter * ((i as f32 * 0.7 + d as f32).sin()))
                })
                .collect();
            xs.push(SparseVec::from_pairs(pairs));
            ys.push(y);
        }
        (xs, ys)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn separable_data_is_separated((xs, ys) in separable_problem(), loss in prop_oneof![Just(Loss::L1), Just(Loss::L2)]) {
        let dim = 8;
        let cfg = SvmTrainConfig { loss, max_iter: 200, ..Default::default() };
        let m = train_binary(&xs, &ys, dim, &cfg);
        for (x, &y) in xs.iter().zip(&ys) {
            prop_assert!(m.score(x) * y as f32 > 0.0, "misclassified: score {}", m.score(x));
        }
    }

    #[test]
    fn model_is_deterministic((xs, ys) in separable_problem()) {
        let cfg = SvmTrainConfig::default();
        let a = train_binary(&xs, &ys, 8, &cfg);
        let b = train_binary(&xs, &ys, 8, &cfg);
        prop_assert_eq!(a.weights(), b.weights());
    }

    #[test]
    fn label_flip_flips_the_model((xs, ys) in separable_problem()) {
        // Training with −y should (for this symmetric construction) produce
        // the mirrored decision function.
        let cfg = SvmTrainConfig { max_iter: 300, ..Default::default() };
        let m_pos = train_binary(&xs, &ys, 8, &cfg);
        let flipped: Vec<i8> = ys.iter().map(|&y| -y).collect();
        let m_neg = train_binary(&xs, &flipped, 8, &cfg);
        for x in &xs {
            let (a, b) = (m_pos.score(x), m_neg.score(x));
            prop_assert!((a + b).abs() < 0.35 * (1.0 + a.abs()),
                "scores not (approximately) mirrored: {a} vs {b}");
        }
    }

    #[test]
    fn ovr_scores_match_binary_models((xs, ys) in separable_problem()) {
        // A 2-class one-vs-rest ensemble must rank classes consistently with
        // its own per-class decision values.
        let labels: Vec<usize> = ys.iter().map(|&y| usize::from(y < 0)).collect();
        let ovr = OneVsRest::train(&xs, &labels, 2, 8, &SvmTrainConfig::default());
        for (x, &l) in xs.iter().zip(&labels) {
            let s = ovr.scores(x);
            prop_assert_eq!(s.len(), 2);
            prop_assert_eq!(ovr.predict(x), if s[0] >= s[1] { 0 } else { 1 });
            prop_assert_eq!(ovr.predict(x), l);
        }
    }

    #[test]
    fn duplicated_dataset_trains_same_model((xs, ys) in separable_problem()) {
        // The dual solution scales but the decision boundary's sign pattern
        // is unchanged when every sample is duplicated.
        let cfg = SvmTrainConfig { max_iter: 300, ..Default::default() };
        let m1 = train_binary(&xs, &ys, 8, &cfg);
        let mut xs2 = xs.clone();
        xs2.extend(xs.iter().cloned());
        let mut ys2 = ys.clone();
        ys2.extend(ys.iter().copied());
        let m2 = train_binary(&xs2, &ys2, 8, &cfg);
        for (x, &y) in xs.iter().zip(&ys) {
            prop_assert!(m1.score(x) * y as f32 > 0.0);
            prop_assert!(m2.score(x) * y as f32 > 0.0);
        }
    }

    #[test]
    fn ovr_artifact_roundtrip_scores_bit_identically(
        (xs, ys) in separable_problem(),
        probe in 0usize..1 << 16,
    ) {
        let labels: Vec<usize> = ys.iter().map(|&y| usize::from(y < 0)).collect();
        let ovr = OneVsRest::train(&xs, &labels, 2, 8, &SvmTrainConfig::default());
        let sealed = ovr.to_artifact_bytes();
        let back = OneVsRest::from_artifact_bytes(&sealed).expect("round trip");
        prop_assert_eq!(back.num_classes(), 2);
        for x in &xs {
            let (a, b) = (ovr.scores(x), back.scores(x));
            for (p, q) in a.iter().zip(&b) {
                prop_assert_eq!(p.to_bits(), q.to_bits(), "reloaded OvR must score to the bit");
            }
        }
        check_damage_detected::<OneVsRest>(&sealed, probe);
    }
}
