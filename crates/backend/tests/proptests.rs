//! Property-based tests for the fusion backend's artifact round trips:
//! a reloaded backend must reproduce every fused LLR to the bit, and a
//! damaged container must fail with a typed error, never a panic.

use lre_artifact::{check_damage_detected, ArtifactRead, ArtifactWrite};
use lre_backend::{LdaMmiFusion, MmiConfig, ZNorm};
use lre_eval::ScoreMatrix;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn random_scores(rng: &mut StdRng, n: usize, k: usize) -> ScoreMatrix {
    let mut m = ScoreMatrix::new(k);
    let mut row = vec![0.0f32; k];
    for _ in 0..n {
        for r in row.iter_mut() {
            *r = rng.random::<f32>() * 4.0 - 2.0;
        }
        m.push_row(&row);
    }
    m
}

fn assert_matrix_bits_eq(a: &ScoreMatrix, b: &ScoreMatrix) {
    assert_eq!(a.num_utts(), b.num_utts());
    for i in 0..a.num_utts() {
        for (p, q) in a.row(i).iter().zip(b.row(i)) {
            assert_eq!(p.to_bits(), q.to_bits(), "fused LLRs must match to the bit");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn znorm_artifact_roundtrip_applies_bit_identically(
        seed in 0u64..200,
        probe in 0usize..1 << 16,
    ) {
        let (n, k) = (40, 4);
        let mut rng = StdRng::seed_from_u64(seed);
        let dev = random_scores(&mut rng, n, k);
        let labels: Vec<usize> = (0..n).map(|i| i % k).collect();
        let z = ZNorm::fit(&dev, &labels);
        let sealed = z.to_artifact_bytes();
        let back = ZNorm::from_artifact_bytes(&sealed).expect("round trip");
        let test = random_scores(&mut rng, 10, k);
        assert_matrix_bits_eq(&z.apply(&test), &back.apply(&test));
        check_damage_detected::<ZNorm>(&sealed, probe);
    }

    // Small dev sets take the linear-calibration path inside the fusion;
    // this is the regime every Smoke/Demo experiment exercises.
    #[test]
    fn fusion_linear_path_roundtrip_applies_bit_identically(
        seed in 0u64..100,
        probe in 0usize..1 << 16,
    ) {
        let (n, k, q) = (48, 4, 3);
        let mut rng = StdRng::seed_from_u64(seed);
        let labels: Vec<usize> = (0..n).map(|i| i % k).collect();
        let devs: Vec<ScoreMatrix> = (0..q).map(|_| random_scores(&mut rng, n, k)).collect();
        let refs: Vec<&ScoreMatrix> = devs.iter().collect();
        let fusion = LdaMmiFusion::train(&refs, &labels, &[1.0, 1.0, 1.0], &MmiConfig::default());
        let sealed = fusion.to_artifact_bytes();
        let back = LdaMmiFusion::from_artifact_bytes(&sealed).expect("round trip");
        prop_assert_eq!(back.num_subsystems(), q);
        let tests: Vec<ScoreMatrix> = (0..q).map(|_| random_scores(&mut rng, 20, k)).collect();
        let trefs: Vec<&ScoreMatrix> = tests.iter().collect();
        assert_matrix_bits_eq(&fusion.apply(&trefs), &back.apply(&trefs));
        check_damage_detected::<LdaMmiFusion>(&sealed, probe);
    }
}

// Large dev sets cross the LDA threshold (40 per class) and train the
// LDA + MMI-Gaussian backend — one deterministic case keeps the heavier
// path covered without a full property sweep.
#[test]
fn fusion_lda_mmi_path_roundtrip_applies_bit_identically() {
    let (n, k, q) = (200, 4, 2);
    let mut rng = StdRng::seed_from_u64(7);
    let labels: Vec<usize> = (0..n).map(|i| i % k).collect();
    let devs: Vec<ScoreMatrix> = (0..q).map(|_| random_scores(&mut rng, n, k)).collect();
    let refs: Vec<&ScoreMatrix> = devs.iter().collect();
    let fusion = LdaMmiFusion::train(&refs, &labels, &[1.0, 1.0], &MmiConfig::default());
    let sealed = fusion.to_artifact_bytes();
    let back = LdaMmiFusion::from_artifact_bytes(&sealed).expect("round trip");
    let tests: Vec<ScoreMatrix> = (0..q).map(|_| random_scores(&mut rng, 30, k)).collect();
    let trefs: Vec<&ScoreMatrix> = tests.iter().collect();
    let (a, b) = (fusion.apply(&trefs), back.apply(&trefs));
    for i in 0..a.num_utts() {
        for (p, q) in a.row(i).iter().zip(b.row(i)) {
            assert_eq!(
                p.to_bits(),
                q.to_bits(),
                "LDA+MMI fused LLRs must match to the bit"
            );
        }
    }
    check_damage_detected::<LdaMmiFusion>(&sealed, 12_345);
}
