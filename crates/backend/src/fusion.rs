//! LDA-MMI score fusion across subsystems (Eq. 14/15 + §3 g).

use crate::calibration::{CalibrationConfig, LinearCalibration};
use crate::gaussian::{GaussianBackend, MmiConfig};
use crate::lda::Lda;
use crate::norm::ZNorm;
use lre_eval::ScoreMatrix;
use lre_linalg::Mat;

/// Subsystem weights of Eq. 15: `w_n = M_n / Σ_m M_m`, where `M_n` counts
/// the test utterances that fit the confidence criterion in subsystem `n`
/// (for the baseline, pass equal counts to get uniform weights).
pub fn subsystem_weights(criterion_counts: &[usize]) -> Vec<f64> {
    let total: usize = criterion_counts.iter().sum();
    if total == 0 {
        return vec![1.0 / criterion_counts.len() as f64; criterion_counts.len()];
    }
    criterion_counts
        .iter()
        .map(|&m| m as f64 / total as f64)
        .collect()
}

/// LDA-MMI fusion:
///
/// 1. per-subsystem **z-norm** (impostor statistics from the dev set) so
///    the six SVM score scales are commensurate,
/// 2. Eq. 15 weighted combination `x = Σ_n w_n f_n(φ(x))` per language
///    (a `K`-dimensional belief vector),
/// 3. LDA projection, and
/// 4. MMI-refined Gaussian class models emitting detection LLRs (Eq. 14).
///
/// Steps 3-4 follow the paper's recipe (its ref. 31); steps 1-2 combine the
/// subsystem axis *before* LDA (rather than concatenating `Q × K` scores)
/// keeps the backend trainable on development sets hundreds — not tens of
/// thousands — of utterances strong. DESIGN.md logs this as a deviation.
#[derive(Clone, Debug)]
pub struct LdaMmiFusion {
    znorms: Vec<ZNorm>,
    weights: Vec<f64>,
    backend: FusionBackend,
    num_subsystems: usize,
    num_classes: usize,
}

/// The discriminative stage: full LDA + Gaussian MMI when the development
/// set can support it, linear MMI calibration (K+1 parameters) otherwise.
#[derive(Clone, Debug)]
enum FusionBackend {
    LdaGaussian {
        lda: Option<Lda>,
        backend: GaussianBackend,
    },
    Linear(LinearCalibration),
}

/// Minimum dev utterances *per class* for the LDA+Gaussian stage; below it
/// the backend falls back to linear calibration. NIST-scale dev sets
/// (~1,000 per class in the paper) clear this easily; reproduction-scale
/// sets (≈5-15 per class) do not.
const LDA_MIN_PER_CLASS: usize = 40;

impl LdaMmiFusion {
    /// Train the fusion on development data.
    ///
    /// `dev_scores[q]` is subsystem `q`'s score matrix over the dev set;
    /// all matrices must agree on utterance count and class count.
    /// `weights` has one entry per subsystem (see [`subsystem_weights`]).
    pub fn train(
        dev_scores: &[&ScoreMatrix],
        labels: &[usize],
        weights: &[f64],
        mmi: &MmiConfig,
    ) -> LdaMmiFusion {
        assert!(!dev_scores.is_empty());
        assert_eq!(dev_scores.len(), weights.len());
        let num_classes = dev_scores[0].num_classes();
        let n = dev_scores[0].num_utts();
        assert_eq!(n, labels.len());
        for m in dev_scores {
            assert_eq!(m.num_classes(), num_classes);
            assert_eq!(m.num_utts(), n);
        }

        let znorms: Vec<ZNorm> = dev_scores.iter().map(|m| ZNorm::fit(m, labels)).collect();
        let normed: Vec<ScoreMatrix> = dev_scores
            .iter()
            .zip(&znorms)
            .map(|(m, z)| z.apply(m))
            .collect();
        let combined = combine(&normed, weights);

        let backend = if n >= LDA_MIN_PER_CLASS * num_classes {
            // LDA to K−1 dimensions; when it degenerates fall back to the
            // raw combined space.
            let lda = Lda::fit(&combined, labels, num_classes, num_classes - 1);
            let projected = match &lda {
                Some(l) => l.transform_all(&combined),
                None => combined,
            };
            FusionBackend::LdaGaussian {
                lda,
                backend: GaussianBackend::train(&projected, labels, num_classes, mmi),
            }
        } else {
            FusionBackend::Linear(LinearCalibration::train(
                &combined,
                labels,
                num_classes,
                &CalibrationConfig::default(),
            ))
        };
        LdaMmiFusion {
            znorms,
            weights: weights.to_vec(),
            backend,
            num_subsystems: dev_scores.len(),
            num_classes,
        }
    }

    pub fn num_subsystems(&self) -> usize {
        self.num_subsystems
    }

    /// Number of target languages the fused LLR vector covers.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Fuse test-set scores into calibrated detection LLRs.
    pub fn apply(&self, test_scores: &[&ScoreMatrix]) -> ScoreMatrix {
        assert_eq!(test_scores.len(), self.num_subsystems);
        let normed: Vec<ScoreMatrix> = test_scores
            .iter()
            .zip(&self.znorms)
            .map(|(m, z)| z.apply(m))
            .collect();
        let combined = combine(&normed, &self.weights);
        let mut out = ScoreMatrix::new(self.num_classes);
        let mut row32 = vec![0.0f32; self.num_classes];
        for i in 0..combined.rows() {
            let llr = match &self.backend {
                FusionBackend::LdaGaussian { lda, backend } => {
                    let x = match lda {
                        Some(l) => l.transform(combined.row(i)),
                        None => combined.row(i).to_vec(),
                    };
                    backend.detection_llrs(&x)
                }
                FusionBackend::Linear(cal) => cal.detection_llrs(combined.row(i)),
            };
            for (o, v) in row32.iter_mut().zip(&llr) {
                *o = *v as f32;
            }
            out.push_row(&row32);
        }
        out
    }
}

/// Eq. 15: per-language weighted combination across subsystems — row i
/// becomes `Σ_n w_n f_n(i, ·)`, a `K`-dimensional belief vector.
fn combine(scores: &[ScoreMatrix], weights: &[f64]) -> Mat {
    let n = scores[0].num_utts();
    let k = scores[0].num_classes();
    let mut out = Mat::zeros(n, k);
    for i in 0..n {
        let row = out.row_mut(i);
        for (m, &w) in scores.iter().zip(weights) {
            for (j, &s) in m.row(i).iter().enumerate() {
                row[j] += w * s as f64;
            }
        }
    }
    out
}

const BACKEND_TAG_LDA_GAUSSIAN: u8 = 0;
const BACKEND_TAG_LINEAR: u8 = 1;

impl lre_artifact::ArtifactWrite for LdaMmiFusion {
    const KIND: [u8; 4] = *b"FUSN";
    const VERSION: u32 = 1;

    fn write_payload(&self, w: &mut lre_artifact::ArtifactWriter) {
        w.put_u32(self.num_subsystems as u32);
        w.put_u32(self.num_classes as u32);
        w.put_u32(self.znorms.len() as u32);
        for z in &self.znorms {
            z.write_payload(w);
        }
        w.put_f64_slice(&self.weights);
        match &self.backend {
            FusionBackend::LdaGaussian { lda, backend } => {
                w.put_u8(BACKEND_TAG_LDA_GAUSSIAN);
                match lda {
                    Some(l) => {
                        w.put_u8(1);
                        l.write_payload(w);
                    }
                    None => w.put_u8(0),
                }
                backend.write_payload(w);
            }
            FusionBackend::Linear(cal) => {
                w.put_u8(BACKEND_TAG_LINEAR);
                cal.write_payload(w);
            }
        }
    }
}

impl lre_artifact::ArtifactRead for LdaMmiFusion {
    fn read_payload(
        r: &mut lre_artifact::ArtifactReader,
    ) -> Result<LdaMmiFusion, lre_artifact::ArtifactError> {
        use lre_artifact::ArtifactError;
        let num_subsystems = r.get_u32()? as usize;
        let num_classes = r.get_u32()? as usize;
        let nz = r.get_u32()? as usize;
        let znorms: Vec<ZNorm> = (0..nz)
            .map(|_| ZNorm::read_payload(r))
            .collect::<Result<_, _>>()?;
        let weights = r.get_f64_slice()?;
        let backend = match r.get_u8()? {
            BACKEND_TAG_LDA_GAUSSIAN => {
                let lda = match r.get_u8()? {
                    0 => None,
                    1 => Some(Lda::read_payload(r)?),
                    _ => return Err(ArtifactError::Corrupt("bad LDA presence flag")),
                };
                FusionBackend::LdaGaussian {
                    lda,
                    backend: GaussianBackend::read_payload(r)?,
                }
            }
            BACKEND_TAG_LINEAR => FusionBackend::Linear(LinearCalibration::read_payload(r)?),
            _ => return Err(ArtifactError::Corrupt("unknown fusion backend tag")),
        };
        if num_subsystems == 0
            || num_classes == 0
            || znorms.len() != num_subsystems
            || weights.len() != num_subsystems
        {
            return Err(ArtifactError::Corrupt("fusion shapes disagree"));
        }
        Ok(LdaMmiFusion {
            znorms,
            weights,
            backend,
            num_subsystems,
            num_classes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two noisy subsystems whose errors are independent; fusion should beat
    /// both.
    fn subsystems() -> (ScoreMatrix, ScoreMatrix, Vec<usize>) {
        let mut a = ScoreMatrix::new(3);
        let mut b = ScoreMatrix::new(3);
        let mut labels = Vec::new();
        for i in 0..120 {
            let class = i % 3;
            let na = ((i as f32 * 0.83).sin()) * 1.2;
            let nb = ((i as f32 * 1.37).cos()) * 1.2;
            let row = |noise: f32, off: f32| -> Vec<f32> {
                (0..3)
                    .map(|c| {
                        let base = if c == class { 1.0 } else { -1.0 };
                        base + noise * ((c as f32 + 1.3).cos()) + off
                    })
                    .collect()
            };
            a.push_row(&row(na, 0.0));
            b.push_row(&row(nb, 3.0)); // subsystem b has a gross scale offset
            labels.push(class);
        }
        (a, b, labels)
    }

    #[test]
    fn fusion_beats_single_subsystems() {
        let (a, b, labels) = subsystems();
        let w = subsystem_weights(&[1, 1]);
        let fusion = LdaMmiFusion::train(&[&a, &b], &labels, &w, &MmiConfig::default());
        let fused = fusion.apply(&[&a, &b]);

        let eer_a = lre_eval::pooled_eer(&a, &labels);
        let eer_b = lre_eval::pooled_eer(&b, &labels);
        let eer_f = lre_eval::pooled_eer(&fused, &labels);
        assert!(
            eer_f <= eer_a.min(eer_b) + 1e-9,
            "fused {eer_f} vs singles {eer_a}, {eer_b}"
        );
    }

    #[test]
    fn znorm_stage_absorbs_scale_offsets() {
        // Subsystem b carries a +3 offset; without z-norm a plain stack
        // would let it dominate. The fusion must still work.
        let (a, b, labels) = subsystems();
        let w = subsystem_weights(&[1, 1]);
        let fusion = LdaMmiFusion::train(&[&a, &b], &labels, &w, &MmiConfig::default());
        let fused = fusion.apply(&[&a, &b]);
        assert!(lre_eval::pooled_eer(&fused, &labels) < 0.2);
    }

    #[test]
    fn fused_scores_are_roughly_calibrated() {
        let (a, b, labels) = subsystems();
        let w = subsystem_weights(&[1, 1]);
        let fusion = LdaMmiFusion::train(&[&a, &b], &labels, &w, &MmiConfig::default());
        let fused = fusion.apply(&[&a, &b]);
        let p = lre_eval::CavgParams::default();
        let actual = lre_eval::cavg_at_threshold(&fused, &labels, 0.0, &p);
        let minimum = lre_eval::min_cavg(&fused, &labels, &p);
        assert!(actual <= minimum + 0.1, "actual {actual}, min {minimum}");
    }

    #[test]
    fn apply_preserves_utterance_count() {
        let (a, b, labels) = subsystems();
        let w = subsystem_weights(&[1, 1]);
        let fusion = LdaMmiFusion::train(&[&a, &b], &labels, &w, &MmiConfig::default());
        let fused = fusion.apply(&[&a, &b]);
        assert_eq!(fused.num_utts(), a.num_utts());
        assert_eq!(fused.num_classes(), 3);
    }

    #[test]
    fn weights_normalize() {
        let w = subsystem_weights(&[10, 30]);
        assert!((w[0] - 0.25).abs() < 1e-12);
        assert!((w[1] - 0.75).abs() < 1e-12);
        let uniform = subsystem_weights(&[0, 0, 0]);
        assert!((uniform.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn mismatched_subsystem_count_panics() {
        let (a, b, labels) = subsystems();
        let w = subsystem_weights(&[1, 1]);
        let fusion = LdaMmiFusion::train(&[&a, &b], &labels, &w, &MmiConfig::default());
        let _ = fusion.apply(&[&a]);
    }
}
