//! Gaussian class backend with MMI refinement (Eq. 14).

use lre_linalg::Mat;

/// MMI training hyperparameters.
#[derive(Clone, Copy, Debug)]
pub struct MmiConfig {
    pub iterations: usize,
    /// Gradient-ascent step on the class means (in whitened units).
    pub learning_rate: f64,
}

impl Default for MmiConfig {
    fn default() -> Self {
        Self {
            iterations: 25,
            learning_rate: 0.1,
        }
    }
}

/// Per-class Gaussian score model with a shared diagonal covariance.
///
/// Maximum-likelihood initialization, then gradient ascent on the means of
/// the MMI objective `F_MMI(λ) = Σ_i log [p(x_i|λ_{g(i)}) P(g(i)) /
/// Σ_j p(x_i|λ_j) P(j)]` (Eq. 14). Emits per-class detection LLRs
/// `log p(x|k) − log( (1/(K−1)) Σ_{j≠k} p(x|j) )`.
#[derive(Clone, Debug)]
pub struct GaussianBackend {
    dim: usize,
    num_classes: usize,
    /// Flat `num_classes × dim` means.
    means: Vec<f64>,
    /// Shared diagonal precision (1/variance).
    inv_var: Vec<f64>,
    /// Class log priors.
    log_priors: Vec<f64>,
}

impl GaussianBackend {
    /// Fit on `data` (rows = samples) with labels `0..num_classes`.
    pub fn train(
        data: &Mat,
        labels: &[usize],
        num_classes: usize,
        cfg: &MmiConfig,
    ) -> GaussianBackend {
        let (n, d) = (data.rows(), data.cols());
        assert_eq!(n, labels.len());
        assert!(n > 0 && num_classes >= 2);

        // --- ML initialization -----------------------------------------------------
        let mut counts = vec![0f64; num_classes];
        let mut means = vec![0f64; num_classes * d];
        for (i, &l) in labels.iter().enumerate() {
            counts[l] += 1.0;
            for (m, &x) in means[l * d..(l + 1) * d].iter_mut().zip(data.row(i)) {
                *m += x;
            }
        }
        for k in 0..num_classes {
            let c = counts[k].max(1.0);
            for m in &mut means[k * d..(k + 1) * d] {
                *m /= c;
            }
        }
        // Shared within-class variance per dimension.
        let mut var = vec![0f64; d];
        for (i, &l) in labels.iter().enumerate() {
            for (v, (&x, &m)) in var
                .iter_mut()
                .zip(data.row(i).iter().zip(&means[l * d..(l + 1) * d]))
            {
                *v += (x - m) * (x - m);
            }
        }
        let inv_var: Vec<f64> = var
            .iter()
            .map(|&v| 1.0 / (v / n as f64).max(1e-6))
            .collect();
        let log_priors: Vec<f64> = counts
            .iter()
            .map(|&c| (c.max(0.5) / n as f64).ln())
            .collect();

        let mut backend = GaussianBackend {
            dim: d,
            num_classes,
            means,
            inv_var,
            log_priors,
        };

        // --- MMI gradient ascent on the means ---------------------------------------
        // ∂F/∂μ_k = Σ_i (δ(g(i)=k) − γ_ik) Λ (x_i − μ_k), γ = class posterior.
        let mut grad = vec![0f64; num_classes * d];
        for _ in 0..cfg.iterations {
            grad.iter_mut().for_each(|g| *g = 0.0);
            for (i, &l) in labels.iter().enumerate() {
                let x = data.row(i);
                let post = backend.posteriors(x);
                for k in 0..num_classes {
                    let coeff = (if k == l { 1.0 } else { 0.0 }) - post[k];
                    if coeff.abs() < 1e-12 {
                        continue;
                    }
                    let mk = &backend.means[k * d..(k + 1) * d];
                    let gk = &mut grad[k * d..(k + 1) * d];
                    for j in 0..d {
                        gk[j] += coeff * backend.inv_var[j] * (x[j] - mk[j]);
                    }
                }
            }
            let step = cfg.learning_rate / n as f64;
            for (m, g) in backend.means.iter_mut().zip(&grad) {
                *m += step * g;
            }
        }
        backend
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Log class-conditional likelihoods (up to a shared constant).
    pub fn log_likelihoods(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.dim);
        (0..self.num_classes)
            .map(|k| {
                let m = &self.means[k * self.dim..(k + 1) * self.dim];
                let mut q = 0.0;
                for j in 0..self.dim {
                    let dxy = x[j] - m[j];
                    q += dxy * dxy * self.inv_var[j];
                }
                -0.5 * q
            })
            .collect()
    }

    /// Class posteriors (with the trained priors).
    pub fn posteriors(&self, x: &[f64]) -> Vec<f64> {
        let mut lp: Vec<f64> = self
            .log_likelihoods(x)
            .iter()
            .zip(&self.log_priors)
            .map(|(l, p)| l + p)
            .collect();
        let max = lp.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut sum = 0.0;
        for v in lp.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in lp.iter_mut() {
            *v /= sum;
        }
        lp
    }

    /// Calibrated detection LLR per class:
    /// `log p(x|k) − log( (1/(K−1)) Σ_{j≠k} p(x|j) )` — scores whose natural
    /// decision threshold is 0.
    pub fn detection_llrs(&self, x: &[f64]) -> Vec<f64> {
        let ll = self.log_likelihoods(x);
        let k_max = self.num_classes;
        (0..k_max)
            .map(|k| {
                let mut max_other = f64::NEG_INFINITY;
                for (j, &v) in ll.iter().enumerate() {
                    if j != k {
                        max_other = max_other.max(v);
                    }
                }
                let mut sum = 0.0;
                for (j, &v) in ll.iter().enumerate() {
                    if j != k {
                        sum += (v - max_other).exp();
                    }
                }
                ll[k] - (max_other + (sum / (k_max as f64 - 1.0)).ln())
            })
            .collect()
    }

    /// The MMI objective value on a dataset (for tests / diagnostics).
    pub fn mmi_objective(&self, data: &Mat, labels: &[usize]) -> f64 {
        let mut total = 0.0;
        for (i, &l) in labels.iter().enumerate() {
            total += self.posteriors(data.row(i))[l].max(1e-300).ln();
        }
        total
    }
}

impl lre_artifact::ArtifactWrite for GaussianBackend {
    const KIND: [u8; 4] = *b"GBCK";
    const VERSION: u32 = 1;

    fn write_payload(&self, w: &mut lre_artifact::ArtifactWriter) {
        w.put_u32(self.dim as u32);
        w.put_u32(self.num_classes as u32);
        w.put_f64_slice(&self.means);
        w.put_f64_slice(&self.inv_var);
        w.put_f64_slice(&self.log_priors);
    }
}

impl lre_artifact::ArtifactRead for GaussianBackend {
    fn read_payload(
        r: &mut lre_artifact::ArtifactReader,
    ) -> Result<GaussianBackend, lre_artifact::ArtifactError> {
        use lre_artifact::ArtifactError;
        let dim = r.get_u32()? as usize;
        let num_classes = r.get_u32()? as usize;
        let means = r.get_f64_slice()?;
        let inv_var = r.get_f64_slice()?;
        let log_priors = r.get_f64_slice()?;
        if dim == 0 || num_classes < 2 {
            return Err(ArtifactError::Corrupt(
                "Gaussian backend shape out of range",
            ));
        }
        if means.len() != num_classes * dim
            || inv_var.len() != dim
            || log_priors.len() != num_classes
        {
            return Err(ArtifactError::Corrupt("Gaussian backend lengths disagree"));
        }
        Ok(GaussianBackend {
            dim,
            num_classes,
            means,
            inv_var,
            log_priors,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> (Mat, Vec<usize>) {
        // Two classes along dim 0, overlapping slightly.
        let rows: Vec<Vec<f64>> = (0..60)
            .map(|i| {
                let off = if i % 2 == 0 { 1.0 } else { -1.0 };
                let j = (i / 2) as f64;
                vec![off + 0.4 * ((j * 0.7).sin()), 0.3 * ((j * 1.3).cos())]
            })
            .collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let labels = (0..60).map(|i| i % 2).collect();
        (Mat::from_rows(&refs), labels)
    }

    #[test]
    fn posteriors_sum_to_one() {
        let (data, labels) = toy();
        let b = GaussianBackend::train(&data, &labels, 2, &MmiConfig::default());
        let p = b.posteriors(&[0.5, 0.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn classifies_toy_data() {
        let (data, labels) = toy();
        let b = GaussianBackend::train(&data, &labels, 2, &MmiConfig::default());
        let correct = (0..data.rows())
            .filter(|&i| {
                let p = b.posteriors(data.row(i));
                (p[1] > p[0]) == (labels[i] == 1)
            })
            .count();
        assert!(correct as f64 / 60.0 > 0.9, "{correct}/60");
    }

    #[test]
    fn mmi_improves_objective_over_ml() {
        let (data, labels) = toy();
        let ml = GaussianBackend::train(
            &data,
            &labels,
            2,
            &MmiConfig {
                iterations: 0,
                learning_rate: 0.0,
            },
        );
        let mmi = GaussianBackend::train(&data, &labels, 2, &MmiConfig::default());
        assert!(
            mmi.mmi_objective(&data, &labels) >= ml.mmi_objective(&data, &labels) - 1e-9,
            "MMI must not degrade the objective"
        );
    }

    #[test]
    fn detection_llr_sign_tracks_class() {
        let (data, labels) = toy();
        let b = GaussianBackend::train(&data, &labels, 2, &MmiConfig::default());
        let llr = b.detection_llrs(&[1.2, 0.0]);
        assert!(llr[0] > 0.0 && llr[1] < 0.0, "{llr:?}");
    }

    #[test]
    fn llr_antisymmetric_for_two_balanced_classes() {
        let (data, labels) = toy();
        let b = GaussianBackend::train(&data, &labels, 2, &MmiConfig::default());
        let llr = b.detection_llrs(&[0.7, 0.1]);
        assert!((llr[0] + llr[1]).abs() < 1e-9, "{llr:?}");
    }
}
