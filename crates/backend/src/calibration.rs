//! Linear MMI score calibration (FoCal-style).
//!
//! For development sets of realistic *reproduction* size (hundreds of
//! utterances, not NIST's tens of thousands), a full LDA + Gaussian backend
//! overfits catastrophically. The classic remedy is linear calibration:
//! a single scale `α` and per-class offsets `β_k`,
//!
//! `P(k | x) = softmax(α x_k + β_k)`,
//!
//! trained by gradient ascent on the same MMI objective as Eq. 14 (the sum
//! of log posteriors of the true classes). `K + 1` parameters train happily
//! on dozens of samples.

use lre_linalg::Mat;

/// Trained linear calibration.
#[derive(Clone, Debug)]
pub struct LinearCalibration {
    pub alpha: f64,
    pub beta: Vec<f64>,
}

/// Training hyperparameters.
#[derive(Clone, Copy, Debug)]
pub struct CalibrationConfig {
    pub iterations: usize,
    pub learning_rate: f64,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        Self {
            iterations: 200,
            learning_rate: 0.5,
        }
    }
}

impl LinearCalibration {
    /// Fit on `data` (rows = per-utterance belief vectors) with labels.
    pub fn train(
        data: &Mat,
        labels: &[usize],
        num_classes: usize,
        cfg: &CalibrationConfig,
    ) -> LinearCalibration {
        let n = data.rows();
        assert_eq!(n, labels.len());
        assert_eq!(data.cols(), num_classes);
        assert!(n > 0);

        // Initialize α to roughly unit-variance scores (improves conditioning).
        let mut mean = 0.0f64;
        let mut sq = 0.0f64;
        for i in 0..n {
            for &v in data.row(i) {
                mean += v;
                sq += v * v;
            }
        }
        let count = (n * num_classes) as f64;
        mean /= count;
        let std = ((sq / count) - mean * mean).max(1e-6).sqrt();
        let mut alpha = 1.0 / std;
        let mut beta = vec![0.0f64; num_classes];

        let mut post = vec![0.0f64; num_classes];
        for _ in 0..cfg.iterations {
            let mut g_alpha = 0.0f64;
            let mut g_beta = vec![0.0f64; num_classes];
            for (i, &lab) in labels.iter().enumerate() {
                let x = data.row(i);
                // Softmax posterior.
                let mut max = f64::NEG_INFINITY;
                for k in 0..num_classes {
                    post[k] = alpha * x[k] + beta[k];
                    max = max.max(post[k]);
                }
                let mut sum = 0.0;
                for p in post.iter_mut() {
                    *p = (*p - max).exp();
                    sum += *p;
                }
                for p in post.iter_mut() {
                    *p /= sum;
                }
                // ∂/∂α Σ log P(lab|x) = Σ_i [x_lab − Σ_k γ_k x_k].
                let mut xbar = 0.0;
                for k in 0..num_classes {
                    xbar += post[k] * x[k];
                    g_beta[k] += (if k == lab { 1.0 } else { 0.0 }) - post[k];
                }
                g_alpha += x[lab] - xbar;
            }
            let step = cfg.learning_rate / n as f64;
            alpha += step * g_alpha;
            // α < 0 would invert the score ordering; clamp to a small
            // positive floor (can happen transiently on adversarial inits).
            alpha = alpha.max(1e-4);
            for (b, g) in beta.iter_mut().zip(&g_beta) {
                *b += step * g;
            }
        }
        LinearCalibration { alpha, beta }
    }

    /// Calibrated detection LLR per class:
    /// `s_k = a_k − log((1/(K−1)) Σ_{j≠k} exp(a_j))`, `a_k = α x_k + β_k`.
    pub fn detection_llrs(&self, x: &[f64]) -> Vec<f64> {
        let k_max = self.beta.len();
        assert_eq!(x.len(), k_max);
        let a: Vec<f64> = x
            .iter()
            .zip(&self.beta)
            .map(|(&v, &b)| self.alpha * v + b)
            .collect();
        (0..k_max)
            .map(|k| {
                let mut max_other = f64::NEG_INFINITY;
                for (j, &v) in a.iter().enumerate() {
                    if j != k {
                        max_other = max_other.max(v);
                    }
                }
                let mut sum = 0.0;
                for (j, &v) in a.iter().enumerate() {
                    if j != k {
                        sum += (v - max_other).exp();
                    }
                }
                a[k] - (max_other + (sum / (k_max as f64 - 1.0)).ln())
            })
            .collect()
    }

    /// Mean log posterior of the true classes (the MMI objective / n).
    pub fn objective(&self, data: &Mat, labels: &[usize]) -> f64 {
        let k_max = self.beta.len();
        let mut total = 0.0;
        for (i, &lab) in labels.iter().enumerate() {
            let x = data.row(i);
            let a: Vec<f64> = x
                .iter()
                .zip(&self.beta)
                .map(|(&v, &b)| self.alpha * v + b)
                .collect();
            let max = a.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let lse = max + a.iter().map(|v| (v - max).exp()).sum::<f64>().ln();
            total += a[lab] - lse;
            let _ = k_max;
        }
        total / labels.len() as f64
    }
}

impl lre_artifact::ArtifactWrite for LinearCalibration {
    const KIND: [u8; 4] = *b"LCAL";
    const VERSION: u32 = 1;

    fn write_payload(&self, w: &mut lre_artifact::ArtifactWriter) {
        w.put_f64(self.alpha);
        w.put_f64_slice(&self.beta);
    }
}

impl lre_artifact::ArtifactRead for LinearCalibration {
    fn read_payload(
        r: &mut lre_artifact::ArtifactReader,
    ) -> Result<LinearCalibration, lre_artifact::ArtifactError> {
        let alpha = r.get_f64()?;
        let beta = r.get_f64_slice()?;
        if beta.is_empty() {
            return Err(lre_artifact::ArtifactError::Corrupt(
                "calibration with no classes",
            ));
        }
        Ok(LinearCalibration { alpha, beta })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> (Mat, Vec<usize>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let lab = i % 3;
            let row: Vec<f64> = (0..3)
                .map(|k| {
                    let base = if k == lab { 0.8 } else { -0.8 };
                    base + 0.4 * ((i as f64 * 0.7 + k as f64).sin())
                })
                .collect();
            rows.push(row);
            labels.push(lab);
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        (Mat::from_rows(&refs), labels)
    }

    #[test]
    fn training_improves_objective() {
        let (data, labels) = toy(60);
        let short = LinearCalibration::train(
            &data,
            &labels,
            3,
            &CalibrationConfig {
                iterations: 1,
                learning_rate: 0.5,
            },
        );
        let long = LinearCalibration::train(&data, &labels, 3, &CalibrationConfig::default());
        assert!(long.objective(&data, &labels) >= short.objective(&data, &labels) - 1e-9);
    }

    #[test]
    fn alpha_stays_positive() {
        let (data, labels) = toy(30);
        let cal = LinearCalibration::train(&data, &labels, 3, &CalibrationConfig::default());
        assert!(cal.alpha > 0.0);
    }

    #[test]
    fn llr_signs_track_truth_on_separable_data() {
        let (data, labels) = toy(60);
        let cal = LinearCalibration::train(&data, &labels, 3, &CalibrationConfig::default());
        let mut correct = 0;
        for (i, &lab) in labels.iter().enumerate() {
            let llr = cal.detection_llrs(data.row(i));
            if llr[lab] > 0.0 {
                correct += 1;
            }
        }
        assert!(correct as f64 / labels.len() as f64 > 0.8, "{correct}/60");
    }

    #[test]
    fn calibration_is_monotone_in_scores() {
        // Calibration must never change the argmax (α > 0 and per-class
        // offsets are fit, so ordering *within* an utterance is preserved up
        // to the learned offsets; with zero-mean toy offsets ordering holds).
        let (data, labels) = toy(90);
        let cal = LinearCalibration::train(&data, &labels, 3, &CalibrationConfig::default());
        let mut agree = 0;
        for i in 0..data.rows() {
            let x = data.row(i);
            let raw = (0..3)
                .max_by(|&a, &b| x[a].partial_cmp(&x[b]).unwrap())
                .unwrap();
            let llr = cal.detection_llrs(x);
            let cab = (0..3)
                .max_by(|&a, &b| llr[a].partial_cmp(&llr[b]).unwrap())
                .unwrap();
            if raw == cab {
                agree += 1;
            }
        }
        assert!(agree as f64 / data.rows() as f64 > 0.8);
    }

    #[test]
    fn works_with_tiny_dev_sets() {
        let (data, labels) = toy(6); // 2 per class
        let cal = LinearCalibration::train(&data, &labels, 3, &CalibrationConfig::default());
        let llr = cal.detection_llrs(data.row(0));
        assert!(llr.iter().all(|v| v.is_finite()));
    }
}
