//! Score calibration and fusion back-end.
//!
//! §3(g) of the paper: "LDA-MMI method is used to maximize the posterior
//! probabilities of all the belief scores" with the MMI objective of Eq. 14
//! over fused score vectors `x = [w₁f₁(φ(x)), …, w_N f_N(φ(x))]` (Eq. 15).
//! The implementation follows the referenced discriminative-score-fusion
//! recipe (the paper's ref. 31): subsystem score vectors are weighted,
//! projected by LDA, and scored by per-class Gaussians whose means are
//! refined by gradient-ascent MMI; the output is a detection log-likelihood
//! ratio per language.

mod calibration;
mod fusion;
mod gaussian;
mod lda;
mod norm;

pub use calibration::{CalibrationConfig, LinearCalibration};
pub use fusion::{subsystem_weights, LdaMmiFusion};
pub use gaussian::{GaussianBackend, MmiConfig};
pub use lda::Lda;
pub use norm::{tnorm, ZNorm};
