//! Linear discriminant analysis.

use lre_linalg::{generalized_symmetric_eigen, mean_vector, Mat};

/// LDA projection fitted on labelled vectors.
///
/// Solves the generalized eigenproblem `S_b v = λ S_w v` (between- vs
/// within-class scatter, with a ridge on `S_w` for numerical safety) and
/// keeps the leading `out_dim` directions.
#[derive(Clone, Debug)]
pub struct Lda {
    /// `out_dim × in_dim` projection matrix.
    proj: Mat,
    /// Global mean subtracted before projecting.
    mean: Vec<f64>,
}

impl Lda {
    /// Fit on `data` (rows = samples) with integer labels `0..num_classes`.
    ///
    /// `out_dim` is clamped to `min(num_classes − 1, in_dim)`. Returns
    /// `None` if a class is empty or scatter matrices are degenerate beyond
    /// repair.
    pub fn fit(data: &Mat, labels: &[usize], num_classes: usize, out_dim: usize) -> Option<Lda> {
        let (n, d) = (data.rows(), data.cols());
        assert_eq!(n, labels.len());
        assert!(num_classes >= 2);
        let out_dim = out_dim.min(num_classes - 1).min(d);

        let global_mean = mean_vector(data);

        // Class means and counts.
        let mut counts = vec![0usize; num_classes];
        let mut means = Mat::zeros(num_classes, d);
        for (i, &l) in labels.iter().enumerate() {
            counts[l] += 1;
            for (m, &x) in means.row_mut(l).iter_mut().zip(data.row(i)) {
                *m += x;
            }
        }
        for (k, &cnt) in counts.iter().enumerate() {
            if cnt == 0 {
                return None;
            }
            let inv = 1.0 / cnt as f64;
            for m in means.row_mut(k) {
                *m *= inv;
            }
        }

        // Within-class scatter: Σ_k Σ_{i∈k} (x−μ_k)(x−μ_k)ᵀ / n.
        let mut sw = Mat::zeros(d, d);
        let mut centered = vec![0.0; d];
        for (i, &l) in labels.iter().enumerate() {
            for (c, (&x, &m)) in centered
                .iter_mut()
                .zip(data.row(i).iter().zip(means.row(l)))
            {
                *c = x - m;
            }
            sw.rank1_update(1.0 / n as f64, &centered, &centered);
        }
        // Ridge keeps S_w positive definite when scores are collinear.
        let ridge = 1e-4 * (sw.trace() / d as f64).max(1e-8);
        for i in 0..d {
            sw[(i, i)] += ridge;
        }
        sw.symmetrize();

        // Between-class scatter: Σ_k n_k/n (μ_k−μ)(μ_k−μ)ᵀ.
        let mut sb = Mat::zeros(d, d);
        for (k, &cnt) in counts.iter().enumerate() {
            for (c, (&m, &g)) in centered
                .iter_mut()
                .zip(means.row(k).iter().zip(&global_mean))
            {
                *c = m - g;
            }
            sb.rank1_update(cnt as f64 / n as f64, &centered, &centered);
        }
        sb.symmetrize();

        let geig = generalized_symmetric_eigen(&sb, &sw)?;
        let mut proj = Mat::zeros(out_dim, d);
        for r in 0..out_dim {
            for c in 0..d {
                proj[(r, c)] = geig.vectors[(c, r)];
            }
        }
        Some(Lda {
            proj,
            mean: global_mean,
        })
    }

    pub fn in_dim(&self) -> usize {
        self.proj.cols()
    }

    pub fn out_dim(&self) -> usize {
        self.proj.rows()
    }

    /// Project one vector.
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.in_dim());
        let centered: Vec<f64> = x.iter().zip(&self.mean).map(|(a, b)| a - b).collect();
        self.proj.matvec(&centered)
    }

    /// Project every row of a matrix.
    pub fn transform_all(&self, data: &Mat) -> Mat {
        let mut out = Mat::zeros(data.rows(), self.out_dim());
        for i in 0..data.rows() {
            let y = self.transform(data.row(i));
            out.row_mut(i).copy_from_slice(&y);
        }
        out
    }
}

impl lre_artifact::ArtifactWrite for Lda {
    const KIND: [u8; 4] = *b"LDA0";
    const VERSION: u32 = 1;

    fn write_payload(&self, w: &mut lre_artifact::ArtifactWriter) {
        w.put_u32(self.proj.rows() as u32);
        w.put_u32(self.proj.cols() as u32);
        for i in 0..self.proj.rows() {
            for &v in self.proj.row(i) {
                w.put_f64(v);
            }
        }
        w.put_f64_slice(&self.mean);
    }
}

impl lre_artifact::ArtifactRead for Lda {
    fn read_payload(
        r: &mut lre_artifact::ArtifactReader,
    ) -> Result<Lda, lre_artifact::ArtifactError> {
        use lre_artifact::ArtifactError;
        let rows = r.get_u32()? as usize;
        let cols = r.get_u32()? as usize;
        let n = rows.checked_mul(cols).ok_or(ArtifactError::Truncated)?;
        if r.remaining() < n.checked_mul(8).ok_or(ArtifactError::Truncated)? {
            return Err(ArtifactError::Truncated);
        }
        let data: Vec<f64> = (0..n).map(|_| r.get_f64()).collect::<Result<_, _>>()?;
        let mean = r.get_f64_slice()?;
        if rows == 0 || cols == 0 || mean.len() != cols {
            return Err(ArtifactError::Corrupt("LDA projection shapes disagree"));
        }
        Ok(Lda {
            proj: Mat::from_vec(rows, cols, data),
            mean,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two classes separated along x₀, noise along x₁ (larger variance).
    fn two_class() -> (Mat, Vec<usize>) {
        let mut rows: Vec<Vec<f64>> = Vec::new();
        let mut labels = Vec::new();
        for i in 0..40 {
            let noise = ((i * 37 % 17) as f64 / 17.0 - 0.5) * 8.0;
            let jitter = ((i * 11 % 7) as f64 / 7.0 - 0.5) * 0.4;
            if i % 2 == 0 {
                rows.push(vec![1.0 + jitter, noise]);
                labels.push(0);
            } else {
                rows.push(vec![-1.0 + jitter, noise]);
                labels.push(1);
            }
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        (Mat::from_rows(&refs), labels)
    }

    #[test]
    fn finds_discriminative_direction() {
        let (data, labels) = two_class();
        let lda = Lda::fit(&data, &labels, 2, 1).unwrap();
        assert_eq!(lda.out_dim(), 1);
        // The projection must weight x₀ (discriminative) far above x₁ (noise).
        let w0 = lda.proj[(0, 0)].abs();
        let w1 = lda.proj[(0, 1)].abs();
        assert!(w0 > 5.0 * w1, "w = [{w0}, {w1}]");
    }

    #[test]
    fn projected_classes_are_separated() {
        let (data, labels) = two_class();
        let lda = Lda::fit(&data, &labels, 2, 1).unwrap();
        let proj = lda.transform_all(&data);
        // Class means in the projected space must differ clearly relative to
        // projected scatter.
        let mut m = [0.0f64; 2];
        let mut c = [0usize; 2];
        for i in 0..proj.rows() {
            m[labels[i]] += proj[(i, 0)];
            c[labels[i]] += 1;
        }
        m[0] /= c[0] as f64;
        m[1] /= c[1] as f64;
        assert!((m[0] - m[1]).abs() > 1.0, "means: {m:?}");
    }

    #[test]
    fn out_dim_clamped_to_classes_minus_one() {
        let (data, labels) = two_class();
        let lda = Lda::fit(&data, &labels, 2, 5).unwrap();
        assert_eq!(lda.out_dim(), 1);
    }

    #[test]
    fn empty_class_rejected() {
        let (data, labels) = two_class();
        assert!(Lda::fit(&data, &labels, 3, 2).is_none());
    }

    #[test]
    fn transform_subtracts_global_mean() {
        let (data, labels) = two_class();
        let lda = Lda::fit(&data, &labels, 2, 1).unwrap();
        let gm = mean_vector(&data);
        let y = lda.transform(&gm);
        assert!(y[0].abs() < 1e-9);
    }
}
