//! Score normalization utilities (z-norm / t-norm family).
//!
//! Classic LRE backends often normalize raw SVM scores before calibration:
//! **z-norm** standardizes each *detector* using its score distribution over
//! impostor (non-target) data; **t-norm** standardizes each *utterance*
//! against the score distribution across the other detectors in its own row.
//! Both are provided as optional stages in front of the LDA-MMI backend
//! (they are not in the paper's §3 recipe; they serve the reproduction's
//! ablation studies).

use lre_eval::ScoreMatrix;

/// Per-detector normalization statistics learned from development scores.
#[derive(Clone, Debug)]
pub struct ZNorm {
    means: Vec<f64>,
    inv_stds: Vec<f64>,
}

impl ZNorm {
    /// Fit per-detector impostor statistics: for detector `k`, the mean and
    /// std of its scores on dev utterances whose true language is *not* `k`.
    pub fn fit(dev: &ScoreMatrix, dev_labels: &[usize]) -> ZNorm {
        assert_eq!(dev.num_utts(), dev_labels.len());
        let k_max = dev.num_classes();
        let mut sums = vec![0.0f64; k_max];
        let mut sqs = vec![0.0f64; k_max];
        let mut counts = vec![0usize; k_max];
        for (i, &lab) in dev_labels.iter().enumerate() {
            for (k, &s) in dev.row(i).iter().enumerate() {
                if k != lab {
                    sums[k] += s as f64;
                    sqs[k] += (s as f64) * (s as f64);
                    counts[k] += 1;
                }
            }
        }
        let mut means = vec![0.0f64; k_max];
        let mut inv_stds = vec![1.0f64; k_max];
        for k in 0..k_max {
            if counts[k] >= 2 {
                let n = counts[k] as f64;
                means[k] = sums[k] / n;
                let var = (sqs[k] / n - means[k] * means[k]).max(1e-12);
                inv_stds[k] = 1.0 / var.sqrt();
            }
        }
        ZNorm { means, inv_stds }
    }

    /// Apply: `s'_k = (s_k − μ_k) / σ_k`.
    pub fn apply(&self, scores: &ScoreMatrix) -> ScoreMatrix {
        assert_eq!(scores.num_classes(), self.means.len());
        let mut out = ScoreMatrix::new(self.means.len());
        let mut row = vec![0.0f32; self.means.len()];
        for i in 0..scores.num_utts() {
            for (k, (&s, r)) in scores.row(i).iter().zip(row.iter_mut()).enumerate() {
                *r = ((s as f64 - self.means[k]) * self.inv_stds[k]) as f32;
            }
            out.push_row(&row);
        }
        out
    }
}

/// t-norm: standardize each score against the other detectors' scores on the
/// same utterance (no statistics to fit — purely row-wise).
pub fn tnorm(scores: &ScoreMatrix) -> ScoreMatrix {
    let k_max = scores.num_classes();
    assert!(k_max >= 3, "t-norm needs at least 3 detectors");
    let mut out = ScoreMatrix::new(k_max);
    let mut row_out = vec![0.0f32; k_max];
    for i in 0..scores.num_utts() {
        let row = scores.row(i);
        for k in 0..k_max {
            // Mean/std over the *other* detectors.
            let mut sum = 0.0f64;
            let mut sq = 0.0f64;
            for (j, &s) in row.iter().enumerate() {
                if j != k {
                    sum += s as f64;
                    sq += (s as f64) * (s as f64);
                }
            }
            let n = (k_max - 1) as f64;
            let mean = sum / n;
            let std = ((sq / n - mean * mean).max(1e-12)).sqrt();
            row_out[k] = ((row[k] as f64 - mean) / std) as f32;
        }
        out.push_row(&row_out);
    }
    out
}

impl lre_artifact::ArtifactWrite for ZNorm {
    const KIND: [u8; 4] = *b"ZNRM";
    const VERSION: u32 = 1;

    fn write_payload(&self, w: &mut lre_artifact::ArtifactWriter) {
        w.put_f64_slice(&self.means);
        w.put_f64_slice(&self.inv_stds);
    }
}

impl lre_artifact::ArtifactRead for ZNorm {
    fn read_payload(
        r: &mut lre_artifact::ArtifactReader,
    ) -> Result<ZNorm, lre_artifact::ArtifactError> {
        let means = r.get_f64_slice()?;
        let inv_stds = r.get_f64_slice()?;
        if means.is_empty() || means.len() != inv_stds.len() {
            return Err(lre_artifact::ArtifactError::Corrupt(
                "z-norm statistic lengths disagree",
            ));
        }
        Ok(ZNorm { means, inv_stds })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> (ScoreMatrix, Vec<usize>) {
        // Detector 1 has a large impostor offset that z-norm must remove.
        let m = ScoreMatrix::from_rows(
            3,
            &[
                vec![1.0, 5.5, -1.0],
                vec![-1.0, 6.0, -1.0],
                vec![-1.0, 5.0, 1.0],
                vec![1.2, 5.2, -0.8],
                vec![-0.9, 6.1, -1.1],
                vec![-1.1, 5.1, 0.9],
            ],
        );
        (m, vec![0, 1, 2, 0, 1, 2])
    }

    #[test]
    fn znorm_centers_impostor_scores() {
        let (m, labels) = demo();
        let z = ZNorm::fit(&m, &labels);
        let normed = z.apply(&m);
        // Impostor scores of every detector should now be ~zero-mean.
        for k in 0..3 {
            let mut sum = 0.0;
            let mut n = 0.0;
            for (i, &lab) in labels.iter().enumerate() {
                if lab != k {
                    sum += normed.row(i)[k] as f64;
                    n += 1.0;
                }
            }
            assert!(
                (sum / n).abs() < 1e-6,
                "detector {k} impostor mean {}",
                sum / n
            );
        }
    }

    #[test]
    fn znorm_fixes_offset_detector() {
        let (m, labels) = demo();
        // Before: argmax is always detector 1 (offset +5).
        assert!(m.predictions().iter().all(|&p| p == 1));
        let z = ZNorm::fit(&m, &labels);
        let normed = z.apply(&m);
        let acc = lre_eval::accuracy(&normed, &labels);
        assert!(acc > 0.9, "z-normed accuracy {acc}");
    }

    #[test]
    fn tnorm_is_row_shift_invariant() {
        let (m, _) = demo();
        let t1 = tnorm(&m);
        // Add a constant to one row: t-norm output must not change.
        let mut shifted = ScoreMatrix::new(3);
        for i in 0..m.num_utts() {
            let row: Vec<f32> = m.row(i).iter().map(|v| v + 7.0).collect();
            shifted.push_row(&row);
        }
        let t2 = tnorm(&shifted);
        for i in 0..m.num_utts() {
            for k in 0..3 {
                assert!((t1.row(i)[k] - t2.row(i)[k]).abs() < 1e-4);
            }
        }
    }

    #[test]
    #[should_panic]
    fn tnorm_rejects_two_detectors() {
        let m = ScoreMatrix::from_rows(2, &[vec![0.0, 1.0]]);
        let _ = tnorm(&m);
    }
}
