//! Two-phase rollout against a real fleet: three in-process `lre-serve`
//! replicas (mock scorers behind the real server, engine, and wire
//! protocol) coordinated by `two_phase_promote` / `rollback_backends`.
//!
//! The properties under test are the fleet generation's atomicity: a
//! promotion flips every replica or none, a stage refusal anywhere
//! leaves every replica serving the baseline untouched, and a rollback
//! (voluntary or forced by a replica dying between stage and commit)
//! restores baseline scores bit-for-bit (`f32::to_bits` equality).

use lre_artifact::{crc32, ArtifactError};
use lre_lattice::DecodeScratch;
use lre_router::{rollback_backends, two_phase_promote, Backend};
use lre_serve::protocol::{
    decode_request, encode_stage_ok, read_frame, write_frame, Request, STATUS_CONFLICT,
};
use lre_serve::{
    Client, EngineConfig, FleetReplica, ScoreReply, Scorer, ScorerHandle, Server, ServerConfig,
    ServerHooks, VoteLog,
};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Constant-output mock scorer: the identity of the serving model is its
/// one llr value, so bit-identity checks reduce to `to_bits` equality.
struct Marker(f32);

impl Scorer for Marker {
    fn score_utt(
        &self,
        _samples: &[f32],
        _scratch: &mut DecodeScratch,
    ) -> Result<Vec<f32>, ArtifactError> {
        Ok(vec![self.0, -self.0])
    }
}

/// A value with plenty of set mantissa bits, so "bit-identical" is a
/// stronger claim than "roughly equal".
const BASELINE: f32 = 0.062_537_5;

fn candidate_scorer(v: u8) -> Arc<dyn Scorer> {
    Arc::new(Marker(f32::from(v) * 0.187_5 - 2.518_3))
}

/// Sealed candidates are two bytes — `[b'M', v]` — accepted by the mock
/// validator; real bundle decode is covered by the CI fleet smoke.
fn candidate(v: u8) -> Vec<u8> {
    vec![b'M', v]
}

fn start_replica(accepts_candidates: bool) -> (Server, String) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind replica");
    let handle = Arc::new(ScorerHandle::new(Arc::new(Marker(BASELINE)), 0xB00B_5EED));
    let mut replica = FleetReplica::new(Arc::clone(&handle), Arc::new(VoteLog::new(16)), false);
    if accepts_candidates {
        replica.set_validator(|sealed, _fast_math| match sealed {
            [b'M', v] => Ok(candidate_scorer(*v)),
            _ => Err(STATUS_CONFLICT),
        });
    } else {
        replica.set_validator(|_, _| Err(STATUS_CONFLICT));
    }
    let cfg = ServerConfig {
        engine: EngineConfig {
            workers: 1,
            max_batch: 4,
            max_wait: Duration::from_millis(1),
            queue_capacity: 32,
            fast_math: false,
            unknown_threshold: None,
        },
        ..ServerConfig::default()
    };
    let hooks = ServerHooks {
        fleet: Some(Arc::new(replica)),
        ..ServerHooks::default()
    };
    let server = Server::start_adaptive(listener, handle, cfg, hooks).expect("start replica");
    let addr = server.local_addr().to_string();
    (server, addr)
}

fn start_fleet(accepting: &[bool]) -> (Vec<Server>, Vec<String>, Vec<Arc<Backend>>) {
    let mut servers = Vec::new();
    let mut addrs = Vec::new();
    for &a in accepting {
        let (server, addr) = start_replica(a);
        servers.push(server);
        addrs.push(addr);
    }
    let backends = addrs
        .iter()
        .map(|a| Arc::new(Backend::new(a.clone())))
        .collect();
    (servers, addrs, backends)
}

/// Score through the replica's real wire path and return the llr bits.
fn score_bits(addr: &str) -> Vec<u32> {
    let mut client = Client::connect(addr).expect("connect");
    match client.score(&[0.5f32; 8]).expect("score") {
        ScoreReply::Scored(s) => s.llrs.iter().map(|x| x.to_bits()).collect(),
        other => panic!("score refused: {other:?}"),
    }
}

fn generation_of(addr: &str) -> u64 {
    Client::connect(addr)
        .expect("connect")
        .ping()
        .expect("ping")
        .generation
}

fn expected_bits(v: u8) -> Vec<u32> {
    let mut scratch = DecodeScratch::new();
    candidate_scorer(v)
        .score_utt(&[], &mut scratch)
        .unwrap()
        .iter()
        .map(|x| x.to_bits())
        .collect()
}

#[test]
fn promote_flips_every_replica_or_none() {
    let (_servers, addrs, backends) = start_fleet(&[true, true, true]);
    let baseline: Vec<Vec<u32>> = addrs.iter().map(|a| score_bits(a)).collect();

    let sealed = candidate(9);
    let generation = two_phase_promote(&backends, &sealed, crc32(&sealed));
    assert_eq!(generation, Some(1), "every replica commits exactly once");

    for addr in &addrs {
        assert_eq!(
            score_bits(addr),
            expected_bits(9),
            "replica serves the candidate"
        );
        assert_eq!(generation_of(addr), 1);
    }

    // A second round stacks on the first: the fleet flips together again.
    let sealed = candidate(11);
    assert_eq!(
        two_phase_promote(&backends, &sealed, crc32(&sealed)),
        Some(2)
    );
    for addr in &addrs {
        assert_eq!(score_bits(addr), expected_bits(11));
        assert_eq!(generation_of(addr), 2);
    }
    drop(baseline);
}

#[test]
fn stage_refusal_anywhere_leaves_the_whole_fleet_on_the_baseline() {
    // Replica 1 refuses every candidate; replica 0 stages first and must
    // be aborted, replica 2 must never even see the stage.
    let (_servers, addrs, backends) = start_fleet(&[true, false, true]);
    let baseline: Vec<Vec<u32>> = addrs.iter().map(|a| score_bits(a)).collect();

    let sealed = candidate(4);
    assert_eq!(two_phase_promote(&backends, &sealed, crc32(&sealed)), None);

    for (addr, base) in addrs.iter().zip(&baseline) {
        assert_eq!(&score_bits(addr), base, "baseline scores disturbed");
        assert_eq!(generation_of(addr), 0, "no replica may have flipped");
    }
    // The abort really discarded replica 0's staged copy: a commit now
    // is a conflict, not a stray late flip.
    let mut client = Client::connect(&addrs[0]).expect("connect");
    assert_eq!(client.commit_staged().expect("io"), Err(STATUS_CONFLICT));
}

#[test]
fn rollback_restores_the_baseline_bit_identically_fleet_wide() {
    let (_servers, addrs, backends) = start_fleet(&[true, true, true]);
    let baseline: Vec<Vec<u32>> = addrs.iter().map(|a| score_bits(a)).collect();

    let sealed = candidate(7);
    assert_eq!(
        two_phase_promote(&backends, &sealed, crc32(&sealed)),
        Some(1)
    );
    for addr in &addrs {
        assert_ne!(
            &score_bits(addr),
            &baseline[0],
            "promotion changed the scores"
        );
    }

    let (rolled, generation) = rollback_backends(&backends);
    assert!(rolled, "every replica reports a successful rollback");
    assert_eq!(
        generation, 2,
        "rollback is a new generation, never a rewind"
    );
    for (addr, base) in addrs.iter().zip(&baseline) {
        assert_eq!(&score_bits(addr), base, "rollback must be bit-identical");
    }

    // One-deep: a second rollback has nothing left to restore.
    let (rolled, _) = rollback_backends(&backends);
    assert!(!rolled);
}

/// A replica stand-in that validates and ACKs a stage (a real checksum
/// over the sealed bytes) but drops the connection on commit — the
/// "died between the phases" failure the coordinator must undo.
fn spawn_commit_dropper() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind dropper");
    let addr = listener.local_addr().expect("local addr").to_string();
    thread::spawn(move || {
        for conn in listener.incoming() {
            let Ok(stream) = conn else { continue };
            thread::spawn(move || serve_dropper_conn(stream));
        }
    });
    addr
}

fn serve_dropper_conn(mut stream: TcpStream) {
    while let Ok(Some(frame)) = read_frame(&mut stream) {
        match decode_request(&frame) {
            Ok(Request::StageBundle { sealed }) => {
                let reply = encode_stage_ok(crc32(&sealed));
                if write_frame(&mut stream, &reply).is_err() {
                    return;
                }
            }
            // Commit (or anything else): die without a reply.
            _ => return,
        }
    }
}

#[test]
fn mid_commit_death_rolls_back_the_replicas_that_already_flipped() {
    let (_servers, addrs, mut backends) = start_fleet(&[true, true]);
    let baseline: Vec<Vec<u32>> = addrs.iter().map(|a| score_bits(a)).collect();
    // The dropper is last in fleet order, so both real replicas commit
    // before the coordinator discovers the death and must undo them.
    backends.push(Arc::new(Backend::new(spawn_commit_dropper())));

    let sealed = candidate(5);
    assert_eq!(
        two_phase_promote(&backends, &sealed, crc32(&sealed)),
        None,
        "a death between the phases fails the round"
    );

    for (addr, base) in addrs.iter().zip(&baseline) {
        assert_eq!(
            &score_bits(addr),
            base,
            "committed replicas must be rolled back to baseline bits"
        );
        // Commit then forced rollback: two generation bumps, zero net
        // model change.
        assert_eq!(generation_of(addr), 2);
    }
}
