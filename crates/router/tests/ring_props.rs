//! Property tests for the routing policies: the consistent-hash ring's
//! bounded-remapping and load-spread guarantees, and least-inflight
//! selection.

use lre_router::{least_inflight, mix64, HashRing};
use proptest::prelude::*;

fn assignments(ring: &HashRing, keys: &[u64], healthy: &[bool]) -> Vec<Option<usize>> {
    keys.iter().map(|&k| ring.lookup(k, healthy)).collect()
}

fn keys_from(seed: u64, n: usize) -> Vec<u64> {
    (0..n as u64).map(|i| mix64(seed ^ mix64(i))).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Removing one backend moves only the keys that backend owned —
    // every key owned by a survivor keeps its assignment — and the moved
    // count stays near the K/N share a balanced ring promises.
    #[test]
    fn removal_remaps_only_the_removed_nodes_keys(
        nodes in 2usize..7,
        removed_pick in 0usize..64,
        key_seed in 0u64..(1u64 << 32),
    ) {
        const K: usize = 512;
        let ring = HashRing::new(nodes, 64);
        let keys = keys_from(key_seed, K);
        let all_up = vec![true; nodes];
        let before = assignments(&ring, &keys, &all_up);
        let removed = removed_pick % nodes;
        let mut healthy = all_up;
        healthy[removed] = false;
        let after = assignments(&ring, &keys, &healthy);

        let mut moved = 0usize;
        for (b, a) in before.iter().zip(&after) {
            let b = b.expect("all backends healthy: every key owned");
            let a = a.expect("one backend down: still every key owned");
            if b == removed {
                prop_assert_ne!(a, removed, "key still assigned to the removed backend");
                moved += 1;
            } else {
                prop_assert_eq!(a, b, "a surviving backend's key moved");
            }
        }
        // The removed backend owned roughly K/N keys. Generous slack for
        // hash imbalance; a broken ring (everything remapping) lands far
        // outside it.
        prop_assert!(
            moved <= 3 * K / nodes,
            "moved {} of {} keys with {} nodes",
            moved, K, nodes
        );
    }

    // With virtual nodes the load spreads: no backend is starved and
    // none owns a runaway share.
    #[test]
    fn load_is_balanced_across_backends(
        nodes in 2usize..7,
        key_seed in 0u64..(1u64 << 32),
    ) {
        const K: usize = 1024;
        let ring = HashRing::new(nodes, 64);
        let healthy = vec![true; nodes];
        let mut owned = vec![0usize; nodes];
        for key in keys_from(key_seed, K) {
            owned[ring.lookup(key, &healthy).expect("healthy ring")] += 1;
        }
        let ideal = K / nodes;
        for (node, &count) in owned.iter().enumerate() {
            prop_assert!(count >= ideal / 4, "backend {} starved: {} of {}", node, count, K);
            prop_assert!(count <= ideal * 4, "backend {} hot: {} of {}", node, count, K);
        }
    }

    // Ownership is a pure function of the healthy set: re-admitting the
    // removed backend restores the original assignment exactly.
    #[test]
    fn readmission_restores_original_ownership(
        nodes in 2usize..7,
        key_seed in 0u64..(1u64 << 32),
    ) {
        let ring = HashRing::new(nodes, 32);
        let keys = keys_from(key_seed, 256);
        let up = vec![true; nodes];
        let before = assignments(&ring, &keys, &up);
        let mut down = up.clone();
        down[(key_seed as usize) % nodes] = false;
        let _ = assignments(&ring, &keys, &down);
        prop_assert_eq!(assignments(&ring, &keys, &up), before);
    }

    // least_inflight always returns a healthy index carrying a minimal
    // inflight count, and None exactly when nothing is healthy.
    #[test]
    fn least_inflight_picks_a_minimal_healthy_entry(
        inflights in prop::collection::vec(0usize..10, 1..8),
        mask in 0u64..256,
    ) {
        let healthy: Vec<bool> = (0..inflights.len()).map(|i| (mask >> i) & 1 == 1).collect();
        match least_inflight(&inflights, &healthy) {
            Some(i) => {
                prop_assert!(healthy[i]);
                for j in 0..inflights.len() {
                    if healthy[j] {
                        prop_assert!(inflights[i] <= inflights[j]);
                    }
                }
            }
            None => prop_assert!(healthy.iter().all(|&h| !h)),
        }
    }
}

#[test]
fn least_inflight_prefers_the_emptiest_healthy_backend() {
    assert_eq!(least_inflight(&[3, 1, 2], &[true, true, true]), Some(1));
    // The emptiest backend is down: next-emptiest healthy one wins.
    assert_eq!(least_inflight(&[3, 1, 2], &[true, false, true]), Some(2));
    // Ties go to the lowest index, so placement is deterministic.
    assert_eq!(least_inflight(&[4, 4, 4], &[true, true, true]), Some(0));
    assert_eq!(least_inflight(&[4, 4], &[false, true]), Some(1));
    assert_eq!(least_inflight(&[5, 5], &[false, false]), None);
    assert_eq!(least_inflight(&[], &[]), None);
}

#[test]
fn least_inflight_ignores_the_load_of_unhealthy_backends() {
    // An ejected backend still drains its pending map; its (stale) count
    // must never make it look attractive or repulsive.
    assert_eq!(least_inflight(&[0, 9], &[false, true]), Some(1));
    assert_eq!(least_inflight(&[9, 0], &[true, false]), Some(0));
}
