//! Deterministic fault injection against a real router: a scripted
//! replica dies mid-pipelined-batch and the router must answer every
//! outstanding request exactly once with a typed status — no hangs, no
//! torn frames, no duplicates — then re-admit the replica once it is
//! answering health probes again.

use lre_router::{Backend, Router, RouterConfig};
use lre_serve::protocol::{
    decode_request, encode_ping_ok, encode_score_ok_v2, read_frame, write_frame, PingReport,
    Request,
};
use lre_serve::{PipelinedClient, ScoreReply, ScoredUtt};
use std::collections::HashSet;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// A replica stand-in scripted from the test: scores until its budget
/// runs out, then kills the data connection mid-batch and stops
/// answering health probes (so re-admission happens exactly when the
/// test flips it back to life, never earlier).
struct FakeReplica {
    addr: String,
    alive: Arc<AtomicBool>,
    score_budget: Arc<AtomicI64>,
}

const FAKE_LLRS: [f32; 2] = [0.25, -0.75];

fn spawn_fake_replica(score_budget: i64) -> FakeReplica {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind fake replica");
    let addr = listener.local_addr().expect("local addr").to_string();
    let alive = Arc::new(AtomicBool::new(true));
    let budget = Arc::new(AtomicI64::new(score_budget));
    {
        let alive = Arc::clone(&alive);
        let budget = Arc::clone(&budget);
        thread::spawn(move || {
            for conn in listener.incoming() {
                let Ok(stream) = conn else { continue };
                let alive = Arc::clone(&alive);
                let budget = Arc::clone(&budget);
                thread::spawn(move || serve_fake_conn(stream, alive, budget));
            }
        });
    }
    FakeReplica {
        addr,
        alive,
        score_budget: budget,
    }
}

fn serve_fake_conn(mut stream: TcpStream, alive: Arc<AtomicBool>, budget: Arc<AtomicI64>) {
    while let Ok(Some(frame)) = read_frame(&mut stream) {
        match decode_request(&frame) {
            Ok(Request::Ping) => {
                if !alive.load(Ordering::SeqCst) {
                    return; // close without a reply: the probe fails
                }
                let reply = encode_ping_ok(&PingReport {
                    generation: 0,
                    inflight: 0,
                    shed: 0,
                    completed: 0,
                });
                if write_frame(&mut stream, &reply).is_err() {
                    return;
                }
            }
            Ok(Request::ScoreV2 { id, .. }) => {
                if budget.fetch_sub(1, Ordering::SeqCst) <= 0 {
                    // Death mid-batch: play dead, drop the connection
                    // with requests still in flight.
                    alive.store(false, Ordering::SeqCst);
                    return;
                }
                let scored = ScoredUtt {
                    llrs: FAKE_LLRS.to_vec(),
                    decision: 0,
                    batch_size: 1,
                    generation: 0,
                    span: None,
                    unknown: false,
                };
                if write_frame(&mut stream, &encode_score_ok_v2(id, &scored)).is_err() {
                    return;
                }
            }
            _ => return,
        }
    }
}

fn fast_health() -> RouterConfig {
    RouterConfig {
        health_interval: Duration::from_millis(25),
        probe_timeout: Duration::from_millis(500),
        ..RouterConfig::default()
    }
}

#[test]
fn replica_death_mid_batch_fails_fast_typed_then_readmits() {
    const SCORED_BEFORE_DEATH: i64 = 3;
    const SUBMITTED: usize = 8;

    let fake = spawn_fake_replica(SCORED_BEFORE_DEATH);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind router");
    let backends = vec![Arc::new(Backend::new(fake.addr.clone()))];
    let router = Router::start(listener, backends, fast_health(), None).expect("start router");

    let mut client = PipelinedClient::connect(router.local_addr()).expect("connect");
    let samples = vec![0.5f32; 16];
    let mut outstanding: HashSet<u64> = HashSet::new();
    for _ in 0..SUBMITTED {
        assert!(outstanding.insert(client.submit(&samples, None).expect("submit")));
    }

    // Exactly one reply per id, every one of them typed: the ones the
    // replica answered before dying come back scored and bit-identical,
    // the rest fail fast (INTERNAL for in-flight orphans, OVERLOADED if
    // re-routing found the fleet empty) — never a hang or a torn frame.
    let mut scored = 0usize;
    let mut typed_failures = 0usize;
    for _ in 0..SUBMITTED {
        let (id, reply) = client.recv().expect("router always answers");
        assert!(
            outstanding.remove(&id),
            "duplicate or unknown reply id {id}"
        );
        match reply {
            ScoreReply::Scored(s) => {
                let want: Vec<u32> = FAKE_LLRS.iter().map(|x| x.to_bits()).collect();
                let got: Vec<u32> = s.llrs.iter().map(|x| x.to_bits()).collect();
                assert_eq!(got, want, "routed score not bit-identical");
                scored += 1;
            }
            ScoreReply::Failed | ScoreReply::Overloaded => typed_failures += 1,
            other => panic!("unexpected reply for {id}: {other:?}"),
        }
    }
    assert!(outstanding.is_empty(), "unanswered ids: {outstanding:?}");
    assert_eq!(scored, SCORED_BEFORE_DEATH as usize);
    assert_eq!(typed_failures, SUBMITTED - SCORED_BEFORE_DEATH as usize);

    // While the replica plays dead every probe fails, so the backend
    // stays ejected and new requests are shed typed, immediately.
    let id = client.submit(&samples, None).expect("submit while down");
    let (rid, reply) = client.recv().expect("typed refusal");
    assert_eq!(rid, id);
    assert!(
        matches!(reply, ScoreReply::Overloaded | ScoreReply::Failed),
        "expected a typed refusal while the fleet is empty, got {reply:?}"
    );

    // Revive the replica: the health thread's doubling-backoff probes
    // must re-admit it, after which scoring works again end to end.
    fake.score_budget.store(i64::MAX, Ordering::SeqCst);
    fake.alive.store(true, Ordering::SeqCst);
    let deadline = Instant::now() + Duration::from_secs(10);
    while !router.backends()[0].is_healthy() {
        assert!(Instant::now() < deadline, "replica was never re-admitted");
        thread::sleep(Duration::from_millis(10));
    }
    let id = client
        .submit(&samples, None)
        .expect("submit after re-admission");
    let (rid, reply) = client.recv().expect("recv after re-admission");
    assert_eq!(rid, id);
    assert!(
        matches!(reply, ScoreReply::Scored(_)),
        "re-admitted replica should score again, got {reply:?}"
    );

    // Bookkeeping: nothing is still charged as in flight, and every
    // reply the backend produced was counted.
    assert_eq!(router.backends()[0].inflight(), 0);
    assert_eq!(
        router.backends()[0].completed.load(Ordering::Relaxed),
        SCORED_BEFORE_DEATH as u64 + 1
    );
    router.stop();
}

#[test]
fn empty_fleet_refuses_typed_immediately() {
    // A replica address nothing listens on: admission fails at startup
    // and every request is refused OVERLOADED without hanging.
    let parked = TcpListener::bind("127.0.0.1:0").expect("bind parked");
    let dead_addr = parked.local_addr().expect("local addr").to_string();
    drop(parked);

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind router");
    let backends = vec![Arc::new(Backend::new(dead_addr))];
    let router = Router::start(listener, backends, fast_health(), None).expect("start router");

    let mut client = PipelinedClient::connect(router.local_addr()).expect("connect");
    let id = client.submit(&[0.0f32; 8], None).expect("submit");
    let (rid, reply) = client.recv().expect("typed refusal");
    assert_eq!(rid, id);
    assert!(matches!(reply, ScoreReply::Overloaded), "got {reply:?}");
    router.stop();
}
