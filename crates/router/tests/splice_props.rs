//! Property tests for the router's in-place frame surgery.
//!
//! The router never re-encodes a score frame: it splices ids into
//! `frame[1..9]` ([`lre_router::Backend::forward`] on the way out, the
//! backend reader on the way back) and mints trace ids into
//! `frame[13..21]` of a traced request that arrived with trace id 0.
//! Both splices bank on the wire layout being *positionally stable* for
//! every possible body — any drift between the encoder and these offsets
//! corrupts samples or misroutes replies. Until now that contract was
//! only covered end-to-end; these properties pin it against random
//! bodies, including NaN-bit sample payloads.

use lre_serve::engine::decision;
use lre_serve::protocol::{
    decode_request, decode_score_reply_v2, encode_request, encode_score_ok_v2, Request,
    REQ_SCORE_TRACED, REQ_SCORE_V2,
};
use lre_serve::ScoredUtt;
use proptest::prelude::*;

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Arbitrary sample payloads, NaN and infinity bit patterns included —
/// the router must treat the body as opaque bytes.
fn samples_strategy() -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(any::<u32>().prop_map(f32::from_bits), 0..48)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // The traced-score layout: tag, id at 1..9, deadline at 9..13, trace
    // id at 13..21, then samples. Patching a minted trace id into
    // 13..21 must change exactly that field and nothing else.
    #[test]
    fn trace_id_patch_touches_only_bytes_13_to_21(
        id in any::<u64>(),
        deadline_ms in any::<u32>(),
        minted in any::<u64>().prop_map(|v| v | 1), // non-zero, like mint_trace_id
        samples in samples_strategy(),
    ) {
        let frame = encode_request(&Request::ScoreTraced {
            id,
            deadline_ms,
            trace_id: 0,
            samples: samples.clone(),
        });
        // Positional pins the router's splice depends on.
        prop_assert_eq!(frame[0], REQ_SCORE_TRACED);
        prop_assert_eq!(u64::from_le_bytes(frame[1..9].try_into().unwrap()), id);
        prop_assert_eq!(
            u32::from_le_bytes(frame[9..13].try_into().unwrap()),
            deadline_ms
        );
        prop_assert_eq!(u64::from_le_bytes(frame[13..21].try_into().unwrap()), 0);

        let mut patched = frame.clone();
        patched[13..21].copy_from_slice(&minted.to_le_bytes());
        prop_assert_eq!(&patched[..13], &frame[..13]);
        prop_assert_eq!(&patched[21..], &frame[21..]);

        match decode_request(&patched) {
            Ok(Request::ScoreTraced {
                id: got_id,
                deadline_ms: got_deadline,
                trace_id: got_trace,
                samples: got_samples,
            }) => {
                prop_assert_eq!(got_id, id);
                prop_assert_eq!(got_deadline, deadline_ms);
                prop_assert_eq!(got_trace, minted);
                prop_assert_eq!(bits(&got_samples), bits(&samples));
            }
            other => prop_assert!(false, "patched frame no longer decodes: {other:?}"),
        }
    }

    // Backend::forward rewrites frame[1..9] with its own id; the frame
    // must still decode as the same request with only the id changed.
    #[test]
    fn request_id_splice_preserves_the_body(
        id in any::<u64>(),
        backend_id in any::<u64>(),
        deadline_ms in any::<u32>(),
        samples in samples_strategy(),
    ) {
        let frame = encode_request(&Request::ScoreV2 {
            id,
            deadline_ms,
            samples: samples.clone(),
        });
        prop_assert_eq!(frame[0], REQ_SCORE_V2);
        let mut spliced = frame.clone();
        spliced[1..9].copy_from_slice(&backend_id.to_le_bytes());
        prop_assert_eq!(&spliced[9..], &frame[9..]);
        match decode_request(&spliced) {
            Ok(Request::ScoreV2 {
                id: got_id,
                deadline_ms: got_deadline,
                samples: got_samples,
            }) => {
                prop_assert_eq!(got_id, backend_id);
                prop_assert_eq!(got_deadline, deadline_ms);
                prop_assert_eq!(bits(&got_samples), bits(&samples));
            }
            other => prop_assert!(false, "spliced frame no longer decodes: {other:?}"),
        }
    }

    // The backend reader splices the client id back into reply frames at
    // the same offset. The scored payload — LLR bits, generation, the
    // open-set unknown flag — must survive untouched.
    #[test]
    fn reply_id_splice_preserves_the_scored_payload(
        backend_id in any::<u64>(),
        client_id in any::<u64>(),
        llr_bits in proptest::collection::vec(any::<u32>(), 1..24),
        decision_pick in any::<usize>(),
        generation in any::<u64>(),
        batch_size in 1usize..64,
        unknown in any::<bool>(),
    ) {
        let llrs: Vec<f32> = llr_bits.iter().copied().map(f32::from_bits).collect();
        let scored = ScoredUtt {
            decision: decision_pick % llrs.len(),
            batch_size,
            generation,
            span: None,
            unknown,
            llrs: llrs.clone(),
        };
        let mut frame = encode_score_ok_v2(backend_id, &scored);
        prop_assert_eq!(u64::from_le_bytes(frame[1..9].try_into().unwrap()), backend_id);
        frame[1..9].copy_from_slice(&client_id.to_le_bytes());
        let (got_id, reply) = decode_score_reply_v2(&frame).expect("spliced reply decodes");
        prop_assert_eq!(got_id, client_id);
        let back = reply.expect("an OK reply stays OK");
        prop_assert_eq!(bits(&back.llrs), bits(&llrs));
        prop_assert_eq!(back.generation, generation);
        prop_assert_eq!(back.batch_size, batch_size);
        prop_assert_eq!(back.unknown, unknown);
        // The sentinel path recovers the local argmax; the closed-set
        // path carries the wire decision verbatim.
        let expect_decision = if unknown { decision(&llrs) } else { scored.decision };
        prop_assert_eq!(back.decision, expect_decision);
    }
}
