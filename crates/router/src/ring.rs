//! Consistent-hash ring with virtual nodes, for replica-affine routing.
//!
//! Each backend owns `vnodes` points on a `u64` ring; a key is served by
//! the first point clockwise from its hash. Removing a backend (marking
//! it unhealthy) moves only the keys that backend owned — every other
//! key keeps its assignment, which is the whole reason to prefer this
//! over `key % n` when replicas cache per-content state. The property
//! tests pin both guarantees: bounded remapping on removal, and load
//! spread across backends.

/// `splitmix64`-style finalizer: a cheap, well-distributed `u64 -> u64`
/// mix (the workspace vendors no hash crates).
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hash arbitrary bytes to a ring key: FNV-1a folded through [`mix64`]
/// (FNV alone clusters on short inputs differing in one byte).
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    mix64(h)
}

/// The ring: `(point, backend index)` pairs sorted by point.
pub struct HashRing {
    points: Vec<(u64, usize)>,
    nodes: usize,
}

impl HashRing {
    /// Build a ring over backends `0..nodes`, `vnodes` points each. The
    /// points are a pure function of `(node, vnode)`, so every router
    /// instance over the same backend list agrees on ownership.
    pub fn new(nodes: usize, vnodes: usize) -> HashRing {
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(nodes * vnodes);
        for node in 0..nodes {
            for v in 0..vnodes {
                points.push((mix64(((node as u64) << 24) | v as u64), node));
            }
        }
        points.sort_unstable();
        HashRing { points, nodes }
    }

    pub fn num_nodes(&self) -> usize {
        self.nodes
    }

    /// The backend owning `key`, skipping backends whose `healthy` entry
    /// is false. `None` when no backend is healthy. A skipped backend
    /// never perturbs the assignment of keys it did not own: the walk
    /// order is fixed, so keys owned by healthy backends are untouched.
    pub fn lookup(&self, key: u64, healthy: &[bool]) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let start = self.points.partition_point(|&(p, _)| p < key);
        for i in 0..self.points.len() {
            let (_, node) = self.points[(start + i) % self.points.len()];
            if healthy.get(node).copied().unwrap_or(false) {
                return Some(node);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_is_deterministic_and_none_when_all_down() {
        let ring = HashRing::new(3, 16);
        let up = vec![true; 3];
        for k in 0..64u64 {
            let key = mix64(k);
            assert_eq!(ring.lookup(key, &up), ring.lookup(key, &up));
        }
        assert_eq!(ring.lookup(7, &[false, false, false]), None);
    }

    #[test]
    fn single_node_owns_everything() {
        let ring = HashRing::new(1, 8);
        for k in 0..32u64 {
            assert_eq!(ring.lookup(mix64(k.wrapping_mul(77)), &[true]), Some(0));
        }
    }
}
