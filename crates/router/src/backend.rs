//! One routed replica: a pipelined v2 data connection, the pending-reply
//! map that matches backend replies to waiting clients, and the
//! health/backoff state the router's health thread drives.
//!
//! ## The id rewrite
//!
//! Client request ids are only unique per client connection, but one
//! backend connection carries requests from every client, so the router
//! re-tags each forwarded request with a backend-unique id and patches
//! the original id back into the reply. Both request and reply carry the
//! id as a raw little-endian `u64` at bytes `1..9` of the payload (tag
//! or status byte first), so the rewrite is a 8-byte splice — the score
//! body itself is forwarded untouched, which is what preserves the
//! fleet's bit-identity contract through the router for free.
//!
//! ## Failure semantics
//!
//! A request that was fully written to a replica that then dies is
//! failed fast with `STATUS_INTERNAL` under the client's id — never
//! silently dropped, and never re-routed (the replica may have scored
//! it; "answered exactly once" beats "maybe scored twice"). A request
//! whose *write* failed is safe to re-route: the replica saw at most a
//! torn frame, which it discards without scoring by the malformed-input
//! contract.

use lre_obs::{Counter, FlightRecorder, Histogram, EV_EJECT, EV_READMIT};
use lre_serve::protocol::{
    encode_request, encode_status_v2, read_frame, write_frame, PingReport, Request, STATUS_INTERNAL,
};
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// A reply waiting to come back from this replica.
pub struct Pending {
    /// The id the client sent; spliced back into the reply.
    pub client_id: u64,
    /// The client connection's writer lane.
    pub reply_tx: mpsc::Sender<Vec<u8>>,
    /// Per-client-connection inflight window counter.
    pub window: Arc<AtomicUsize>,
    /// Router-wide inflight counter.
    pub global: Arc<AtomicUsize>,
    /// When the request was handed to this backend (per-backend routed
    /// latency, forward-write to reply-match).
    pub sent: Instant,
}

impl Pending {
    fn release(&self) {
        self.window.fetch_sub(1, Ordering::AcqRel);
        self.global.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Reconnect/backoff state, advanced by the health thread.
struct Probe {
    /// Consecutive failed health probes while healthy.
    strikes: u32,
    /// Earliest next re-admission probe while unhealthy.
    next_probe: Instant,
    /// Current re-admission backoff (doubles per failed probe).
    backoff: Duration,
}

/// Why a forward attempt did not take.
#[derive(Debug)]
pub enum ForwardError {
    /// The write failed before the frame was fully on the wire; the
    /// request was not scored and may be re-routed.
    WriteFailed,
}

pub const INITIAL_BACKOFF: Duration = Duration::from_millis(100);
pub const MAX_BACKOFF: Duration = Duration::from_secs(5);

/// Telemetry hooks a router attaches to a backend at startup: the
/// per-replica routed-latency histogram, the fleet-wide eject/re-admit
/// counters (shared across backends), and the flight recorder that
/// keeps the structured eject/re-admit events.
pub struct BackendTelemetry {
    pub latency_us: Arc<Histogram>,
    pub ejected: Arc<Counter>,
    pub readmitted: Arc<Counter>,
    pub flight: Arc<FlightRecorder>,
}

/// One replica as the router sees it.
pub struct Backend {
    pub addr: String,
    /// Write half of the live data connection (`None` while ejected).
    conn: Mutex<Option<TcpStream>>,
    /// Bumps on every disconnect so a stale reader thread can tell it
    /// lost the race against a reconnect and must not touch shared state.
    epoch: AtomicU64,
    pending: Mutex<HashMap<u64, Pending>>,
    next_id: AtomicU64,
    healthy: AtomicBool,
    probe: Mutex<Probe>,
    /// Most recent successful health probe (router ping aggregation).
    last_ping: Mutex<Option<PingReport>>,
    /// Replies this backend returned to clients through the router.
    pub completed: AtomicU64,
    /// Requests failed typed (`STATUS_INTERNAL`) because the replica died
    /// with them in flight.
    pub failed_inflight: AtomicU64,
    /// Set once by the hosting router when telemetry is on; absent, the
    /// backend records nothing (the unit-test path).
    telemetry: OnceLock<BackendTelemetry>,
}

impl Backend {
    pub fn new(addr: String) -> Backend {
        Backend {
            addr,
            conn: Mutex::new(None),
            epoch: AtomicU64::new(0),
            pending: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            healthy: AtomicBool::new(false),
            probe: Mutex::new(Probe {
                strikes: 0,
                next_probe: Instant::now(),
                backoff: INITIAL_BACKOFF,
            }),
            last_ping: Mutex::new(None),
            completed: AtomicU64::new(0),
            failed_inflight: AtomicU64::new(0),
            telemetry: OnceLock::new(),
        }
    }

    /// Attach telemetry (at most once; later calls are ignored).
    pub fn set_telemetry(&self, t: BackendTelemetry) {
        let _ = self.telemetry.set(t);
    }

    pub fn is_healthy(&self) -> bool {
        self.healthy.load(Ordering::Acquire)
    }

    /// Requests currently awaiting a reply from this replica.
    pub fn inflight(&self) -> usize {
        self.pending.lock().expect("pending poisoned").len()
    }

    pub fn last_ping(&self) -> Option<PingReport> {
        *self.last_ping.lock().expect("ping poisoned")
    }

    pub fn record_ping(&self, p: PingReport) {
        *self.last_ping.lock().expect("ping poisoned") = Some(p);
    }

    /// Establish (or re-establish) the data connection and spawn its
    /// reader. On success the backend is healthy and routable.
    pub fn connect(self: &Arc<Self>) -> io::Result<()> {
        let stream = connect_to(&self.addr, Duration::from_secs(2))?;
        stream.set_nodelay(true).ok();
        let read_half = stream.try_clone()?;
        let epoch = self.epoch.fetch_add(1, Ordering::AcqRel) + 1;
        *self.conn.lock().expect("conn poisoned") = Some(stream);
        self.healthy.store(true, Ordering::Release);
        {
            let mut probe = self.probe.lock().expect("probe poisoned");
            probe.strikes = 0;
            probe.backoff = INITIAL_BACKOFF;
        }
        let me = Arc::clone(self);
        std::thread::spawn(move || me.read_replies(read_half, epoch));
        Ok(())
    }

    /// The data connection's reader: match replies to pending requests,
    /// splice the client id back in, hand the frame to the client's
    /// writer. Exits when the connection dies, failing whatever is still
    /// pending.
    fn read_replies(self: Arc<Self>, mut stream: TcpStream, my_epoch: u64) {
        while let Ok(Some(mut frame)) = read_frame(&mut stream) {
            if frame.len() < 9 {
                break; // not a v2 reply; the stream is corrupt
            }
            let backend_id = u64::from_le_bytes(frame[1..9].try_into().expect("9-byte slice"));
            let entry = self
                .pending
                .lock()
                .expect("pending poisoned")
                .remove(&backend_id);
            if let Some(p) = entry {
                frame[1..9].copy_from_slice(&p.client_id.to_le_bytes());
                p.release();
                self.completed.fetch_add(1, Ordering::Relaxed);
                if let Some(t) = self.telemetry.get() {
                    t.latency_us.record(p.sent.elapsed().as_micros() as u64);
                }
                let _ = p.reply_tx.send(frame); // client may have left; fine
            }
        }
        // Only the reader that still owns the current epoch may tear the
        // backend down — a stale reader waking up after a reconnect must
        // not fail the new connection's pending requests.
        if self.epoch.load(Ordering::Acquire) == my_epoch {
            self.eject();
        }
    }

    /// Forward one v2 score frame (`frame[1..9]` holds the client id,
    /// which this rewrites). The pending entry is registered before the
    /// write so the reply cannot race the bookkeeping.
    pub fn forward(
        &self,
        mut frame: Vec<u8>,
        pending: Pending,
    ) -> Result<(), (ForwardError, Pending)> {
        debug_assert!(frame.len() >= 13, "caller decoded this as a v2 score");
        let backend_id = self.next_id.fetch_add(1, Ordering::Relaxed);
        frame[1..9].copy_from_slice(&backend_id.to_le_bytes());
        self.pending
            .lock()
            .expect("pending poisoned")
            .insert(backend_id, pending);
        let write_ok = {
            let mut conn = self.conn.lock().expect("conn poisoned");
            match conn.as_mut() {
                Some(stream) => write_frame(stream, &frame).is_ok(),
                None => false,
            }
        };
        if write_ok {
            return Ok(());
        }
        self.eject();
        // If the entry is gone, the reader's teardown beat us to it and
        // already answered the client with a typed failure — re-routing
        // now would answer twice.
        match self
            .pending
            .lock()
            .expect("pending poisoned")
            .remove(&backend_id)
        {
            Some(p) => Err((ForwardError::WriteFailed, p)),
            None => Ok(()),
        }
    }

    /// Take the replica out of rotation: close the data connection and
    /// fail every in-flight request typed, under its client id. Safe to
    /// call from any thread, repeatedly.
    pub fn eject(&self) {
        let was_healthy = self.healthy.swap(false, Ordering::AcqRel);
        self.epoch.fetch_add(1, Ordering::AcqRel);
        *self.conn.lock().expect("conn poisoned") = None;
        let orphans: Vec<Pending> = {
            let mut pending = self.pending.lock().expect("pending poisoned");
            pending.drain().map(|(_, p)| p).collect()
        };
        // Only the transition records: eject is idempotent and re-entered
        // by the reader teardown and the health thread.
        if was_healthy {
            if let Some(t) = self.telemetry.get() {
                t.ejected.incr();
                t.flight
                    .record(EV_EJECT, &self.addr, orphans.len() as u64, 0, 0.0, 0.0);
            }
        }
        for p in orphans {
            p.release();
            self.failed_inflight.fetch_add(1, Ordering::Relaxed);
            let _ = p
                .reply_tx
                .send(encode_status_v2(p.client_id, STATUS_INTERNAL));
        }
    }

    /// One health-thread step. Healthy: ping through a throwaway control
    /// connection; two consecutive failures eject. Unhealthy: once the
    /// backoff expires, probe and — on success — reconnect the data
    /// path; each failed probe doubles the backoff up to [`MAX_BACKOFF`].
    pub fn health_step(self: &Arc<Self>, probe_timeout: Duration) {
        if self.is_healthy() {
            match probe_ping(&self.addr, probe_timeout) {
                Ok(p) => {
                    self.record_ping(p);
                    self.probe.lock().expect("probe poisoned").strikes = 0;
                }
                Err(_) => {
                    let strikes = {
                        let mut probe = self.probe.lock().expect("probe poisoned");
                        probe.strikes += 1;
                        probe.strikes
                    };
                    if strikes >= 2 {
                        self.eject();
                    }
                }
            }
            return;
        }
        let due = {
            let probe = self.probe.lock().expect("probe poisoned");
            Instant::now() >= probe.next_probe
        };
        if !due {
            return;
        }
        let readmitted = probe_ping(&self.addr, probe_timeout).is_ok() && self.connect().is_ok();
        if readmitted {
            if let Some(t) = self.telemetry.get() {
                t.readmitted.incr();
                t.flight.record(EV_READMIT, &self.addr, 0, 0, 0.0, 0.0);
            }
        }
        if !readmitted {
            let mut probe = self.probe.lock().expect("probe poisoned");
            probe.next_probe = Instant::now() + probe.backoff;
            probe.backoff = (probe.backoff * 2).min(MAX_BACKOFF);
        }
    }
}

/// `TcpStream::connect` with a timeout, resolving `host:port` first.
pub fn connect_to(addr: &str, timeout: Duration) -> io::Result<TcpStream> {
    let sock: SocketAddr = addr.to_socket_addrs()?.next().ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
    })?;
    TcpStream::connect_timeout(&sock, timeout)
}

/// One-shot request/reply on a fresh control connection with read/write
/// timeouts — the health thread must never hang on a wedged replica.
pub fn probe_round_trip(addr: &str, req: &Request, timeout: Duration) -> io::Result<Vec<u8>> {
    let mut stream = connect_to(addr, timeout)?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    write_frame(&mut stream, &encode_request(req))?;
    read_frame(&mut stream)?
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "replica closed on probe"))
}

/// Health probe: ping over a throwaway connection.
pub fn probe_ping(addr: &str, timeout: Duration) -> io::Result<PingReport> {
    let reply = probe_round_trip(addr, &Request::Ping, timeout)?;
    match lre_serve::protocol::decode_ping_reply(&reply)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?
    {
        Ok(p) => Ok(p),
        Err(status) => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("ping refused (status {status})"),
        )),
    }
}
