//! Fleet-aware adaptation: drain every replica's vote log, boost one
//! candidate from the merged pool, and promote it with a two-phase
//! rollout so the fleet's serving generation flips all-or-none.
//!
//! ## Why two phases
//!
//! Staging is the expensive, fallible half (ship the sealed bytes,
//! decode, validate against the replica's fast-math mode); a replica
//! that answers `STATUS_OK` to a stage has promised the commit cannot
//! fail on decode. Commit is a pure pointer swap. So the coordinator
//! stages everywhere first, and only when *every* replica holds a
//! validated candidate does it flip them — any stage refusal aborts the
//! round with the staged copies discarded and the fleet still serving
//! the baseline. A commit that fails anyway (a replica dying between
//! phases) triggers the one-deep rollback on every replica that already
//! flipped, restoring the baseline bit-identically.
//!
//! A replica that is ejected while a round runs simply misses the
//! promotion and re-admits on its old generation; mixed-generation
//! fleets are permitted and observable through the fleet stats
//! breakdown.

use crate::backend::Backend;
use lre_adapt::{boost_round, AdaptConfig, RoundOutcome};
use lre_artifact::ArtifactRead;
use lre_dba::GuardSet;
use lre_obs::{FlightRecorder, EV_GUARD_ACCEPT, EV_GUARD_REJECT, EV_ROLLBACK, EV_SWAP};
use lre_serve::protocol::{
    AdaptReport, ADAPT_FAILED, ADAPT_INSUFFICIENT_DATA, ADAPT_PROMOTED, ADAPT_REJECTED_GUARD,
};
use lre_serve::{Client, SystemBundle, VoteLogSnapshot, VoteRecord};
use std::collections::HashSet;
use std::sync::{Arc, Mutex};

struct FleetState {
    /// Sealed baseline the next boosting round trains from. Advances on
    /// every fleet promotion, so successive rounds stack.
    parent_bytes: Vec<u8>,
    /// One-deep lineage for fleet rollback, mirroring each replica's own
    /// one-deep previous slot.
    previous: Option<Vec<u8>>,
}

/// Coordinates adaptation across the router's replicas. One instance per
/// router; cycles are serialized by the internal lock.
pub struct FleetAdapter {
    backends: Vec<Arc<Backend>>,
    guard: GuardSet,
    cfg: AdaptConfig,
    state: Mutex<FleetState>,
    /// Optional flight recorder: guard verdicts (with EER/min-Cavg
    /// deltas), fleet promotions and rollbacks become structured events.
    flight: Option<Arc<FlightRecorder>>,
}

fn failed(drained: u32) -> AdaptReport {
    AdaptReport {
        outcome: ADAPT_FAILED,
        generation: 0,
        selected: 0,
        drained,
    }
}

impl FleetAdapter {
    /// `parent_bytes` is the sealed bundle every replica was started
    /// from; it is validated by decoding once up front.
    pub fn new(
        backends: Vec<Arc<Backend>>,
        guard: GuardSet,
        parent_bytes: Vec<u8>,
        cfg: AdaptConfig,
    ) -> Result<FleetAdapter, lre_artifact::ArtifactError> {
        SystemBundle::from_artifact_bytes(&parent_bytes)?;
        Ok(FleetAdapter {
            backends,
            guard,
            cfg,
            state: Mutex::new(FleetState {
                parent_bytes,
                previous: None,
            }),
            flight: None,
        })
    }

    /// Attach a flight recorder (call before sharing the adapter).
    pub fn set_flight(&mut self, flight: Arc<FlightRecorder>) {
        self.flight = Some(flight);
    }

    fn healthy(&self) -> Vec<Arc<Backend>> {
        self.backends
            .iter()
            .filter(|b| b.is_healthy())
            .cloned()
            .collect()
    }

    /// Run one fleet adaptation cycle: peek → drain → boost → two-phase
    /// promote. Returns the same report shape a single adapting server
    /// does, with `generation` the lowest committed replica generation.
    pub fn cycle(&self) -> AdaptReport {
        let state = &mut *self.state.lock().expect("fleet state poisoned");
        let fleet = self.healthy();
        if fleet.is_empty() {
            return failed(0);
        }

        // Peek first: if the fleet-wide total is below the floor, no log
        // is touched (the same all-or-nothing contract a single replica's
        // drain gives, lifted to the fleet).
        let mut buffered = 0u64;
        for b in &fleet {
            if let Ok(Ok(reply)) = Client::connect(&b.addr).map(|mut c| c.drain_votes(true, 0)) {
                buffered += u64::from(reply.buffered);
            }
        }
        if (buffered as usize) < self.cfg.min_utts {
            return AdaptReport {
                outcome: ADAPT_INSUFFICIENT_DATA,
                generation: 0,
                selected: 0,
                drained: buffered as u32,
            };
        }

        // Drain and merge. Replicas may have scored the same utterance
        // (client retries across backends), so records are deduplicated
        // by content digest exactly like a single vote log would.
        let mut records: Vec<VoteRecord> = Vec::new();
        let mut seen: HashSet<u64> = HashSet::new();
        for b in &fleet {
            let sealed = match Client::connect(&b.addr).map(|mut c| c.drain_votes(false, 1)) {
                Ok(Ok(reply)) => reply.sealed,
                _ => None,
            };
            let Some(sealed) = sealed else { continue };
            let Ok(snap) = VoteLogSnapshot::from_artifact_bytes(&sealed) else {
                continue;
            };
            for rec in snap.records {
                if seen.insert(rec.digest) {
                    records.push(rec);
                }
            }
        }
        let drained = records.len() as u32;
        if records.is_empty() {
            return AdaptReport {
                outcome: ADAPT_INSUFFICIENT_DATA,
                generation: 0,
                selected: 0,
                drained: 0,
            };
        }

        let candidate = match boost_round(&state.parent_bytes, &records, &self.guard, &self.cfg) {
            Ok(RoundOutcome::Candidate(c)) => c,
            Ok(RoundOutcome::Insufficient { drained }) => {
                return AdaptReport {
                    outcome: ADAPT_INSUFFICIENT_DATA,
                    generation: 0,
                    selected: 0,
                    drained,
                }
            }
            Ok(RoundOutcome::RejectedGuard {
                selected,
                drained,
                eer_delta,
                cavg_delta,
            }) => {
                if let Some(f) = &self.flight {
                    f.record(
                        EV_GUARD_REJECT,
                        "fleet guard",
                        u64::from(selected),
                        u64::from(drained),
                        eer_delta,
                        cavg_delta,
                    );
                }
                return AdaptReport {
                    outcome: ADAPT_REJECTED_GUARD,
                    generation: 0,
                    selected,
                    drained,
                };
            }
            Err(_) => return failed(drained),
        };
        if let Some(f) = &self.flight {
            f.record(
                EV_GUARD_ACCEPT,
                "fleet guard",
                u64::from(candidate.selected),
                u64::from(candidate.drained),
                candidate.eer_delta,
                candidate.cavg_delta,
            );
        }

        match two_phase_promote(&fleet, &candidate.bytes, candidate.checksum) {
            Some(generation) => {
                if let Some(f) = &self.flight {
                    f.record(
                        EV_SWAP,
                        "fleet promote",
                        generation,
                        u64::from(candidate.checksum),
                        candidate.eer_delta,
                        candidate.cavg_delta,
                    );
                }
                state.previous = Some(std::mem::replace(&mut state.parent_bytes, candidate.bytes));
                AdaptReport {
                    outcome: ADAPT_PROMOTED,
                    generation,
                    selected: candidate.selected,
                    drained: candidate.drained,
                }
            }
            None => failed(candidate.drained),
        }
    }

    /// Fleet-wide rollback: every healthy replica reinstalls its
    /// previous generation. `(true, gen)` only when every one rolled;
    /// the adapter's own lineage rewinds with them so the next boosting
    /// round trains from the restored baseline.
    pub fn rollback(&self) -> (bool, u64) {
        let state = &mut *self.state.lock().expect("fleet state poisoned");
        let fleet = self.healthy();
        let (all, generation) = rollback_backends(&fleet);
        if all {
            if let Some(f) = &self.flight {
                f.record(EV_ROLLBACK, "fleet rollback", generation, 0, 0.0, 0.0);
            }
            if let Some(prev) = state.previous.take() {
                state.parent_bytes = prev;
            }
        }
        (all, generation)
    }
}

/// The two-phase flip, usable against any replica set (the adapter's
/// cycle and the fault-injection tests share this exact path).
/// `Some(min committed generation)` when every replica committed; `None`
/// after any failure, with staged copies aborted and committed replicas
/// rolled back so the fleet is left uniformly on the baseline.
pub fn two_phase_promote(fleet: &[Arc<Backend>], sealed: &[u8], checksum: u32) -> Option<u64> {
    if fleet.is_empty() {
        return None;
    }
    // Phase one: stage everywhere. Every OK is a validated promise that
    // the commit cannot fail on decode.
    for (i, b) in fleet.iter().enumerate() {
        let staged = Client::connect(&b.addr)
            .and_then(|mut c| c.stage_bundle(sealed))
            .ok()
            .and_then(|r| r.ok());
        if staged != Some(checksum) {
            for prev in &fleet[..i] {
                if let Ok(mut c) = Client::connect(&prev.addr) {
                    let _ = c.abort_staged();
                }
            }
            return None;
        }
    }
    // Phase two: flip. A failure here means a replica died between the
    // phases — undo the flip everywhere it landed and discard the stage
    // everywhere it did not.
    let mut generations: Vec<u64> = Vec::with_capacity(fleet.len());
    for (i, b) in fleet.iter().enumerate() {
        let committed = Client::connect(&b.addr)
            .and_then(|mut c| c.commit_staged())
            .ok()
            .and_then(|r| r.ok());
        match committed {
            Some((generation, ck)) if ck == checksum => generations.push(generation),
            _ => {
                for prev in &fleet[..i] {
                    if let Ok(mut c) = Client::connect(&prev.addr) {
                        let _ = c.rollback();
                    }
                }
                for rest in &fleet[i + 1..] {
                    if let Ok(mut c) = Client::connect(&rest.addr) {
                        let _ = c.abort_staged();
                    }
                }
                return None;
            }
        }
    }
    generations.into_iter().min()
}

/// Roll every replica in `fleet` back one generation. `(true, min new
/// generation)` only when every one reported a successful rollback.
pub fn rollback_backends(fleet: &[Arc<Backend>]) -> (bool, u64) {
    if fleet.is_empty() {
        return (false, 0);
    }
    let mut all = true;
    let mut generation = u64::MAX;
    for b in fleet {
        match Client::connect(&b.addr).and_then(|mut c| c.rollback()) {
            Ok((true, g)) => generation = generation.min(g),
            _ => all = false,
        }
    }
    (
        all,
        if generation == u64::MAX {
            0
        } else {
            generation
        },
    )
}
