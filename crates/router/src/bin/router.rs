//! The fleet router: one client-facing address over N scoring replicas.
//!
//! ```text
//! lre-router --addr HOST:PORT --replica HOST:PORT [--replica ...]
//!            [--policy least-inflight|hash] [--vnodes N]
//!            [--max-inflight N] [--health-interval-ms N]
//!            [--bundle PATH --guard PATH] [--min-utts N]
//!            [--v-threshold N] [--guard-max-eer-regress X]
//!            [--guard-max-cavg-regress X]
//! ```
//!
//! With `--bundle` and `--guard` the router also coordinates fleet-wide
//! adaptation: `lre-client --adapt` drains every replica's vote log,
//! boosts one candidate from the merged pool, and promotes it through
//! the two-phase rollout. Without them, adapt requests are refused
//! `STATUS_UNSUPPORTED` (the router still routes, health-checks, and
//! fans out rollbacks). A negative `--guard-max-eer-regress` forces
//! every candidate to fail the guard — the fleet rollback drill.

use lre_adapt::AdaptConfig;
use lre_artifact::ArtifactRead;
use lre_dba::GuardSet;
use lre_obs::install_panic_dump;
use lre_router::{Backend, FleetAdapter, Policy, Router, RouterConfig, RouterObs};
use lre_serve::DEFAULT_FLIGHT_CAPACITY;
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn usage(msg: &str) -> ! {
    eprintln!(
        "error: {msg}\nusage: lre-router --addr HOST:PORT --replica HOST:PORT [--replica ...] \
         [--policy least-inflight|hash] [--vnodes N] [--max-inflight N] \
         [--health-interval-ms N] [--bundle PATH --guard PATH] [--min-utts N] \
         [--v-threshold N] [--guard-max-eer-regress X] [--guard-max-cavg-regress X]"
    );
    std::process::exit(2);
}

fn main() {
    let mut addr = "127.0.0.1:7800".to_string();
    let mut replicas: Vec<String> = Vec::new();
    let mut cfg = RouterConfig::default();
    let mut bundle_path: Option<PathBuf> = None;
    let mut guard_path: Option<PathBuf> = None;
    let mut adapt = AdaptConfig::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let parse_num = |args: &[String], i: usize, what: &str| -> usize {
        args.get(i)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| usage(&format!("bad {what} (non-negative integer)")))
    };
    let parse_f64 = |args: &[String], i: usize, what: &str| -> f64 {
        args.get(i)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| usage(&format!("bad {what} (number)")))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                i += 1;
                addr = args
                    .get(i)
                    .unwrap_or_else(|| usage("missing --addr"))
                    .clone();
            }
            "--replica" => {
                i += 1;
                replicas.push(
                    args.get(i)
                        .unwrap_or_else(|| usage("missing --replica address"))
                        .clone(),
                );
            }
            "--policy" => {
                i += 1;
                cfg.policy = match args.get(i).map(|s| s.as_str()) {
                    Some("least-inflight") => Policy::LeastInflight,
                    Some("hash") => Policy::Hash,
                    _ => usage("bad --policy (least-inflight|hash)"),
                };
            }
            "--vnodes" => {
                i += 1;
                cfg.vnodes = parse_num(&args, i, "--vnodes");
            }
            "--max-inflight" => {
                i += 1;
                cfg.max_inflight = parse_num(&args, i, "--max-inflight");
            }
            "--health-interval-ms" => {
                i += 1;
                cfg.health_interval =
                    Duration::from_millis(parse_num(&args, i, "--health-interval-ms") as u64);
            }
            "--bundle" => {
                i += 1;
                bundle_path = Some(PathBuf::from(
                    args.get(i)
                        .unwrap_or_else(|| usage("missing --bundle path")),
                ));
            }
            "--guard" => {
                i += 1;
                guard_path = Some(PathBuf::from(
                    args.get(i).unwrap_or_else(|| usage("missing --guard path")),
                ));
            }
            "--min-utts" => {
                i += 1;
                adapt.min_utts = parse_num(&args, i, "--min-utts");
            }
            "--v-threshold" => {
                i += 1;
                adapt.v_threshold = parse_num(&args, i, "--v-threshold") as u8;
            }
            "--guard-max-eer-regress" => {
                i += 1;
                adapt.max_eer_regress = parse_f64(&args, i, "--guard-max-eer-regress");
            }
            "--guard-max-cavg-regress" => {
                i += 1;
                adapt.max_cavg_regress = parse_f64(&args, i, "--guard-max-cavg-regress");
            }
            other => usage(&format!("unknown argument {other}")),
        }
        i += 1;
    }
    if replicas.is_empty() {
        usage("at least one --replica is required");
    }
    if bundle_path.is_some() != guard_path.is_some() {
        usage("--bundle and --guard come together (both or neither)");
    }

    let backends: Vec<Arc<Backend>> = replicas
        .iter()
        .map(|a| Arc::new(Backend::new(a.clone())))
        .collect();

    // Telemetry is always on for the router binary: per-backend routed
    // latency, eject/re-admit counters, and the flight recorder (which
    // also dumps to stderr on panic).
    let obs = RouterObs::new(DEFAULT_FLIGHT_CAPACITY);
    install_panic_dump(&obs.flight);

    let fleet = match (bundle_path, guard_path) {
        (Some(bp), Some(gp)) => {
            let parent_bytes = match std::fs::read(&bp) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("error: reading {}: {e}", bp.display());
                    std::process::exit(1);
                }
            };
            let guard = match GuardSet::load_artifact(&gp) {
                Ok(g) => g,
                Err(e) => {
                    eprintln!("error: loading {}: {e}", gp.display());
                    std::process::exit(1);
                }
            };
            match FleetAdapter::new(backends.clone(), guard, parent_bytes, adapt) {
                Ok(mut f) => {
                    f.set_flight(Arc::clone(&obs.flight));
                    eprintln!(
                        "[router] fleet adaptation armed (min_utts={})",
                        adapt.min_utts
                    );
                    Some(Arc::new(f))
                }
                Err(e) => {
                    eprintln!("error: invalid bundle for fleet adaptation: {e}");
                    std::process::exit(1);
                }
            }
        }
        _ => None,
    };

    let listener = match TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: binding {addr}: {e}");
            std::process::exit(1);
        }
    };
    let router = match Router::start_observed(listener, backends, cfg, fleet, Some(obs)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: starting router: {e}");
            std::process::exit(1);
        }
    };
    let admitted = router.backends().iter().filter(|b| b.is_healthy()).count();
    eprintln!(
        "[router] {} replicas configured, {} admitted at startup, policy {:?}",
        router.backends().len(),
        admitted,
        cfg.policy
    );
    println!("listening on {}", router.local_addr());
    router.join();
    eprintln!("[router] shut down cleanly");
}
