//! `lre-router`: the sharded multi-replica serving tier.
//!
//! A router sits in front of N `lre-serve --fleet` replicas and gives
//! clients one address that behaves like a single, larger server:
//!
//! - [`router`]: the protocol-v1/v2 front tier — pipelined client
//!   connections fanned over the fleet, request ids and deadlines
//!   preserved, replies relayed out of order and bit-identical to what
//!   the replica produced. Routing is least-inflight by default, or
//!   consistent-hash ([`ring`]) when replica affinity matters;
//! - [`backend`]: one routed replica — its pipelined data connection,
//!   the pending-reply map, typed fail-fast when the replica dies
//!   mid-flight, and ejection / doubling-backoff / re-admission health;
//! - [`fleet`]: fleet-aware adaptation — every replica's vote log
//!   drained into one merged boosting round, promoted via a two-phase
//!   (stage-all, then flip-all) rollout with all-or-none semantics and
//!   one-deep bit-identical rollback.

pub mod backend;
pub mod fleet;
pub mod ring;
pub mod router;

pub use backend::{probe_ping, probe_round_trip, Backend, BackendTelemetry, ForwardError, Pending};
pub use fleet::{rollback_backends, two_phase_promote, FleetAdapter};
pub use ring::{hash_bytes, mix64, HashRing};
pub use router::{least_inflight, Policy, Router, RouterConfig, RouterObs};
