//! The protocol-v2 front tier: accept client connections, fan score
//! requests over the replica fleet, and answer the control plane
//! (stats, ping, fleet stats, adapt, rollback, shutdown) in one place.
//!
//! The data plane never decodes a score body. A v2 request is validated,
//! its id swapped for a backend-unique one, and the frame forwarded
//! verbatim; the reply comes back with the client's id spliced in and
//! the scored bytes untouched, so routed scores are bit-identical to
//! direct ones. v1 requests are translated onto the same pipelined
//! backend connections and their replies re-encoded to the v1 shape.
//!
//! Per-request failure semantics mirror the server's typed statuses:
//! no healthy replica → `STATUS_OVERLOADED`; replica died after the
//! request was on the wire → `STATUS_INTERNAL` under the client's id
//! (fail fast — the replica may have scored it, so it is never
//! re-routed); a torn write before the replica saw a full frame is
//! re-routed once.

use crate::backend::{probe_round_trip, Backend, BackendTelemetry, Pending};
use crate::fleet::FleetAdapter;
use crate::ring::{hash_bytes, HashRing};
use lre_obs::{Counter, FlightRecorder, Registry};
use lre_serve::protocol::{
    decode_request, decode_score_reply_v2, encode_adapt_ok, encode_fleet_stats_ok,
    encode_flight_ok, encode_metrics_ok, encode_ping_ok, encode_rollback_ok, encode_score_ok,
    encode_stats_ok, encode_stats_ok_v2, encode_status, encode_status_v2, read_frame, write_frame,
    FleetStats, PingReport, ReplicaStat, Request, REQ_SCORE_V2, STATUS_BAD_REQUEST,
    STATUS_INTERNAL, STATUS_OK, STATUS_OVERLOADED, STATUS_UNSUPPORTED,
};
use lre_serve::{mint_trace_id, Client, StatsSnapshot};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// How the router picks a replica for a score request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Policy {
    /// The healthy replica with the fewest requests in flight (ties go to
    /// the lowest index). The default: best latency under uneven load.
    LeastInflight,
    /// Consistent hash of the utterance samples over the ring: the same
    /// content always lands on the same replica while it is healthy, for
    /// replica-side cache affinity.
    Hash,
}

/// Router tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct RouterConfig {
    pub policy: Policy,
    /// Per-client-connection v2 window, enforced at the router exactly
    /// like at a single server.
    pub max_inflight: usize,
    /// Virtual nodes per replica on the hash ring.
    pub vnodes: usize,
    /// Health thread cadence.
    pub health_interval: Duration,
    /// Connect/read timeout for health and control probes.
    pub probe_timeout: Duration,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            policy: Policy::LeastInflight,
            max_inflight: 32,
            vnodes: 64,
            health_interval: Duration::from_millis(200),
            probe_timeout: Duration::from_secs(1),
        }
    }
}

/// The router's telemetry bundle: its own registry (per-backend routed
/// latency, eject/re-admit counters, router sheds) and the flight
/// recorder fed by backend health transitions and fleet rollouts. The
/// stats-v3 and flight protocol tags are answered from it.
pub struct RouterObs {
    pub registry: Arc<Registry>,
    pub flight: Arc<FlightRecorder>,
    /// `router.shed` — requests refused at the router itself.
    pub shed: Arc<Counter>,
}

impl RouterObs {
    pub fn new(flight_capacity: usize) -> Arc<RouterObs> {
        let registry = Arc::new(Registry::new());
        let shed = registry.counter("router.shed");
        Arc::new(RouterObs {
            registry,
            flight: Arc::new(FlightRecorder::new(flight_capacity)),
            shed,
        })
    }
}

struct Shared {
    backends: Vec<Arc<Backend>>,
    ring: HashRing,
    policy: Policy,
    max_inflight: usize,
    /// Score requests in flight through the router, across all clients
    /// (an `Arc` because every pending entry holds a decrement duty).
    global_inflight: Arc<AtomicUsize>,
    /// Requests refused at the router (no healthy replica).
    shed: AtomicU64,
    fleet: Option<Arc<FleetAdapter>>,
    obs: Option<Arc<RouterObs>>,
    probe_timeout: Duration,
    stopping: AtomicBool,
    addr: SocketAddr,
}

/// Least-inflight selection: the healthy entry with the fewest requests
/// in flight, lowest index winning ties. Pure so the policy is testable
/// without a live fleet.
pub fn least_inflight(inflights: &[usize], healthy: &[bool]) -> Option<usize> {
    (0..inflights.len())
        .filter(|&i| healthy.get(i).copied().unwrap_or(false))
        .min_by_key(|&i| (inflights[i], i))
}

impl Shared {
    /// Count one refusal at the router (stats aggregate + telemetry).
    fn note_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
        if let Some(o) = &self.obs {
            o.shed.incr();
        }
    }

    fn pick(&self, key_bytes: &[u8]) -> Option<Arc<Backend>> {
        let healthy: Vec<bool> = self.backends.iter().map(|b| b.is_healthy()).collect();
        let index = match self.policy {
            Policy::LeastInflight => {
                let inflights: Vec<usize> = self.backends.iter().map(|b| b.inflight()).collect();
                least_inflight(&inflights, &healthy)
            }
            Policy::Hash => self.ring.lookup(hash_bytes(key_bytes), &healthy),
        };
        index.map(|i| Arc::clone(&self.backends[i]))
    }
}

/// A running router.
pub struct Router {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<std::thread::JoinHandle<()>>,
    health: Option<std::thread::JoinHandle<()>>,
}

impl Router {
    /// Start routing over `backends` (one per replica address). Each
    /// backend gets one synchronous admission attempt so a fleet that is
    /// already up is routable before the first request; replicas that
    /// are still starting are admitted by the health thread.
    pub fn start(
        listener: TcpListener,
        backends: Vec<Arc<Backend>>,
        cfg: RouterConfig,
        fleet: Option<Arc<FleetAdapter>>,
    ) -> io::Result<Router> {
        Router::start_observed(listener, backends, cfg, fleet, None)
    }

    /// [`Router::start`] with telemetry: each backend gets a
    /// `router.backend.{addr}.latency_us` histogram plus the shared
    /// eject/re-admit counters, and the stats-v3 / flight tags are
    /// answered from `obs`.
    pub fn start_observed(
        listener: TcpListener,
        backends: Vec<Arc<Backend>>,
        cfg: RouterConfig,
        fleet: Option<Arc<FleetAdapter>>,
        obs: Option<Arc<RouterObs>>,
    ) -> io::Result<Router> {
        let addr = listener.local_addr()?;
        if let Some(o) = &obs {
            for b in &backends {
                b.set_telemetry(BackendTelemetry {
                    latency_us: o
                        .registry
                        .histogram(&format!("router.backend.{}.latency_us", b.addr)),
                    ejected: o.registry.counter("router.backend.ejected"),
                    readmitted: o.registry.counter("router.backend.readmitted"),
                    flight: Arc::clone(&o.flight),
                });
            }
        }
        for b in &backends {
            let _ = b.connect();
        }
        let shared = Arc::new(Shared {
            ring: HashRing::new(backends.len(), cfg.vnodes),
            backends,
            policy: cfg.policy,
            max_inflight: cfg.max_inflight.max(1),
            global_inflight: Arc::new(AtomicUsize::new(0)),
            shed: AtomicU64::new(0),
            fleet,
            obs,
            probe_timeout: cfg.probe_timeout,
            stopping: AtomicBool::new(false),
            addr,
        });
        let health = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                while !shared.stopping.load(Ordering::SeqCst) {
                    for b in &shared.backends {
                        b.health_step(shared.probe_timeout);
                    }
                    std::thread::sleep(cfg.health_interval);
                }
            })
        };
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                for conn in listener.incoming() {
                    if shared.stopping.load(Ordering::SeqCst) {
                        break;
                    }
                    let stream = match conn {
                        Ok(s) => s,
                        Err(_) => continue,
                    };
                    let shared = Arc::clone(&shared);
                    std::thread::spawn(move || handle_connection(stream, shared));
                }
            })
        };
        Ok(Router {
            addr,
            shared,
            accept: Some(accept),
            health: Some(health),
        })
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn backends(&self) -> &[Arc<Backend>] {
        &self.shared.backends
    }

    /// Stop from the hosting process (equivalent to a client shutdown,
    /// without the fleet propagation).
    pub fn stop(&self) {
        trigger_stop(&self.shared.stopping, self.addr);
    }

    /// Block until shutdown is requested, then join the service threads.
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.health.take() {
            let _ = h.join();
        }
    }
}

fn trigger_stop(stopping: &AtomicBool, addr: SocketAddr) {
    if !stopping.swap(true, Ordering::SeqCst) {
        let _ = TcpStream::connect(addr);
    }
}

/// Route one v2-shaped score frame. `None` means the reply arrives
/// through the pending machinery; `Some(frame)` is an immediate
/// (refusal) reply. The caller has already charged
/// `window`/`global_inflight` by one. `body` is the offset where the
/// raw sample region starts — 13 for v2 (tag + id + deadline), 21 for
/// traced (tag + id + deadline + trace id) — so hash affinity follows
/// content, never ids.
fn route_score(
    shared: &Shared,
    mut frame: Vec<u8>,
    client_id: u64,
    reply_tx: &mpsc::Sender<Vec<u8>>,
    window: &Arc<AtomicUsize>,
    body: usize,
) -> Option<Vec<u8>> {
    let mut attempts_left = 2;
    loop {
        let Some(backend) = shared.pick(&frame[body.min(frame.len())..]) else {
            shared.note_shed();
            window.fetch_sub(1, Ordering::AcqRel);
            shared.global_inflight.fetch_sub(1, Ordering::AcqRel);
            return Some(encode_status_v2(client_id, STATUS_OVERLOADED));
        };
        let pending = Pending {
            client_id,
            reply_tx: reply_tx.clone(),
            window: Arc::clone(window),
            global: Arc::clone(&shared.global_inflight),
            sent: Instant::now(),
        };
        attempts_left -= 1;
        let send = if attempts_left > 0 {
            frame.clone()
        } else {
            std::mem::take(&mut frame)
        };
        match backend.forward(send, pending) {
            Ok(()) => return None,
            Err((_torn_write, p)) if attempts_left > 0 => {
                // The replica never saw a whole frame; safe to re-route.
                drop(p); // counters stay charged for the retry
                continue;
            }
            Err((_torn_write, p)) => {
                p.window.fetch_sub(1, Ordering::AcqRel);
                p.global.fetch_sub(1, Ordering::AcqRel);
                return Some(encode_status_v2(client_id, STATUS_INTERNAL));
            }
        }
    }
}

/// Convert a v2 reply frame to the v1 shape (strip the id, and the
/// generation from the score body).
fn v2_reply_to_v1(frame: &[u8]) -> Vec<u8> {
    match decode_score_reply_v2(frame) {
        Ok((_id, Ok(scored))) => encode_score_ok(&scored),
        Ok((_id, Err(status))) => encode_status(status),
        Err(_) => encode_status(STATUS_INTERNAL),
    }
}

/// Live fleet stats: per-replica extended counters summed into one
/// aggregate, plus the per-replica breakdown.
fn fleet_stats(shared: &Shared) -> FleetStats {
    let mut agg = StatsSnapshot::default();
    let mut replicas = Vec::with_capacity(shared.backends.len());
    let mut min_generation = u64::MAX;
    let mut any = false;
    for b in &shared.backends {
        let stats = if b.is_healthy() {
            Client::connect(&b.addr).and_then(|mut c| c.stats_v2()).ok()
        } else {
            None
        };
        match stats {
            Some(s) => {
                any = true;
                agg.requests += s.requests;
                agg.completed += s.completed;
                agg.rejected += s.rejected;
                agg.batches += s.batches;
                agg.batched_utts += s.batched_utts;
                agg.max_queue_depth = agg.max_queue_depth.max(s.max_queue_depth);
                agg.latency_us_sum += s.latency_us_sum;
                agg.latency_us_max = agg.latency_us_max.max(s.latency_us_max);
                agg.uptime_us = agg.uptime_us.max(s.uptime_us);
                agg.expired += s.expired;
                agg.failed += s.failed;
                agg.shed_global += s.shed_global;
                agg.swaps += s.swaps;
                agg.rollbacks += s.rollbacks;
                agg.fast_math = agg.fast_math.max(s.fast_math);
                agg.unknown += s.unknown;
                min_generation = min_generation.min(s.generation);
                replicas.push(ReplicaStat {
                    addr: b.addr.clone(),
                    healthy: true,
                    generation: s.generation,
                    inflight: b.inflight() as u64,
                    completed: s.completed,
                    shed: s.rejected + s.expired + s.shed_global,
                });
            }
            None => replicas.push(ReplicaStat {
                addr: b.addr.clone(),
                healthy: false,
                generation: b.last_ping().map(|p| p.generation).unwrap_or(0),
                inflight: b.inflight() as u64,
                completed: b.completed.load(Ordering::Relaxed),
                shed: 0,
            }),
        }
    }
    // Refusals at the router itself never reached a replica; account for
    // them so the aggregate is what clients actually experienced.
    let shed = shared.shed.load(Ordering::Relaxed);
    agg.requests += shed;
    agg.rejected += shed;
    // The aggregate generation is the fleet's committed floor: the lowest
    // generation any healthy replica is serving.
    agg.generation = if any { min_generation } else { 0 };
    FleetStats {
        aggregate: agg,
        replicas,
    }
}

/// The router's own ping: cached per-replica probes plus live pending
/// counts — cheap, no replica round trips.
fn router_ping(shared: &Shared) -> PingReport {
    let mut generation = u64::MAX;
    let mut inflight = 0u64;
    let mut shed = shared.shed.load(Ordering::Relaxed);
    let mut completed = 0u64;
    for b in &shared.backends {
        inflight += b.inflight() as u64;
        completed += b.completed.load(Ordering::Relaxed);
        if b.is_healthy() {
            if let Some(p) = b.last_ping() {
                generation = generation.min(p.generation);
                shed += p.shed;
            }
        }
    }
    PingReport {
        generation: if generation == u64::MAX {
            0
        } else {
            generation
        },
        inflight,
        shed,
        completed,
    }
}

/// Fleet rollback without an adapter: plain fan-out.
fn rollback_fanout(shared: &Shared) -> (bool, u64) {
    let fleet: Vec<Arc<Backend>> = shared
        .backends
        .iter()
        .filter(|b| b.is_healthy())
        .cloned()
        .collect();
    crate::fleet::rollback_backends(&fleet)
}

fn handle_connection(mut stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let mut write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let (reply_tx, reply_rx) = mpsc::channel::<Vec<u8>>();
    let writer = std::thread::spawn(move || {
        while let Ok(frame) = reply_rx.recv() {
            if write_frame(&mut write_half, &frame).is_err() {
                while reply_rx.recv().is_ok() {}
                return;
            }
        }
    });

    let window = Arc::new(AtomicUsize::new(0));

    while let Ok(Some(mut frame)) = read_frame(&mut stream) {
        let reply = match decode_request(&frame) {
            Ok(Request::ScoreV2 { id, .. }) => {
                if window.load(Ordering::Acquire) >= shared.max_inflight {
                    shared.note_shed();
                    encode_status_v2(id, STATUS_OVERLOADED)
                } else {
                    window.fetch_add(1, Ordering::AcqRel);
                    shared.global_inflight.fetch_add(1, Ordering::AcqRel);
                    match route_score(&shared, frame, id, &reply_tx, &window, 13) {
                        Some(immediate) => immediate,
                        None => continue, // reply via the backend reader
                    }
                }
            }
            Ok(Request::ScoreTraced { id, trace_id, .. }) => {
                if window.load(Ordering::Acquire) >= shared.max_inflight {
                    shared.note_shed();
                    encode_status_v2(id, STATUS_OVERLOADED)
                } else {
                    // A zero trace id asks the serving tier to mint one;
                    // the router is the admission point here, so it does
                    // — patched in place, the body forwarded untouched.
                    if trace_id == 0 {
                        frame[13..21].copy_from_slice(&mint_trace_id().to_le_bytes());
                    }
                    window.fetch_add(1, Ordering::AcqRel);
                    shared.global_inflight.fetch_add(1, Ordering::AcqRel);
                    match route_score(&shared, frame, id, &reply_tx, &window, 21) {
                        Some(immediate) => immediate,
                        None => continue, // reply via the backend reader
                    }
                }
            }
            Ok(Request::Score { .. }) => {
                // Translate onto the pipelined backend lane and block for
                // the one reply, preserving v1's in-order semantics.
                let mut v2 = Vec::with_capacity(frame.len() + 12);
                v2.push(REQ_SCORE_V2);
                v2.extend_from_slice(&0u64.to_le_bytes());
                v2.extend_from_slice(&0u32.to_le_bytes());
                v2.extend_from_slice(&frame[1..]);
                let (tx, rx) = mpsc::channel::<Vec<u8>>();
                let throwaway = Arc::new(AtomicUsize::new(1));
                shared.global_inflight.fetch_add(1, Ordering::AcqRel);
                match route_score(&shared, v2, 0, &tx, &throwaway, 13) {
                    Some(immediate) => v2_reply_to_v1(&immediate),
                    None => match rx.recv() {
                        Ok(reply) => v2_reply_to_v1(&reply),
                        Err(_) => encode_status(STATUS_INTERNAL),
                    },
                }
            }
            Ok(Request::Stats) => encode_stats_ok(&fleet_stats(&shared).aggregate),
            Ok(Request::StatsV2) => encode_stats_ok_v2(&fleet_stats(&shared).aggregate),
            Ok(Request::StatsV3) => match &shared.obs {
                Some(o) => encode_metrics_ok(&o.registry.snapshot()),
                None => encode_status(STATUS_UNSUPPORTED),
            },
            Ok(Request::Flight { drain }) => match &shared.obs {
                Some(o) => {
                    let events = if drain {
                        o.flight.drain()
                    } else {
                        o.flight.peek()
                    };
                    encode_flight_ok(&events)
                }
                None => encode_status(STATUS_UNSUPPORTED),
            },
            Ok(Request::FleetStats) => encode_fleet_stats_ok(&fleet_stats(&shared)),
            Ok(Request::Ping) => encode_ping_ok(&router_ping(&shared)),
            Ok(Request::Adapt) => match &shared.fleet {
                Some(f) => encode_adapt_ok(&f.cycle()),
                None => encode_status(STATUS_UNSUPPORTED),
            },
            Ok(Request::Rollback) => {
                let (rolled, generation) = match &shared.fleet {
                    Some(f) => f.rollback(),
                    None => rollback_fanout(&shared),
                };
                encode_rollback_ok(rolled, generation)
            }
            // WAL status is observability: proxy it to the first healthy
            // backend that has a WAL (typically the adapt coordinator)
            // and forward its reply verbatim.
            Ok(Request::WalStatus) => {
                let mut reply = encode_status(STATUS_UNSUPPORTED);
                for b in shared.backends.iter().filter(|b| b.is_healthy()) {
                    if let Ok(frame) =
                        probe_round_trip(&b.addr, &Request::WalStatus, shared.probe_timeout)
                    {
                        if matches!(
                            lre_serve::protocol::decode_wal_status_reply(&frame),
                            Ok(Ok(_))
                        ) {
                            reply = frame;
                            break;
                        }
                    }
                }
                reply
            }
            // Replica-level rollout tags terminate at the replicas; the
            // router *is* their coordinator and does not proxy them. Deep
            // rollback joins them: restoring a lineage generation is an
            // action against the durable adapt coordinator, not something
            // to mirror blindly across stateless replicas.
            Ok(Request::DrainVotes { .. })
            | Ok(Request::StageBundle { .. })
            | Ok(Request::CommitStaged)
            | Ok(Request::AbortStaged)
            | Ok(Request::RollbackTo { .. }) => encode_status(STATUS_UNSUPPORTED),
            Ok(Request::Shutdown) => {
                // Ack, propagate to the fleet best-effort, stop routing.
                let _ = reply_tx.send(encode_status(STATUS_OK));
                for b in &shared.backends {
                    let _ = probe_round_trip(&b.addr, &Request::Shutdown, shared.probe_timeout);
                }
                trigger_stop(&shared.stopping, shared.addr);
                break;
            }
            Err(_) => {
                let _ = reply_tx.send(encode_status(STATUS_BAD_REQUEST));
                break;
            }
        };
        if reply_tx.send(reply).is_err() {
            break;
        }
    }

    drop(reply_tx);
    let _ = writer.join();
}
