//! Built-in scenarios and the pure command generator.
//!
//! A [`ScenarioSpec`] composes the traffic shapes real deployments see —
//! diurnal load curves, bursts, hostile clients from the fuzz corpus,
//! deadline mixes, channel/SNR drift across ticks, code-switching
//! utterances, and open-set segments in languages the system was never
//! trained on — plus the [`InvariantSpec`] the run is judged against.
//!
//! [`generate`] expands a spec + seed into a [`CommandStream`] using only
//! seeded RNG draws and integer/affine arithmetic (no transcendentals, no
//! clocks), so identical inputs give byte-identical streams. The diurnal
//! curve is a triangle wave and bursts are binomial (4·mean trials at
//! p=¼ ≈ Poisson(mean)) for exactly that reason.

use crate::plan::{CommandStream, SimCommand, UttPlan};
use lre_corpus::DeriveRng;
use rand::RngExt;

/// Indices into [`LanguageId::all`]: the two trailing entries are the
/// out-of-set languages (no target detector exists for them).
const NUM_LANGUAGES: u8 = 25;
const NUM_TARGETS: u8 = 23;

/// What the run must uphold. Every field with `Option`/`bool` off is
/// simply not checked — scenarios assert only what they arrange to test.
#[derive(Clone, Debug, PartialEq)]
pub struct InvariantSpec {
    /// Scraped `rejected / requests` must stay at or below this.
    pub max_shed_rate: Option<f64>,
    /// Client-observed p99 score latency (ms) must stay at or below this.
    pub p99_ms: Option<f64>,
    /// No reply frame may ever fail to decode.
    pub zero_torn_replies: bool,
    /// Every failed request must fail with a *typed* protocol status
    /// (overloaded / shutting down / deadline / internal) — never a raw
    /// connection error. The invariant under replica kills.
    pub typed_failures_only: bool,
    /// Every adaptation cycle must come back `rejected_guard` and the
    /// serving generation must still be 0 at the end.
    pub expect_guard_reject: bool,
    /// Flight-recorder event names that must appear during the run.
    pub expect_flight: Vec<String>,
    /// The run must complete at least this many scores.
    pub min_completed: u64,
    /// The scraped `unknown` counter must be positive (open-set traffic
    /// against a thresholded server must actually be flagged).
    pub require_unknown: bool,
    /// No hostile connection may violate the malformed-input contract.
    pub hostile_contract: bool,
    /// The run crashed and restarted the adapting server: the WAL replay
    /// after the restart must account for every vote buffered before the
    /// SIGKILL (zero lost votes, zero torn records), and the generation
    /// lineage chain must still validate at the end of the run.
    pub expect_wal_recovery: bool,
}

impl Default for InvariantSpec {
    fn default() -> InvariantSpec {
        InvariantSpec {
            max_shed_rate: None,
            p99_ms: None,
            zero_torn_replies: true,
            typed_failures_only: true,
            expect_guard_reject: false,
            expect_flight: Vec::new(),
            min_completed: 1,
            require_unknown: false,
            hostile_contract: true,
            expect_wal_recovery: false,
        }
    }
}

/// SNR drift across the run: linear from `start_snr_db` at tick 0 to
/// `end_snr_db` at the last tick.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DriftPlan {
    pub start_snr_db: f32,
    pub end_snr_db: f32,
}

/// One composable scenario.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioSpec {
    pub name: String,
    /// One-line description for `--list`.
    pub about: String,
    pub ticks: u32,
    /// Mean scores per tick before the diurnal factor.
    pub base_load: u32,
    /// Diurnal swing as a fraction of base load (triangle wave over
    /// `diurnal_period` ticks). 0 disables.
    pub diurnal_amplitude: f64,
    pub diurnal_period: u32,
    /// Per-tick probability of a burst.
    pub burst_prob: f64,
    /// Mean extra scores in a burst (binomial approximation of Poisson).
    pub burst_mean: u32,
    /// Hostile fuzz-corpus connections per tick.
    pub hostile_per_tick: u32,
    /// Fraction of requests carrying the short deadline.
    pub short_deadline_frac: f64,
    pub short_deadline_ms: u32,
    pub long_deadline_ms: u32,
    /// Utterance length in 10 ms frames.
    pub utt_frames: u32,
    /// SNR drift; `None` holds 15 dB with ±3 dB jitter.
    pub drift: Option<DriftPlan>,
    /// Probability an utterance code-switches halfway.
    pub code_switch_prob: f64,
    /// Probability an utterance is in an out-of-set language.
    pub open_set_prob: f64,
    /// `(tick, replica_index)`: kill that replica at that tick.
    pub kill_replica_at: Option<(u32, u32)>,
    /// Trigger one adaptation cycle at this tick.
    pub adapt_at: Option<u32>,
    /// SIGKILL the driver-spawned adapting server at the *end* of this
    /// tick (after its traffic has settled).
    pub crash_adaptd_at: Option<u32>,
    /// Respawn the adapting server at the *start* of this tick, before
    /// any of its traffic is submitted.
    pub restart_adaptd_at: Option<u32>,
    pub invariants: InvariantSpec,
}

/// Triangle wave in [-1, 1] with the given period — the deterministic
/// stand-in for a diurnal sine.
fn triangle(tick: u32, period: u32) -> f64 {
    let period = period.max(2);
    let phase = (tick % period) as f64 / period as f64; // [0, 1)
    1.0 - 4.0 * (phase - 0.5).abs()
}

/// Binomial(4·mean, ¼) — mean `mean`, shaped like a Poisson burst, built
/// from bounded integer draws only.
fn burst_size<R: RngExt>(rng: &mut R, mean: u32) -> u32 {
    (0..4 * mean)
        .filter(|_| rng.random_range(0u32..4) == 0)
        .count() as u32
}

/// Expand a scenario + seed into its command stream. Pure: same inputs,
/// byte-identical output, regardless of what any server does.
pub fn generate(spec: &ScenarioSpec, seed: u64) -> CommandStream {
    let root = DeriveRng::new(seed);
    let mut commands = Vec::new();
    for tick in 0..spec.ticks {
        let mut rng = root.derive(u64::from(tick)).rng();
        // Restart comes first within its tick so the tick's traffic lands
        // on the revived server, and crash comes last so the tick's
        // traffic settles before the SIGKILL — no scores are ever planned
        // into the window where the server is down.
        if spec.restart_adaptd_at == Some(tick) {
            commands.push(SimCommand::RestartAdaptd { tick });
        }
        let factor = 1.0 + spec.diurnal_amplitude * triangle(tick, spec.diurnal_period);
        let mut load = (spec.base_load as f64 * factor).round() as u32;
        if spec.burst_prob > 0.0 && rng.random::<f64>() < spec.burst_prob {
            load += burst_size(&mut rng, spec.burst_mean);
        }
        for _ in 0..load {
            let open_set = spec.open_set_prob > 0.0 && rng.random::<f64>() < spec.open_set_prob;
            let language = if open_set {
                NUM_TARGETS + rng.random_range(0u32..u32::from(NUM_LANGUAGES - NUM_TARGETS)) as u8
            } else {
                rng.random_range(0u32..u32::from(NUM_TARGETS)) as u8
            };
            let second_language = if !open_set
                && spec.code_switch_prob > 0.0
                && rng.random::<f64>() < spec.code_switch_prob
            {
                // A different target language for the second half.
                let other = rng.random_range(0u32..u32::from(NUM_TARGETS - 1)) as u8;
                Some(if other >= language { other + 1 } else { other })
            } else {
                None
            };
            let snr_db = match spec.drift {
                Some(d) => {
                    let t = if spec.ticks > 1 {
                        tick as f32 / (spec.ticks - 1) as f32
                    } else {
                        0.0
                    };
                    d.start_snr_db + (d.end_snr_db - d.start_snr_db) * t
                }
                None => 12.0 + rng.random_range(0u32..7) as f32, // 12..18 dB
            };
            let deadline_ms = if rng.random::<f64>() < spec.short_deadline_frac {
                spec.short_deadline_ms
            } else {
                spec.long_deadline_ms
            };
            commands.push(SimCommand::Score {
                tick,
                plan: UttPlan {
                    language,
                    second_language,
                    num_frames: spec.utt_frames,
                    seed: rng.random::<u64>(),
                    speaker_seed: rng.random::<u64>(),
                    voa: rng.random::<bool>(),
                    snr_db,
                    open_set,
                },
                deadline_ms,
            });
        }
        for _ in 0..spec.hostile_per_tick {
            commands.push(SimCommand::Hostile {
                tick,
                case_index: rng.random::<u32>(),
            });
        }
        if let Some((kill_tick, replica)) = spec.kill_replica_at {
            if kill_tick == tick {
                commands.push(SimCommand::KillReplica { tick, replica });
            }
        }
        if spec.adapt_at == Some(tick) {
            commands.push(SimCommand::Adapt { tick });
        }
        if spec.crash_adaptd_at == Some(tick) {
            commands.push(SimCommand::CrashAdaptd { tick });
        }
    }
    CommandStream {
        scenario: spec.name.clone(),
        seed,
        ticks: spec.ticks,
        commands,
    }
}

/// Bursty diurnal load with hostile clients and a mid-run replica kill —
/// the "messy Tuesday plus a hardware failure" drill. Run it against a
/// router fronting ≥ 2 replicas.
pub fn burst_kill() -> ScenarioSpec {
    ScenarioSpec {
        name: "burst-kill".into(),
        about: "diurnal + bursts + hostile clients, replica killed mid-run".into(),
        ticks: 8,
        base_load: 6,
        diurnal_amplitude: 0.5,
        diurnal_period: 8,
        burst_prob: 0.4,
        burst_mean: 8,
        hostile_per_tick: 1,
        short_deadline_frac: 0.3,
        short_deadline_ms: 250,
        long_deadline_ms: 5_000,
        utt_frames: 75,
        drift: None,
        code_switch_prob: 0.15,
        open_set_prob: 0.0,
        kill_replica_at: Some((4, 1)),
        adapt_at: None,
        crash_adaptd_at: None,
        restart_adaptd_at: None,
        invariants: InvariantSpec {
            max_shed_rate: Some(0.5),
            p99_ms: Some(5_000.0),
            expect_flight: vec!["eject".into()],
            min_completed: 20,
            ..InvariantSpec::default()
        },
    }
}

/// Channel drift into heavy noise plus open-set traffic, ending in an
/// adaptation cycle that the guard must reject. Run it against an
/// adaptation-capable server started with an impossible guard (negative
/// regression slack) and an open-set threshold.
pub fn drift_guard() -> ScenarioSpec {
    ScenarioSpec {
        name: "drift-guard".into(),
        about: "SNR drifts 20→0 dB with open-set traffic; guard must reject the adapt".into(),
        ticks: 6,
        base_load: 5,
        diurnal_amplitude: 0.0,
        diurnal_period: 6,
        burst_prob: 0.0,
        burst_mean: 0,
        hostile_per_tick: 1,
        short_deadline_frac: 0.0,
        short_deadline_ms: 250,
        long_deadline_ms: 10_000,
        utt_frames: 75,
        drift: Some(DriftPlan {
            start_snr_db: 20.0,
            end_snr_db: 0.0,
        }),
        code_switch_prob: 0.1,
        open_set_prob: 0.3,
        kill_replica_at: None,
        adapt_at: Some(5),
        crash_adaptd_at: None,
        restart_adaptd_at: None,
        invariants: InvariantSpec {
            p99_ms: Some(10_000.0),
            expect_guard_reject: true,
            expect_flight: vec!["guard_reject".into()],
            min_completed: 15,
            require_unknown: true,
            ..InvariantSpec::default()
        },
    }
}

/// A deliberately failing scenario: it demands an `eject` flight event
/// but never kills anything, so the invariant fails — deterministically,
/// on the original run and on every `--replay` of it. This is the pinned
/// proof that a violated invariant reproduces from the exported stream.
pub fn phantom_eject() -> ScenarioSpec {
    ScenarioSpec {
        name: "phantom-eject".into(),
        about: "deliberate failure: expects an eject that never happens".into(),
        ticks: 2,
        base_load: 3,
        diurnal_amplitude: 0.0,
        diurnal_period: 2,
        burst_prob: 0.0,
        burst_mean: 0,
        hostile_per_tick: 0,
        short_deadline_frac: 0.0,
        short_deadline_ms: 250,
        long_deadline_ms: 10_000,
        utt_frames: 75,
        drift: None,
        code_switch_prob: 0.0,
        open_set_prob: 0.0,
        kill_replica_at: None,
        adapt_at: None,
        crash_adaptd_at: None,
        restart_adaptd_at: None,
        invariants: InvariantSpec {
            expect_flight: vec!["eject".into()],
            min_completed: 1,
            ..InvariantSpec::default()
        },
    }
}

/// The durability drill: steady traffic into an adapting server, SIGKILL
/// it mid-window (no shutdown handshake, no flush), restart it against
/// the same `--wal-dir`, keep the traffic coming. Judged on zero lost
/// votes across the crash and an intact generation-lineage chain. Run it
/// with `--adaptd-cmd` so the driver owns the process it is killing, and
/// start the server with `--wal-fsync-ms 0` so "zero lost" is exact.
pub fn crash_recover() -> ScenarioSpec {
    ScenarioSpec {
        name: "crash-recover".into(),
        about: "kill -9 the adapting server mid-window; WAL replay must lose nothing".into(),
        ticks: 7,
        base_load: 5,
        diurnal_amplitude: 0.0,
        diurnal_period: 7,
        burst_prob: 0.0,
        burst_mean: 0,
        hostile_per_tick: 1,
        short_deadline_frac: 0.0,
        short_deadline_ms: 250,
        long_deadline_ms: 10_000,
        utt_frames: 75,
        drift: None,
        code_switch_prob: 0.1,
        open_set_prob: 0.0,
        kill_replica_at: None,
        adapt_at: None,
        crash_adaptd_at: Some(3),
        restart_adaptd_at: Some(4),
        invariants: InvariantSpec {
            p99_ms: Some(10_000.0),
            expect_flight: vec!["wal_recover".into()],
            min_completed: 15,
            expect_wal_recovery: true,
            ..InvariantSpec::default()
        },
    }
}

/// All built-in scenarios.
pub fn builtin_scenarios() -> Vec<ScenarioSpec> {
    vec![
        burst_kill(),
        drift_guard(),
        phantom_eject(),
        crash_recover(),
    ]
}

/// Look a scenario up by its stream-recorded name.
pub fn by_name(name: &str) -> Option<ScenarioSpec> {
    builtin_scenarios().into_iter().find(|s| s.name == name)
}

impl ScenarioSpec {
    /// Parse a scenario from the on-disk text format: one `key = value`
    /// per line, `#` starts a comment, unset keys keep quiet defaults
    /// (no bursts, no hostiles, no kills, default invariants). Every
    /// built-in field is reachable, so `--scenario-file` can express
    /// anything a built-in can — including the crash-recovery drill —
    /// without recompiling. Unknown keys and malformed values are hard
    /// errors: a typo must not silently weaken what a run asserts.
    pub fn parse(text: &str) -> Result<ScenarioSpec, String> {
        let mut spec = ScenarioSpec {
            name: "custom".into(),
            about: "scenario loaded from a file".into(),
            ticks: 4,
            base_load: 4,
            diurnal_amplitude: 0.0,
            diurnal_period: 4,
            burst_prob: 0.0,
            burst_mean: 0,
            hostile_per_tick: 0,
            short_deadline_frac: 0.0,
            short_deadline_ms: 250,
            long_deadline_ms: 10_000,
            utt_frames: 75,
            drift: None,
            code_switch_prob: 0.0,
            open_set_prob: 0.0,
            kill_replica_at: None,
            adapt_at: None,
            crash_adaptd_at: None,
            restart_adaptd_at: None,
            invariants: InvariantSpec::default(),
        };
        let mut drift_start: Option<f32> = None;
        let mut drift_end: Option<f32> = None;
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let lineno = idx + 1;
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {lineno}: expected `key = value`"))?;
            let (key, value) = (key.trim(), value.trim());
            let bad = |want: &str| format!("line {lineno}: bad value for {key} (want {want})");
            macro_rules! num {
                ($want:literal) => {
                    value.parse().map_err(|_| bad($want))?
                };
            }
            let flag = || match value {
                "true" => Ok(true),
                "false" => Ok(false),
                _ => Err(bad("true|false")),
            };
            match key {
                "name" => spec.name = value.to_string(),
                "about" => spec.about = value.to_string(),
                "ticks" => spec.ticks = num!("u32"),
                "base_load" => spec.base_load = num!("u32"),
                "diurnal_amplitude" => spec.diurnal_amplitude = num!("f64"),
                "diurnal_period" => spec.diurnal_period = num!("u32"),
                "burst_prob" => spec.burst_prob = num!("f64"),
                "burst_mean" => spec.burst_mean = num!("u32"),
                "hostile_per_tick" => spec.hostile_per_tick = num!("u32"),
                "short_deadline_frac" => spec.short_deadline_frac = num!("f64"),
                "short_deadline_ms" => spec.short_deadline_ms = num!("u32"),
                "long_deadline_ms" => spec.long_deadline_ms = num!("u32"),
                "utt_frames" => spec.utt_frames = num!("u32"),
                "drift_start_snr_db" => drift_start = Some(num!("f32")),
                "drift_end_snr_db" => drift_end = Some(num!("f32")),
                "code_switch_prob" => spec.code_switch_prob = num!("f64"),
                "open_set_prob" => spec.open_set_prob = num!("f64"),
                "kill_replica_at" => {
                    let (t, r) = value.split_once(':').ok_or_else(|| bad("TICK:REPLICA"))?;
                    spec.kill_replica_at = Some((
                        t.trim().parse().map_err(|_| bad("TICK:REPLICA"))?,
                        r.trim().parse().map_err(|_| bad("TICK:REPLICA"))?,
                    ));
                }
                "adapt_at" => spec.adapt_at = Some(num!("u32")),
                "crash_adaptd_at" => spec.crash_adaptd_at = Some(num!("u32")),
                "restart_adaptd_at" => spec.restart_adaptd_at = Some(num!("u32")),
                "max_shed_rate" => spec.invariants.max_shed_rate = Some(num!("f64")),
                "p99_ms" => spec.invariants.p99_ms = Some(num!("f64")),
                "zero_torn_replies" => spec.invariants.zero_torn_replies = flag()?,
                "typed_failures_only" => spec.invariants.typed_failures_only = flag()?,
                "expect_guard_reject" => spec.invariants.expect_guard_reject = flag()?,
                "expect_flight" => {
                    spec.invariants.expect_flight = value
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty())
                        .collect();
                }
                "min_completed" => spec.invariants.min_completed = num!("u64"),
                "require_unknown" => spec.invariants.require_unknown = flag()?,
                "hostile_contract" => spec.invariants.hostile_contract = flag()?,
                "expect_wal_recovery" => spec.invariants.expect_wal_recovery = flag()?,
                _ => return Err(format!("line {lineno}: unknown key {key:?}")),
            }
        }
        if spec.ticks == 0 {
            return Err("ticks must be positive".into());
        }
        spec.drift = match (drift_start, drift_end) {
            (Some(start_snr_db), Some(end_snr_db)) => Some(DriftPlan {
                start_snr_db,
                end_snr_db,
            }),
            (None, None) => None,
            _ => {
                return Err("drift_start_snr_db and drift_end_snr_db must be given together".into())
            }
        };
        if let (Some(crash), Some(restart)) = (spec.crash_adaptd_at, spec.restart_adaptd_at) {
            if restart <= crash {
                return Err("restart_adaptd_at must come after crash_adaptd_at".into());
            }
        }
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_bytes_different_seed_different_bytes() {
        let spec = burst_kill();
        let a = generate(&spec, 42).encode();
        let b = generate(&spec, 42).encode();
        assert_eq!(a, b, "generation must be a pure function of the seed");
        let c = generate(&spec, 43).encode();
        assert_ne!(a, c, "different seeds must produce different traffic");
        // The quoted CRC must identify the plan, not the container format
        // (the CRC of `data ‖ crc(data)` is the same constant for every
        // sealed artifact — quoting that would prove nothing).
        assert_ne!(
            generate(&spec, 42).crc32(),
            generate(&spec, 43).crc32(),
            "stream CRC must depend on the plan"
        );
        assert_ne!(
            generate(&spec, 42).crc32(),
            generate(&drift_guard(), 42).crc32(),
            "stream CRC must depend on the scenario"
        );
    }

    #[test]
    fn streams_roundtrip_through_the_artifact_container() {
        for spec in builtin_scenarios() {
            let stream = generate(&spec, 7);
            let back = CommandStream::decode(&stream.encode()).expect("decodes");
            assert_eq!(back, stream, "scenario {}", spec.name);
        }
    }

    #[test]
    fn corrupted_streams_are_typed_errors() {
        let mut bytes = generate(&burst_kill(), 9).encode();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(CommandStream::decode(&bytes).is_err(), "bit flip accepted");
        let truncated = &bytes[..bytes.len() - 8];
        assert!(
            CommandStream::decode(truncated).is_err(),
            "truncation accepted"
        );
    }

    #[test]
    fn crash_recover_plans_the_outage_window_empty() {
        let stream = generate(&crash_recover(), 11);
        let crash_pos = stream
            .commands
            .iter()
            .position(|c| matches!(c, SimCommand::CrashAdaptd { tick: 3 }))
            .expect("crash command planned");
        let restart_pos = stream
            .commands
            .iter()
            .position(|c| matches!(c, SimCommand::RestartAdaptd { tick: 4 }))
            .expect("restart command planned");
        assert!(crash_pos < restart_pos);
        // Nothing is planned between the SIGKILL and the respawn: the
        // crash is the last command of its tick, the restart the first of
        // its — otherwise planned traffic would target a dead server.
        assert_eq!(
            restart_pos,
            crash_pos + 1,
            "commands were planned into the outage window"
        );
        assert!(crash_recover().invariants.expect_wal_recovery);
    }

    #[test]
    fn scenario_files_parse_and_generate() {
        let text = "\
# durability drill, trimmed
name = file-crash
ticks = 5
base_load = 3
hostile_per_tick = 1
code_switch_prob = 0.1
crash_adaptd_at = 2
restart_adaptd_at = 3
expect_flight = wal_recover, eject
expect_wal_recovery = true
min_completed = 8
";
        let spec = ScenarioSpec::parse(text).expect("parses");
        assert_eq!(spec.name, "file-crash");
        assert_eq!(spec.crash_adaptd_at, Some(2));
        assert_eq!(spec.restart_adaptd_at, Some(3));
        assert_eq!(spec.invariants.expect_flight, vec!["wal_recover", "eject"]);
        assert!(spec.invariants.expect_wal_recovery);
        assert_eq!(spec.invariants.min_completed, 8);
        // A file spec feeds the same pure generator as a built-in.
        let a = generate(&spec, 3).encode();
        let b = generate(&spec, 3).encode();
        assert_eq!(a, b);
        let stream = CommandStream::decode(&a).expect("roundtrips");
        assert_eq!(stream.scenario, "file-crash");
        assert!(stream
            .commands
            .iter()
            .any(|c| matches!(c, SimCommand::CrashAdaptd { tick: 2 })));
    }

    #[test]
    fn scenario_file_typos_are_hard_errors() {
        assert!(ScenarioSpec::parse("tcks = 4").is_err(), "unknown key");
        assert!(ScenarioSpec::parse("ticks = many").is_err(), "bad value");
        assert!(ScenarioSpec::parse("ticks").is_err(), "no assignment");
        assert!(ScenarioSpec::parse("ticks = 0").is_err(), "empty run");
        assert!(
            ScenarioSpec::parse("drift_start_snr_db = 20").is_err(),
            "half a drift plan"
        );
        assert!(
            ScenarioSpec::parse("crash_adaptd_at = 3\nrestart_adaptd_at = 2").is_err(),
            "restart before crash"
        );
        assert!(
            ScenarioSpec::parse("expect_wal_recovery = yes").is_err(),
            "non-boolean flag"
        );
    }

    #[test]
    fn language_index_constants_match_the_corpus() {
        let all = lre_corpus::LanguageId::all();
        assert_eq!(all.len(), NUM_LANGUAGES as usize);
        let targets = all.iter().filter(|l| l.target_index().is_some()).count();
        assert_eq!(targets, NUM_TARGETS as usize);
        // The out-of-set languages sit at the tail, where open-set plans
        // draw from.
        for l in &all[NUM_TARGETS as usize..] {
            assert!(l.target_index().is_none(), "{l:?} should be out-of-set");
        }
    }

    #[test]
    fn scenario_shapes_hold() {
        let stream = generate(&burst_kill(), 1);
        assert!(stream.commands.iter().any(|c| matches!(
            c,
            SimCommand::KillReplica {
                tick: 4,
                replica: 1
            }
        )));
        let hostiles = stream
            .commands
            .iter()
            .filter(|c| matches!(c, SimCommand::Hostile { .. }))
            .count();
        assert_eq!(hostiles, 8, "one hostile per tick");

        let drift = generate(&drift_guard(), 1);
        assert!(drift
            .commands
            .iter()
            .any(|c| matches!(c, SimCommand::Adapt { tick: 5 })));
        // SNR drifts monotonically down across ticks.
        let mut last_snr = f32::INFINITY;
        for tick in 0..drift.ticks {
            let snr = drift.commands.iter().find_map(|c| match c {
                SimCommand::Score { tick: t, plan, .. } if *t == tick => Some(plan.snr_db),
                _ => None,
            });
            if let Some(snr) = snr {
                assert!(snr <= last_snr, "SNR rose at tick {tick}");
                last_snr = snr;
            }
        }
        // Open-set traffic exists and uses only out-of-set languages.
        let open: Vec<_> = drift
            .commands
            .iter()
            .filter_map(|c| match c {
                SimCommand::Score { plan, .. } if plan.open_set => Some(plan.language),
                _ => None,
            })
            .collect();
        assert!(!open.is_empty(), "drift-guard sent no open-set traffic");
        assert!(open.iter().all(|&l| l >= NUM_TARGETS));
    }
}
