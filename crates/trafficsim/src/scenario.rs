//! Built-in scenarios and the pure command generator.
//!
//! A [`ScenarioSpec`] composes the traffic shapes real deployments see —
//! diurnal load curves, bursts, hostile clients from the fuzz corpus,
//! deadline mixes, channel/SNR drift across ticks, code-switching
//! utterances, and open-set segments in languages the system was never
//! trained on — plus the [`InvariantSpec`] the run is judged against.
//!
//! [`generate`] expands a spec + seed into a [`CommandStream`] using only
//! seeded RNG draws and integer/affine arithmetic (no transcendentals, no
//! clocks), so identical inputs give byte-identical streams. The diurnal
//! curve is a triangle wave and bursts are binomial (4·mean trials at
//! p=¼ ≈ Poisson(mean)) for exactly that reason.

use crate::plan::{CommandStream, SimCommand, UttPlan};
use lre_corpus::DeriveRng;
use rand::RngExt;

/// Indices into [`LanguageId::all`]: the two trailing entries are the
/// out-of-set languages (no target detector exists for them).
const NUM_LANGUAGES: u8 = 25;
const NUM_TARGETS: u8 = 23;

/// What the run must uphold. Every field with `Option`/`bool` off is
/// simply not checked — scenarios assert only what they arrange to test.
#[derive(Clone, Debug, PartialEq)]
pub struct InvariantSpec {
    /// Scraped `rejected / requests` must stay at or below this.
    pub max_shed_rate: Option<f64>,
    /// Client-observed p99 score latency (ms) must stay at or below this.
    pub p99_ms: Option<f64>,
    /// No reply frame may ever fail to decode.
    pub zero_torn_replies: bool,
    /// Every failed request must fail with a *typed* protocol status
    /// (overloaded / shutting down / deadline / internal) — never a raw
    /// connection error. The invariant under replica kills.
    pub typed_failures_only: bool,
    /// Every adaptation cycle must come back `rejected_guard` and the
    /// serving generation must still be 0 at the end.
    pub expect_guard_reject: bool,
    /// Flight-recorder event names that must appear during the run.
    pub expect_flight: Vec<&'static str>,
    /// The run must complete at least this many scores.
    pub min_completed: u64,
    /// The scraped `unknown` counter must be positive (open-set traffic
    /// against a thresholded server must actually be flagged).
    pub require_unknown: bool,
    /// No hostile connection may violate the malformed-input contract.
    pub hostile_contract: bool,
}

impl Default for InvariantSpec {
    fn default() -> InvariantSpec {
        InvariantSpec {
            max_shed_rate: None,
            p99_ms: None,
            zero_torn_replies: true,
            typed_failures_only: true,
            expect_guard_reject: false,
            expect_flight: Vec::new(),
            min_completed: 1,
            require_unknown: false,
            hostile_contract: true,
        }
    }
}

/// SNR drift across the run: linear from `start_snr_db` at tick 0 to
/// `end_snr_db` at the last tick.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DriftPlan {
    pub start_snr_db: f32,
    pub end_snr_db: f32,
}

/// One composable scenario.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioSpec {
    pub name: &'static str,
    /// One-line description for `--list`.
    pub about: &'static str,
    pub ticks: u32,
    /// Mean scores per tick before the diurnal factor.
    pub base_load: u32,
    /// Diurnal swing as a fraction of base load (triangle wave over
    /// `diurnal_period` ticks). 0 disables.
    pub diurnal_amplitude: f64,
    pub diurnal_period: u32,
    /// Per-tick probability of a burst.
    pub burst_prob: f64,
    /// Mean extra scores in a burst (binomial approximation of Poisson).
    pub burst_mean: u32,
    /// Hostile fuzz-corpus connections per tick.
    pub hostile_per_tick: u32,
    /// Fraction of requests carrying the short deadline.
    pub short_deadline_frac: f64,
    pub short_deadline_ms: u32,
    pub long_deadline_ms: u32,
    /// Utterance length in 10 ms frames.
    pub utt_frames: u32,
    /// SNR drift; `None` holds 15 dB with ±3 dB jitter.
    pub drift: Option<DriftPlan>,
    /// Probability an utterance code-switches halfway.
    pub code_switch_prob: f64,
    /// Probability an utterance is in an out-of-set language.
    pub open_set_prob: f64,
    /// `(tick, replica_index)`: kill that replica at that tick.
    pub kill_replica_at: Option<(u32, u32)>,
    /// Trigger one adaptation cycle at this tick.
    pub adapt_at: Option<u32>,
    pub invariants: InvariantSpec,
}

/// Triangle wave in [-1, 1] with the given period — the deterministic
/// stand-in for a diurnal sine.
fn triangle(tick: u32, period: u32) -> f64 {
    let period = period.max(2);
    let phase = (tick % period) as f64 / period as f64; // [0, 1)
    1.0 - 4.0 * (phase - 0.5).abs()
}

/// Binomial(4·mean, ¼) — mean `mean`, shaped like a Poisson burst, built
/// from bounded integer draws only.
fn burst_size<R: RngExt>(rng: &mut R, mean: u32) -> u32 {
    (0..4 * mean)
        .filter(|_| rng.random_range(0u32..4) == 0)
        .count() as u32
}

/// Expand a scenario + seed into its command stream. Pure: same inputs,
/// byte-identical output, regardless of what any server does.
pub fn generate(spec: &ScenarioSpec, seed: u64) -> CommandStream {
    let root = DeriveRng::new(seed);
    let mut commands = Vec::new();
    for tick in 0..spec.ticks {
        let mut rng = root.derive(u64::from(tick)).rng();
        let factor = 1.0 + spec.diurnal_amplitude * triangle(tick, spec.diurnal_period);
        let mut load = (spec.base_load as f64 * factor).round() as u32;
        if spec.burst_prob > 0.0 && rng.random::<f64>() < spec.burst_prob {
            load += burst_size(&mut rng, spec.burst_mean);
        }
        for _ in 0..load {
            let open_set = spec.open_set_prob > 0.0 && rng.random::<f64>() < spec.open_set_prob;
            let language = if open_set {
                NUM_TARGETS + rng.random_range(0u32..u32::from(NUM_LANGUAGES - NUM_TARGETS)) as u8
            } else {
                rng.random_range(0u32..u32::from(NUM_TARGETS)) as u8
            };
            let second_language = if !open_set
                && spec.code_switch_prob > 0.0
                && rng.random::<f64>() < spec.code_switch_prob
            {
                // A different target language for the second half.
                let other = rng.random_range(0u32..u32::from(NUM_TARGETS - 1)) as u8;
                Some(if other >= language { other + 1 } else { other })
            } else {
                None
            };
            let snr_db = match spec.drift {
                Some(d) => {
                    let t = if spec.ticks > 1 {
                        tick as f32 / (spec.ticks - 1) as f32
                    } else {
                        0.0
                    };
                    d.start_snr_db + (d.end_snr_db - d.start_snr_db) * t
                }
                None => 12.0 + rng.random_range(0u32..7) as f32, // 12..18 dB
            };
            let deadline_ms = if rng.random::<f64>() < spec.short_deadline_frac {
                spec.short_deadline_ms
            } else {
                spec.long_deadline_ms
            };
            commands.push(SimCommand::Score {
                tick,
                plan: UttPlan {
                    language,
                    second_language,
                    num_frames: spec.utt_frames,
                    seed: rng.random::<u64>(),
                    speaker_seed: rng.random::<u64>(),
                    voa: rng.random::<bool>(),
                    snr_db,
                    open_set,
                },
                deadline_ms,
            });
        }
        for _ in 0..spec.hostile_per_tick {
            commands.push(SimCommand::Hostile {
                tick,
                case_index: rng.random::<u32>(),
            });
        }
        if let Some((kill_tick, replica)) = spec.kill_replica_at {
            if kill_tick == tick {
                commands.push(SimCommand::KillReplica { tick, replica });
            }
        }
        if spec.adapt_at == Some(tick) {
            commands.push(SimCommand::Adapt { tick });
        }
    }
    CommandStream {
        scenario: spec.name.to_string(),
        seed,
        ticks: spec.ticks,
        commands,
    }
}

/// Bursty diurnal load with hostile clients and a mid-run replica kill —
/// the "messy Tuesday plus a hardware failure" drill. Run it against a
/// router fronting ≥ 2 replicas.
pub fn burst_kill() -> ScenarioSpec {
    ScenarioSpec {
        name: "burst-kill",
        about: "diurnal + bursts + hostile clients, replica killed mid-run",
        ticks: 8,
        base_load: 6,
        diurnal_amplitude: 0.5,
        diurnal_period: 8,
        burst_prob: 0.4,
        burst_mean: 8,
        hostile_per_tick: 1,
        short_deadline_frac: 0.3,
        short_deadline_ms: 250,
        long_deadline_ms: 5_000,
        utt_frames: 75,
        drift: None,
        code_switch_prob: 0.15,
        open_set_prob: 0.0,
        kill_replica_at: Some((4, 1)),
        adapt_at: None,
        invariants: InvariantSpec {
            max_shed_rate: Some(0.5),
            p99_ms: Some(5_000.0),
            expect_flight: vec!["eject"],
            min_completed: 20,
            ..InvariantSpec::default()
        },
    }
}

/// Channel drift into heavy noise plus open-set traffic, ending in an
/// adaptation cycle that the guard must reject. Run it against an
/// adaptation-capable server started with an impossible guard (negative
/// regression slack) and an open-set threshold.
pub fn drift_guard() -> ScenarioSpec {
    ScenarioSpec {
        name: "drift-guard",
        about: "SNR drifts 20→0 dB with open-set traffic; guard must reject the adapt",
        ticks: 6,
        base_load: 5,
        diurnal_amplitude: 0.0,
        diurnal_period: 6,
        burst_prob: 0.0,
        burst_mean: 0,
        hostile_per_tick: 1,
        short_deadline_frac: 0.0,
        short_deadline_ms: 250,
        long_deadline_ms: 10_000,
        utt_frames: 75,
        drift: Some(DriftPlan {
            start_snr_db: 20.0,
            end_snr_db: 0.0,
        }),
        code_switch_prob: 0.1,
        open_set_prob: 0.3,
        kill_replica_at: None,
        adapt_at: Some(5),
        invariants: InvariantSpec {
            p99_ms: Some(10_000.0),
            expect_guard_reject: true,
            expect_flight: vec!["guard_reject"],
            min_completed: 15,
            require_unknown: true,
            ..InvariantSpec::default()
        },
    }
}

/// A deliberately failing scenario: it demands an `eject` flight event
/// but never kills anything, so the invariant fails — deterministically,
/// on the original run and on every `--replay` of it. This is the pinned
/// proof that a violated invariant reproduces from the exported stream.
pub fn phantom_eject() -> ScenarioSpec {
    ScenarioSpec {
        name: "phantom-eject",
        about: "deliberate failure: expects an eject that never happens",
        ticks: 2,
        base_load: 3,
        diurnal_amplitude: 0.0,
        diurnal_period: 2,
        burst_prob: 0.0,
        burst_mean: 0,
        hostile_per_tick: 0,
        short_deadline_frac: 0.0,
        short_deadline_ms: 250,
        long_deadline_ms: 10_000,
        utt_frames: 75,
        drift: None,
        code_switch_prob: 0.0,
        open_set_prob: 0.0,
        kill_replica_at: None,
        adapt_at: None,
        invariants: InvariantSpec {
            expect_flight: vec!["eject"],
            min_completed: 1,
            ..InvariantSpec::default()
        },
    }
}

/// All built-in scenarios.
pub fn builtin_scenarios() -> Vec<ScenarioSpec> {
    vec![burst_kill(), drift_guard(), phantom_eject()]
}

/// Look a scenario up by its stream-recorded name.
pub fn by_name(name: &str) -> Option<ScenarioSpec> {
    builtin_scenarios().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_bytes_different_seed_different_bytes() {
        let spec = burst_kill();
        let a = generate(&spec, 42).encode();
        let b = generate(&spec, 42).encode();
        assert_eq!(a, b, "generation must be a pure function of the seed");
        let c = generate(&spec, 43).encode();
        assert_ne!(a, c, "different seeds must produce different traffic");
        // The quoted CRC must identify the plan, not the container format
        // (the CRC of `data ‖ crc(data)` is the same constant for every
        // sealed artifact — quoting that would prove nothing).
        assert_ne!(
            generate(&spec, 42).crc32(),
            generate(&spec, 43).crc32(),
            "stream CRC must depend on the plan"
        );
        assert_ne!(
            generate(&spec, 42).crc32(),
            generate(&drift_guard(), 42).crc32(),
            "stream CRC must depend on the scenario"
        );
    }

    #[test]
    fn streams_roundtrip_through_the_artifact_container() {
        for spec in builtin_scenarios() {
            let stream = generate(&spec, 7);
            let back = CommandStream::decode(&stream.encode()).expect("decodes");
            assert_eq!(back, stream, "scenario {}", spec.name);
        }
    }

    #[test]
    fn corrupted_streams_are_typed_errors() {
        let mut bytes = generate(&burst_kill(), 9).encode();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(CommandStream::decode(&bytes).is_err(), "bit flip accepted");
        let truncated = &bytes[..bytes.len() - 8];
        assert!(
            CommandStream::decode(truncated).is_err(),
            "truncation accepted"
        );
    }

    #[test]
    fn language_index_constants_match_the_corpus() {
        let all = lre_corpus::LanguageId::all();
        assert_eq!(all.len(), NUM_LANGUAGES as usize);
        let targets = all.iter().filter(|l| l.target_index().is_some()).count();
        assert_eq!(targets, NUM_TARGETS as usize);
        // The out-of-set languages sit at the tail, where open-set plans
        // draw from.
        for l in &all[NUM_TARGETS as usize..] {
            assert!(l.target_index().is_none(), "{l:?} should be out-of-set");
        }
    }

    #[test]
    fn scenario_shapes_hold() {
        let stream = generate(&burst_kill(), 1);
        assert!(stream.commands.iter().any(|c| matches!(
            c,
            SimCommand::KillReplica {
                tick: 4,
                replica: 1
            }
        )));
        let hostiles = stream
            .commands
            .iter()
            .filter(|c| matches!(c, SimCommand::Hostile { .. }))
            .count();
        assert_eq!(hostiles, 8, "one hostile per tick");

        let drift = generate(&drift_guard(), 1);
        assert!(drift
            .commands
            .iter()
            .any(|c| matches!(c, SimCommand::Adapt { tick: 5 })));
        // SNR drifts monotonically down across ticks.
        let mut last_snr = f32::INFINITY;
        for tick in 0..drift.ticks {
            let snr = drift.commands.iter().find_map(|c| match c {
                SimCommand::Score { tick: t, plan, .. } if *t == tick => Some(plan.snr_db),
                _ => None,
            });
            if let Some(snr) = snr {
                assert!(snr <= last_snr, "SNR rose at tick {tick}");
                last_snr = snr;
            }
        }
        // Open-set traffic exists and uses only out-of-set languages.
        let open: Vec<_> = drift
            .commands
            .iter()
            .filter_map(|c| match c {
                SimCommand::Score { plan, .. } if plan.open_set => Some(plan.language),
                _ => None,
            })
            .collect();
        assert!(!open.is_empty(), "drift-guard sent no open-set traffic");
        assert!(open.iter().all(|&l| l >= NUM_TARGETS));
    }
}
