//! The live driver: replays a [`CommandStream`] against real serving
//! processes over TCP and judges the run against an [`InvariantSpec`].
//!
//! The driver never feeds anything it observes back into command
//! generation — the stream is fixed before the first byte hits the wire —
//! so a run's *plan* is deterministic even though the servers' *behavior*
//! (latencies, shed decisions, kill timing) is not. Verdict files quote
//! only the plan's identity (scenario, seed, command count, CRC) and
//! PASS/FAIL lines, never measured numbers, so a healthy replay produces
//! a byte-identical verdict file.

use crate::plan::{CommandStream, SimCommand, UttPlan};
use crate::scenario::InvariantSpec;
use lre_corpus::{build_language, render_utterance, Channel, LanguageId, LanguageModel, UttSpec};
use lre_phone::UniversalInventory;
use lre_serve::client::{Client, PipelinedClient, ScoreReply};
use lre_serve::fuzz::{self, FuzzCase};
use lre_serve::protocol::ADAPT_REJECTED_GUARD;
use lre_serve::{StatsSnapshot, WalStatusInfo};
use std::collections::{BTreeSet, HashMap};
use std::io::{self, ErrorKind};
use std::net::{SocketAddr, TcpStream};
use std::process::{Child, Command};
use std::time::{Duration, Instant};

/// Fixed corpus seed for rendering simulator traffic. Part of the replay
/// contract: the same plan must synthesize the same waveforms everywhere.
pub const SIM_CORPUS_SEED: u64 = 0x51B0_7261;

/// Where the simulator points its traffic.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Scoring front door (a serve instance or a router).
    pub addr: SocketAddr,
    /// Replica addresses for `KillReplica` commands (direct, bypassing any
    /// router — that is the point of a kill).
    pub replicas: Vec<SocketAddr>,
    /// Endpoint for `Adapt` commands; defaults to `addr`.
    pub adapt_addr: Option<SocketAddr>,
    /// Wall-clock pause between ticks, letting health checks and ejection
    /// run. Does not influence the command stream.
    pub tick_ms: u64,
    /// Per-hostile-connection timeout.
    pub hostile_timeout: Duration,
    /// Shell command that starts the adapting server (`sh -c` syntax).
    /// When set, the driver spawns the process itself before the run and
    /// owns it, which is what lets `CrashAdaptd` deliver a real SIGKILL
    /// and `RestartAdaptd` respawn against the same `--wal-dir`.
    pub adaptd_cmd: Option<String>,
}

impl SimConfig {
    pub fn new(addr: SocketAddr) -> SimConfig {
        SimConfig {
            addr,
            replicas: Vec::new(),
            adapt_addr: None,
            tick_ms: 50,
            hostile_timeout: Duration::from_secs(5),
            adaptd_cmd: None,
        }
    }
}

/// The judged outcome of one run.
#[derive(Clone, Debug)]
pub struct RunReport {
    pub pass: bool,
    /// Deterministic verdict text: plan identity + one PASS/FAIL line per
    /// checked invariant. Safe to `diff` between a run and its replay.
    pub verdict_text: String,
    /// Measured numbers for humans (latencies, counters, failure notes).
    /// Never byte-stable; print to stderr, keep out of verdict files.
    pub detail: String,
}

/// Renders planned utterances, caching one language model per language.
struct Renderer {
    inv: UniversalInventory,
    models: HashMap<u8, LanguageModel>,
}

impl Renderer {
    fn new() -> Renderer {
        Renderer {
            inv: UniversalInventory::new(),
            models: HashMap::new(),
        }
    }

    fn render_one(
        &mut self,
        language: u8,
        num_frames: usize,
        seed: u64,
        speaker_seed: u64,
        channel: Channel,
    ) -> Vec<f32> {
        let inv = &self.inv;
        let model = self.models.entry(language).or_insert_with(|| {
            build_language(LanguageId::all()[language as usize], SIM_CORPUS_SEED, inv)
        });
        let spec = UttSpec {
            language: model.id,
            speaker_seed,
            channel,
            num_frames,
            seed,
        };
        render_utterance(&spec, model, inv).samples
    }

    /// Render a plan; a code-switching plan renders each half in its own
    /// language and concatenates the waveforms.
    fn render(&mut self, plan: &UttPlan) -> Vec<f32> {
        let channel = if plan.voa {
            Channel::broadcast(plan.snr_db)
        } else {
            Channel::telephone(plan.snr_db)
        };
        let frames = plan.num_frames as usize;
        match plan.second_language {
            None => self.render_one(plan.language, frames, plan.seed, plan.speaker_seed, channel),
            Some(second) => {
                let first = (frames / 2).max(1);
                let mut head =
                    self.render_one(plan.language, first, plan.seed, plan.speaker_seed, channel);
                let tail = self.render_one(
                    second,
                    (frames - first).max(1),
                    plan.seed ^ 0x9E37_79B9_7F4A_7C15,
                    plan.speaker_seed,
                    channel,
                );
                head.extend_from_slice(&tail);
                head
            }
        }
    }
}

/// How a pipelined-client error counts against the invariants.
enum RecvFault {
    /// A reply frame arrived but did not decode — the one thing that must
    /// never happen.
    Torn,
    /// The connection died (reset, EOF mid-run): an *untyped* failure.
    Untyped,
}

fn classify_recv_error(err: &io::Error) -> RecvFault {
    // `PipelinedClient` wraps both decode failures and
    // "server closed with replies outstanding" as `InvalidData`; only the
    // former is a torn reply. A clean close is the connection dying.
    if err.kind() == ErrorKind::InvalidData && !err.to_string().contains("closed") {
        RecvFault::Torn
    } else {
        RecvFault::Untyped
    }
}

/// Everything measured during a run, folded into verdicts at the end.
#[derive(Default)]
struct Tally {
    submitted: u64,
    scored: u64,
    unknown_replies: u64,
    typed_failures: u64,
    untyped_failures: u64,
    torn_replies: u64,
    hostile_runs: u64,
    hostile_violations: Vec<String>,
    adapt_outcomes: Vec<u8>,
    adapt_errors: Vec<String>,
    kill_notes: Vec<String>,
    latencies_ms: Vec<f64>,
    flight_seen: BTreeSet<String>,
    scrape_errors: u64,
    last_stats: Option<StatsSnapshot>,
    crash_notes: Vec<String>,
    /// WAL status scraped just before the SIGKILL (traffic settled).
    wal_before_crash: Option<WalStatusInfo>,
    /// WAL status scraped right after the restarted server came up.
    wal_after_restart: Option<WalStatusInfo>,
    /// WAL status from the end of the run.
    wal_final: Option<WalStatusInfo>,
}

fn p99(latencies: &mut [f64]) -> Option<f64> {
    if latencies.is_empty() {
        return None;
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let idx = ((latencies.len() as f64) * 0.99).ceil() as usize;
    Some(latencies[idx.saturating_sub(1).min(latencies.len() - 1)])
}

/// Drain every outstanding reply on the pipe, folding outcomes into the
/// tally. On a connection fault the remaining in-flight requests are lost
/// un-replied and count as untyped failures.
fn drain(
    pipe: &mut Option<PipelinedClient>,
    pending: &mut HashMap<u64, Instant>,
    tally: &mut Tally,
) {
    let Some(client) = pipe.as_mut() else {
        tally.untyped_failures += pending.len() as u64;
        pending.clear();
        return;
    };
    while client.inflight() > 0 {
        match client.recv() {
            Ok((id, reply)) => {
                if let Some(started) = pending.remove(&id) {
                    tally
                        .latencies_ms
                        .push(started.elapsed().as_secs_f64() * 1e3);
                }
                match reply {
                    ScoreReply::Scored(scored) => {
                        tally.scored += 1;
                        if scored.unknown {
                            tally.unknown_replies += 1;
                        }
                    }
                    ScoreReply::Overloaded
                    | ScoreReply::ShuttingDown
                    | ScoreReply::DeadlineExceeded
                    | ScoreReply::Failed => tally.typed_failures += 1,
                }
            }
            Err(e) => {
                match classify_recv_error(&e) {
                    RecvFault::Torn => tally.torn_replies += 1,
                    RecvFault::Untyped => tally.untyped_failures += 1,
                }
                // The stream is unusable; everything still pending is lost.
                tally.untyped_failures += pending.len().saturating_sub(1) as u64;
                pending.clear();
                *pipe = None;
                return;
            }
        }
    }
    // Replies that raced a reconnect (ids from a dropped connection).
    tally.untyped_failures += pending.len() as u64;
    pending.clear();
}

fn scrape(scrape_client: &mut Option<Client>, cfg: &SimConfig, tally: &mut Tally) {
    if scrape_client.is_none() {
        *scrape_client = Client::connect(cfg.addr).ok();
    }
    let Some(client) = scrape_client.as_mut() else {
        tally.scrape_errors += 1;
        return;
    };
    match client.stats_v2() {
        Ok(stats) => tally.last_stats = Some(stats),
        Err(_) => {
            tally.scrape_errors += 1;
            *scrape_client = None;
            return;
        }
    }
    if let Ok(Some(events)) = client.flight(false) {
        for ev in events {
            tally
                .flight_seen
                .insert(lre_obs::event_name(ev.kind).to_string());
        }
    }
}

/// Spawn the adapting server from its shell command. The command is
/// `exec`'d so the server *replaces* the shell: the [`Child`] handle —
/// and therefore `CrashAdaptd`'s SIGKILL — targets the server process
/// itself, not an intermediate `sh` that would die and leave the server
/// running (and still holding its port when the restart tries to bind).
fn spawn_adaptd(cmd: &str) -> io::Result<Child> {
    Command::new("sh")
        .arg("-c")
        .arg(format!("exec {cmd}"))
        .spawn()
}

/// Poll until `addr` accepts a TCP connection or the timeout lapses.
fn wait_for_tcp(addr: SocketAddr, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if TcpStream::connect_timeout(&addr, Duration::from_millis(250)).is_ok() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    false
}

/// One fresh-connection `wal-status` round trip; `None` when the peer is
/// unreachable or has no WAL.
fn scrape_wal(addr: SocketAddr) -> Option<WalStatusInfo> {
    Client::connect(addr)
        .ok()
        .and_then(|mut c| c.wal_status().ok())
        .flatten()
}

/// Stop a driver-owned adaptd: ask politely, then escalate to SIGKILL if
/// it lingers. Only used after the run is judged, so escalation cannot
/// affect any invariant.
fn stop_adaptd(mut child: Child, addr: SocketAddr, tally: &mut Tally) {
    let _ = Client::connect(addr).and_then(|mut c| c.shutdown());
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match child.try_wait() {
            Ok(Some(status)) => {
                tally.crash_notes.push(format!("adaptd stopped: {status}"));
                return;
            }
            Ok(None) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(100));
            }
            _ => {
                let _ = child.kill();
                let _ = child.wait();
                tally
                    .crash_notes
                    .push("adaptd ignored shutdown; killed".into());
                return;
            }
        }
    }
}

/// Replay `stream` against the live target in `cfg` and judge it against
/// `invariants`. Blocks until the run completes.
pub fn run(stream: &CommandStream, invariants: &InvariantSpec, cfg: &SimConfig) -> RunReport {
    let corpus: Vec<FuzzCase> = fuzz::malformed_corpus();
    let mut renderer = Renderer::new();
    let mut tally = Tally::default();
    let mut pipe: Option<PipelinedClient> = None;
    let mut pending: HashMap<u64, Instant> = HashMap::new();
    let mut scrape_client: Option<Client> = None;

    let adapt_target = cfg.adapt_addr.unwrap_or(cfg.addr);
    let mut adaptd: Option<Child> = None;
    if let Some(cmd) = &cfg.adaptd_cmd {
        match spawn_adaptd(cmd) {
            Ok(child) => {
                adaptd = Some(child);
                if !wait_for_tcp(adapt_target, Duration::from_secs(20)) {
                    tally
                        .crash_notes
                        .push(format!("spawned adaptd never opened {adapt_target}"));
                }
            }
            Err(e) => tally.crash_notes.push(format!("spawning adaptd: {e}")),
        }
    }

    for tick in 0..stream.ticks {
        for cmd in stream.commands.iter().filter(|c| c.tick() == tick) {
            match cmd {
                SimCommand::Score {
                    plan, deadline_ms, ..
                } => {
                    let samples = renderer.render(plan);
                    if pipe.is_none() {
                        pipe = PipelinedClient::connect(cfg.addr).ok();
                    }
                    tally.submitted += 1;
                    let deadline = Some(Duration::from_millis(u64::from(*deadline_ms)));
                    match pipe.as_mut().map(|c| c.submit(&samples, deadline)) {
                        Some(Ok(id)) => {
                            pending.insert(id, Instant::now());
                        }
                        Some(Err(_)) => {
                            tally.untyped_failures += 1;
                            pipe = None;
                        }
                        None => tally.untyped_failures += 1,
                    }
                }
                SimCommand::Hostile { case_index, .. } => {
                    let case = &corpus[*case_index as usize % corpus.len()];
                    tally.hostile_runs += 1;
                    if let Err(e) = fuzz::run_case(cfg.addr, case, cfg.hostile_timeout) {
                        tally
                            .hostile_violations
                            .push(format!("case {:?}: {e}", case.name));
                    }
                }
                SimCommand::KillReplica { replica, .. } => {
                    // Settle outstanding scores first: the kill's blast
                    // radius should be the ticks after it, and a blocking
                    // admin call must not pollute measured latencies.
                    drain(&mut pipe, &mut pending, &mut tally);
                    match cfg.replicas.get(*replica as usize) {
                        Some(addr) => {
                            let note = Client::connect(addr)
                                .and_then(|mut c| c.shutdown())
                                .map_or_else(
                                    |e| format!("replica {replica} at {addr}: {e}"),
                                    |()| format!("replica {replica} at {addr}: shut down"),
                                );
                            tally.kill_notes.push(note);
                        }
                        None => tally
                            .kill_notes
                            .push(format!("replica {replica}: no such address configured")),
                    }
                }
                SimCommand::Adapt { .. } => {
                    // An adaptation cycle blocks for seconds; drain first so
                    // already-answered replies are not timed as if they took
                    // the whole cycle.
                    drain(&mut pipe, &mut pending, &mut tally);
                    match Client::connect(adapt_target).and_then(|mut c| c.adapt()) {
                        Ok(report) => tally.adapt_outcomes.push(report.outcome),
                        Err(e) => tally.adapt_errors.push(e.to_string()),
                    }
                }
                SimCommand::CrashAdaptd { .. } => {
                    // Settle outstanding scores, capture the WAL's view of
                    // the window, then SIGKILL — no handshake, no flush.
                    // The replayed count after the restart is judged
                    // against exactly this snapshot.
                    drain(&mut pipe, &mut pending, &mut tally);
                    tally.wal_before_crash = scrape_wal(adapt_target);
                    match adaptd.take() {
                        Some(mut child) => {
                            let note = match child.kill().and_then(|()| child.wait()) {
                                Ok(status) => format!("adaptd SIGKILLed ({status})"),
                                Err(e) => format!("adaptd SIGKILL failed: {e}"),
                            };
                            tally.crash_notes.push(note);
                        }
                        None => tally
                            .crash_notes
                            .push("crash planned but no --adaptd-cmd given".into()),
                    }
                    // The driver knows these connections died with the
                    // process; dropping them here is deliberate, not an
                    // untyped failure.
                    pipe = None;
                    scrape_client = None;
                }
                SimCommand::RestartAdaptd { .. } => match cfg.adaptd_cmd.as_deref() {
                    Some(cmd) => match spawn_adaptd(cmd) {
                        Ok(child) => {
                            adaptd = Some(child);
                            if wait_for_tcp(adapt_target, Duration::from_secs(20)) {
                                tally.wal_after_restart = scrape_wal(adapt_target);
                                tally.crash_notes.push("adaptd restarted".into());
                            } else {
                                tally
                                    .crash_notes
                                    .push("restarted adaptd never opened its port".into());
                            }
                        }
                        Err(e) => tally.crash_notes.push(format!("respawning adaptd: {e}")),
                    },
                    None => tally
                        .crash_notes
                        .push("restart planned but no --adaptd-cmd given".into()),
                },
            }
        }
        drain(&mut pipe, &mut pending, &mut tally);
        scrape(&mut scrape_client, cfg, &mut tally);
        if cfg.tick_ms > 0 && tick + 1 < stream.ticks {
            std::thread::sleep(Duration::from_millis(cfg.tick_ms));
        }
    }
    // Post-run settle, then one final scrape so late health checks (e.g.
    // ejection of a replica killed on the last tick) are visible.
    if cfg.tick_ms > 0 {
        std::thread::sleep(Duration::from_millis(cfg.tick_ms.max(100)));
    }
    scrape(&mut scrape_client, cfg, &mut tally);
    if invariants.expect_wal_recovery || tally.wal_before_crash.is_some() {
        tally.wal_final = scrape_wal(adapt_target);
    }
    if let Some(child) = adaptd.take() {
        stop_adaptd(child, adapt_target, &mut tally);
    }

    judge(stream, invariants, tally)
}

fn judge(stream: &CommandStream, inv: &InvariantSpec, mut tally: Tally) -> RunReport {
    let mut lines: Vec<(String, bool)> = Vec::new();
    let stats = tally.last_stats;

    if inv.zero_torn_replies {
        lines.push(("zero-torn-replies".into(), tally.torn_replies == 0));
    }
    if inv.typed_failures_only {
        lines.push(("typed-failures-only".into(), tally.untyped_failures == 0));
    }
    if inv.hostile_contract {
        lines.push((
            "hostile-contract".into(),
            tally.hostile_violations.is_empty(),
        ));
    }
    if let Some(max) = inv.max_shed_rate {
        let ok = stats
            .as_ref()
            .is_some_and(|s| s.requests == 0 || (s.rejected as f64 / s.requests as f64) <= max);
        lines.push(("max-shed-rate".into(), ok));
    }
    if let Some(ceiling) = inv.p99_ms {
        let ok = p99(&mut tally.latencies_ms).is_some_and(|p| p <= ceiling);
        lines.push(("p99-ceiling".into(), ok));
    }
    if inv.min_completed > 0 {
        lines.push(("min-completed".into(), tally.scored >= inv.min_completed));
    }
    for name in &inv.expect_flight {
        lines.push((format!("flight:{name}"), tally.flight_seen.contains(name)));
    }
    if inv.expect_wal_recovery {
        // Zero lost votes: every record the WAL held when the SIGKILL
        // landed came back in the restarted process's replay, with no
        // torn records surviving. Exact when the server runs with
        // `--wal-fsync-ms 0`; a lazier fsync interval may legitimately
        // lose its tail and fail this line.
        let replayed_ok = match (&tally.wal_before_crash, &tally.wal_after_restart) {
            (Some(before), Some(after)) => after.replayed == before.buffered && after.torn == 0,
            _ => false,
        };
        lines.push(("wal-replayed".into(), replayed_ok));
        // Chain intact: the final wal-status must come from a validated
        // lineage store (open re-verifies the whole chain) with at least
        // the root generation recorded.
        let chain_ok = tally
            .wal_final
            .as_ref()
            .is_some_and(|w| w.chain_ok && w.lineage_entries >= 1);
        lines.push(("chain-intact".into(), chain_ok));
    }
    if inv.expect_guard_reject {
        let ok = !tally.adapt_outcomes.is_empty()
            && tally
                .adapt_outcomes
                .iter()
                .all(|&o| o == ADAPT_REJECTED_GUARD)
            && tally.adapt_errors.is_empty()
            && stats.as_ref().is_some_and(|s| s.generation == 0);
        lines.push(("guard-reject".into(), ok));
    }
    if inv.require_unknown {
        let ok = tally.unknown_replies > 0 && stats.as_ref().is_some_and(|s| s.unknown > 0);
        lines.push(("unknown-seen".into(), ok));
    }

    let pass = lines.iter().all(|(_, ok)| *ok);
    let mut verdict = format!(
        "lre-trafficsim verdict\nscenario={} seed={} ticks={}\ncommands={} crc32={:08x}\n",
        stream.scenario,
        stream.seed,
        stream.ticks,
        stream.commands.len(),
        stream.crc32(),
    );
    for (name, ok) in &lines {
        verdict.push_str(if *ok { "PASS " } else { "FAIL " });
        verdict.push_str(name);
        verdict.push('\n');
    }
    verdict.push_str(if pass {
        "result=PASS\n"
    } else {
        "result=FAIL\n"
    });

    let mut detail = format!(
        "submitted={} scored={} unknown_replies={} typed_failures={} untyped_failures={} \
         torn_replies={} hostile_runs={} hostile_violations={} scrape_errors={}\n",
        tally.submitted,
        tally.scored,
        tally.unknown_replies,
        tally.typed_failures,
        tally.untyped_failures,
        tally.torn_replies,
        tally.hostile_runs,
        tally.hostile_violations.len(),
        tally.scrape_errors,
    );
    if let Some(p) = p99(&mut tally.latencies_ms) {
        detail.push_str(&format!("p99_ms={p:.1}\n"));
    }
    if let Some(s) = &stats {
        detail.push_str(&format!(
            "stats: requests={} completed={} rejected={} expired={} failed={} generation={} unknown={}\n",
            s.requests, s.completed, s.rejected, s.expired, s.failed, s.generation, s.unknown,
        ));
    }
    if !tally.flight_seen.is_empty() {
        let names: Vec<&str> = tally.flight_seen.iter().map(String::as_str).collect();
        detail.push_str(&format!("flight events seen: {}\n", names.join(",")));
    }
    for v in &tally.hostile_violations {
        detail.push_str(&format!("hostile violation: {v}\n"));
    }
    for n in &tally.kill_notes {
        detail.push_str(&format!("kill: {n}\n"));
    }
    for n in &tally.crash_notes {
        detail.push_str(&format!("adaptd: {n}\n"));
    }
    for (label, wal) in [
        ("before-crash", &tally.wal_before_crash),
        ("after-restart", &tally.wal_after_restart),
        ("final", &tally.wal_final),
    ] {
        if let Some(w) = wal {
            detail.push_str(&format!(
                "wal {label}: appended={} buffered={} replayed={} torn={} segments={} \
                 lineage_head={} entries={} retained={}\n",
                w.appended,
                w.buffered,
                w.replayed,
                w.torn,
                w.segments,
                w.lineage_head,
                w.lineage_entries,
                w.lineage_retained,
            ));
        }
    }
    for e in &tally.adapt_errors {
        detail.push_str(&format!("adapt error: {e}\n"));
    }
    if !tally.adapt_outcomes.is_empty() {
        detail.push_str(&format!("adapt outcomes: {:?}\n", tally.adapt_outcomes));
    }

    RunReport {
        pass,
        verdict_text: verdict,
        detail,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p99_picks_the_tail() {
        let mut v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(p99(&mut v), Some(99.0));
        assert_eq!(p99(&mut []), None);
        assert_eq!(p99(&mut [7.0]), Some(7.0));
    }

    #[test]
    fn torn_versus_untyped_classification() {
        let torn = io::Error::new(ErrorKind::InvalidData, "bad reply frame: tag 99");
        assert!(matches!(classify_recv_error(&torn), RecvFault::Torn));
        let closed = io::Error::new(
            ErrorKind::InvalidData,
            "server closed with replies outstanding",
        );
        assert!(matches!(classify_recv_error(&closed), RecvFault::Untyped));
        let reset = io::Error::new(ErrorKind::ConnectionReset, "reset by peer");
        assert!(matches!(classify_recv_error(&reset), RecvFault::Untyped));
    }
}
