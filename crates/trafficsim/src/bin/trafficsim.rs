//! Command-line front end for the traffic simulator.
//!
//! ```text
//! lre-trafficsim --scenario NAME --seed N --addr HOST:PORT
//!                [--replica HOST:PORT]... [--adapt-addr HOST:PORT]
//!                [--adaptd-cmd CMD] [--export PATH] [--verdicts-out PATH]
//!                [--tick-ms N]
//! lre-trafficsim --scenario-file PATH --seed N --addr HOST:PORT [...]
//! lre-trafficsim --replay PATH --addr HOST:PORT [...]
//! lre-trafficsim --scenario NAME --seed N --export PATH --export-only
//! lre-trafficsim --list
//! ```
//!
//! `--scenario-file` loads a [`ScenarioSpec`] from the `key = value` text
//! format instead of a built-in; replaying a stream generated from a file
//! needs the same `--scenario-file` again, since the invariants live in
//! the file, not the stream. `--adaptd-cmd` hands the driver the shell
//! command that starts the adapting server, which is what crash-recovery
//! scenarios use to deliver a real SIGKILL and respawn it.
//!
//! Exit status 0 iff every invariant passed. The verdict file (stdout by
//! default) is deterministic for a given plan and outcome set; measured
//! numbers go to stderr only.

use lre_trafficsim::{
    builtin_scenarios, by_name, generate, run, CommandStream, ScenarioSpec, SimConfig,
};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::Duration;

fn usage(msg: &str) -> ! {
    eprintln!(
        "error: {msg}\nusage: lre-trafficsim (--scenario NAME --seed N | \
         --scenario-file PATH --seed N | --replay PATH) \
         --addr HOST:PORT [--replica HOST:PORT]... [--adapt-addr HOST:PORT] \
         [--adaptd-cmd CMD] [--export PATH] [--verdicts-out PATH] [--tick-ms N] \
         [--export-only] [--list]"
    );
    std::process::exit(2);
}

fn parse_addr(s: &str, what: &str) -> SocketAddr {
    s.parse()
        .unwrap_or_else(|_| usage(&format!("bad {what} (want HOST:PORT)")))
}

fn main() {
    let mut scenario: Option<String> = None;
    let mut scenario_file: Option<PathBuf> = None;
    let mut adaptd_cmd: Option<String> = None;
    let mut seed: Option<u64> = None;
    let mut addr: Option<SocketAddr> = None;
    let mut replicas: Vec<SocketAddr> = Vec::new();
    let mut adapt_addr: Option<SocketAddr> = None;
    let mut export: Option<PathBuf> = None;
    let mut replay: Option<PathBuf> = None;
    let mut verdicts_out: Option<PathBuf> = None;
    let mut tick_ms = 50u64;
    let mut export_only = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let get = |i: usize, what: &str| -> &String {
            args.get(i)
                .unwrap_or_else(|| usage(&format!("missing value for {what}")))
        };
        match args[i].as_str() {
            "--list" => {
                for s in builtin_scenarios() {
                    println!("{:<14} {}", s.name, s.about);
                }
                return;
            }
            "--scenario" => {
                i += 1;
                scenario = Some(get(i, "--scenario").clone());
            }
            "--scenario-file" => {
                i += 1;
                scenario_file = Some(PathBuf::from(get(i, "--scenario-file")));
            }
            "--adaptd-cmd" => {
                i += 1;
                adaptd_cmd = Some(get(i, "--adaptd-cmd").clone());
            }
            "--seed" => {
                i += 1;
                seed = Some(
                    get(i, "--seed")
                        .parse()
                        .unwrap_or_else(|_| usage("bad --seed (want u64)")),
                );
            }
            "--addr" => {
                i += 1;
                addr = Some(parse_addr(get(i, "--addr"), "--addr"));
            }
            "--replica" => {
                i += 1;
                replicas.push(parse_addr(get(i, "--replica"), "--replica"));
            }
            "--adapt-addr" => {
                i += 1;
                adapt_addr = Some(parse_addr(get(i, "--adapt-addr"), "--adapt-addr"));
            }
            "--export" => {
                i += 1;
                export = Some(PathBuf::from(get(i, "--export")));
            }
            "--replay" => {
                i += 1;
                replay = Some(PathBuf::from(get(i, "--replay")));
            }
            "--verdicts-out" => {
                i += 1;
                verdicts_out = Some(PathBuf::from(get(i, "--verdicts-out")));
            }
            "--tick-ms" => {
                i += 1;
                tick_ms = get(i, "--tick-ms")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --tick-ms (want u64)"));
            }
            "--export-only" => export_only = true,
            other => usage(&format!("unknown argument {other}")),
        }
        i += 1;
    }

    // --- Resolve the scenario file, if any: it supplies both the plan
    // (when generating) and the invariants (always).
    let file_spec: Option<ScenarioSpec> = scenario_file.as_ref().map(|path| {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: reading {}: {e}", path.display());
            std::process::exit(1);
        });
        ScenarioSpec::parse(&text).unwrap_or_else(|e| {
            eprintln!("error: {}: {e}", path.display());
            std::process::exit(1);
        })
    });
    if scenario.is_some() && file_spec.is_some() {
        usage("--scenario and --scenario-file are mutually exclusive");
    }

    // --- Resolve the command stream: generate fresh or load a replay.
    let stream: CommandStream = match (&replay, &scenario) {
        (Some(path), None) => {
            let bytes = std::fs::read(path).unwrap_or_else(|e| {
                eprintln!("error: reading {}: {e}", path.display());
                std::process::exit(1);
            });
            let stream = CommandStream::decode(&bytes).unwrap_or_else(|e| {
                eprintln!(
                    "error: {} is not a valid command stream: {e}",
                    path.display()
                );
                std::process::exit(1);
            });
            eprintln!(
                "[trafficsim] replaying {}: scenario={} seed={} ticks={} commands={}",
                path.display(),
                stream.scenario,
                stream.seed,
                stream.ticks,
                stream.commands.len()
            );
            stream
        }
        (None, Some(name)) => {
            let spec = by_name(name)
                .unwrap_or_else(|| usage(&format!("unknown scenario {name:?} (see --list)")));
            let seed = seed.unwrap_or_else(|| usage("--seed is required with --scenario"));
            generate(&spec, seed)
        }
        (None, None) => match &file_spec {
            Some(spec) => {
                let seed = seed.unwrap_or_else(|| usage("--seed is required with --scenario-file"));
                generate(spec, seed)
            }
            None => usage("one of --scenario, --scenario-file, or --replay is required"),
        },
        (Some(_), Some(_)) => usage("--replay and --scenario are mutually exclusive"),
    };
    // The invariant set always comes from the stream's recorded scenario
    // name, so a replay judges exactly what the original run judged. A
    // stream generated from a scenario file carries the file's name, and
    // replaying it needs the same file again (checked by name).
    let spec = match file_spec {
        Some(spec) => {
            if spec.name != stream.scenario {
                eprintln!(
                    "error: stream was generated from scenario {:?} but the file defines {:?}",
                    stream.scenario, spec.name
                );
                std::process::exit(1);
            }
            spec
        }
        None => by_name(&stream.scenario).unwrap_or_else(|| {
            eprintln!(
                "error: stream names unknown scenario {:?}; pass its --scenario-file, \
                 or this binary is too old or too new",
                stream.scenario
            );
            std::process::exit(1);
        }),
    };

    if let Some(path) = &export {
        if let Err(e) = std::fs::write(path, stream.encode()) {
            eprintln!("error: writing {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!(
            "[trafficsim] exported {} commands (crc32={:08x}) to {}",
            stream.commands.len(),
            stream.crc32(),
            path.display()
        );
    }
    if export_only {
        if export.is_none() {
            usage("--export-only needs --export PATH");
        }
        return;
    }

    let addr = addr.unwrap_or_else(|| usage("--addr is required"));
    let mut cfg = SimConfig::new(addr);
    cfg.replicas = replicas;
    cfg.adapt_addr = adapt_addr;
    cfg.tick_ms = tick_ms;
    cfg.hostile_timeout = Duration::from_secs(5);
    cfg.adaptd_cmd = adaptd_cmd;

    eprintln!(
        "[trafficsim] running scenario={} seed={} ticks={} commands={} against {}",
        stream.scenario,
        stream.seed,
        stream.ticks,
        stream.commands.len(),
        addr
    );
    let report = run(&stream, &spec.invariants, &cfg);
    eprint!("{}", report.detail);
    match &verdicts_out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &report.verdict_text) {
                eprintln!("error: writing {}: {e}", path.display());
                std::process::exit(1);
            }
            eprint!("{}", report.verdict_text);
        }
        None => print!("{}", report.verdict_text),
    }
    std::process::exit(if report.pass { 0 } else { 1 });
}
