//! The command stream: what a simulation run *is*.
//!
//! A run is fully described by an ordered list of [`SimCommand`]s — every
//! utterance to score (down to the render seed), every hostile
//! connection, every replica kill, every adaptation trigger, each pinned
//! to its tick. Command generation is a pure function of (scenario,
//! seed), never of anything the servers reply, so the same seed produces
//! byte-identical streams no matter how the run behaves — and a stream
//! exported from a failing run reproduces that run from `--replay` alone.
//!
//! Streams travel in the workspace's sealed artifact container
//! (kind `SIMP`), so a corrupted replay file is a typed error, not a
//! silently different simulation.

use lre_artifact::{open, seal, ArtifactError, ArtifactReader, ArtifactWriter};
use lre_corpus::LanguageId;

/// Artifact kind tag for an exported command stream.
pub const STREAM_KIND: [u8; 4] = *b"SIMP";
/// Payload layout revision.
pub const STREAM_VERSION: u32 = 1;

/// Everything needed to render one scoring request deterministically.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UttPlan {
    /// Index into [`LanguageId::all`] (25 entries: 23 targets + 2
    /// out-of-set languages).
    pub language: u8,
    /// Code-switching: render the first half in `language`, the second in
    /// this one.
    pub second_language: Option<u8>,
    /// Utterance length in 10 ms frames.
    pub num_frames: u32,
    /// Master seed for phone sequence + noise.
    pub seed: u64,
    /// Speaker identity seed.
    pub speaker_seed: u64,
    /// Broadcast (VOA) channel when true, telephone (CTS) otherwise.
    pub voa: bool,
    /// Channel SNR in dB — drifts across ticks in drift scenarios.
    pub snr_db: f32,
    /// True when `language` is out-of-set (open-set traffic). Recorded so
    /// invariants can reason about how much alien speech was sent.
    pub open_set: bool,
}

impl UttPlan {
    pub fn language_id(&self) -> LanguageId {
        LanguageId::all()[self.language as usize]
    }

    pub fn second_language_id(&self) -> Option<LanguageId> {
        self.second_language.map(|i| LanguageId::all()[i as usize])
    }
}

/// One simulator action, pinned to its tick.
#[derive(Clone, Debug, PartialEq)]
pub enum SimCommand {
    /// Render the planned utterance and submit it with the deadline.
    Score {
        tick: u32,
        plan: UttPlan,
        deadline_ms: u32,
    },
    /// Open a fresh connection and run fuzz-corpus case
    /// `case_index % corpus_len` against it.
    Hostile { tick: u32, case_index: u32 },
    /// Ask replica `replica` (index into the driver's replica list) to
    /// shut down gracefully mid-run.
    KillReplica { tick: u32, replica: u32 },
    /// Trigger one adaptation cycle on the adapt endpoint.
    Adapt { tick: u32 },
    /// SIGKILL the driver-spawned adapting server (no shutdown handshake,
    /// no fsync opportunity) — the crash-recovery drill. Requires the
    /// driver to own the process (`--adaptd-cmd`).
    CrashAdaptd { tick: u32 },
    /// Respawn the adapting server with the same command (hence the same
    /// `--wal-dir`) and wait until it accepts connections again.
    RestartAdaptd { tick: u32 },
}

impl SimCommand {
    pub fn tick(&self) -> u32 {
        match self {
            SimCommand::Score { tick, .. }
            | SimCommand::Hostile { tick, .. }
            | SimCommand::KillReplica { tick, .. }
            | SimCommand::Adapt { tick }
            | SimCommand::CrashAdaptd { tick }
            | SimCommand::RestartAdaptd { tick } => *tick,
        }
    }
}

const CMD_SCORE: u8 = 1;
const CMD_HOSTILE: u8 = 2;
const CMD_KILL: u8 = 3;
const CMD_ADAPT: u8 = 4;
const CMD_CRASH_ADAPTD: u8 = 5;
const CMD_RESTART_ADAPTD: u8 = 6;
/// `second_language` sentinel for "no code switch".
const NO_SECOND: u8 = 0xFF;

/// A full, self-describing run plan.
#[derive(Clone, Debug, PartialEq)]
pub struct CommandStream {
    /// Scenario name the stream was generated from — replay uses it to
    /// look up the invariant set.
    pub scenario: String,
    pub seed: u64,
    pub ticks: u32,
    pub commands: Vec<SimCommand>,
}

impl CommandStream {
    /// Sealed artifact bytes. Byte-identical for identical streams — the
    /// determinism contract is checked against exactly these bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ArtifactWriter::new();
        w.put_str(&self.scenario);
        w.put_u64(self.seed);
        w.put_u32(self.ticks);
        w.put_u64(self.commands.len() as u64);
        for cmd in &self.commands {
            match cmd {
                SimCommand::Score {
                    tick,
                    plan,
                    deadline_ms,
                } => {
                    w.put_u8(CMD_SCORE);
                    w.put_u32(*tick);
                    w.put_u8(plan.language);
                    w.put_u8(plan.second_language.unwrap_or(NO_SECOND));
                    w.put_u32(plan.num_frames);
                    w.put_u64(plan.seed);
                    w.put_u64(plan.speaker_seed);
                    w.put_u8(plan.voa as u8);
                    w.put_f32(plan.snr_db);
                    w.put_u8(plan.open_set as u8);
                    w.put_u32(*deadline_ms);
                }
                SimCommand::Hostile { tick, case_index } => {
                    w.put_u8(CMD_HOSTILE);
                    w.put_u32(*tick);
                    w.put_u32(*case_index);
                }
                SimCommand::KillReplica { tick, replica } => {
                    w.put_u8(CMD_KILL);
                    w.put_u32(*tick);
                    w.put_u32(*replica);
                }
                SimCommand::Adapt { tick } => {
                    w.put_u8(CMD_ADAPT);
                    w.put_u32(*tick);
                }
                SimCommand::CrashAdaptd { tick } => {
                    w.put_u8(CMD_CRASH_ADAPTD);
                    w.put_u32(*tick);
                }
                SimCommand::RestartAdaptd { tick } => {
                    w.put_u8(CMD_RESTART_ADAPTD);
                    w.put_u32(*tick);
                }
            }
        }
        seal(STREAM_KIND, STREAM_VERSION, &w.into_bytes())
    }

    /// The sealed stream's own CRC-32 (the container trailer) — quoted in
    /// verdict files so a replay can prove it ran the same plan. Read out
    /// of the trailer rather than recomputed over the whole file: the
    /// CRC of `data ‖ crc(data)` is the same residue constant for every
    /// sealed artifact, which identifies nothing.
    pub fn crc32(&self) -> u32 {
        let bytes = self.encode();
        let trailer: [u8; 4] = bytes[bytes.len() - 4..].try_into().expect("sealed trailer");
        u32::from_le_bytes(trailer)
    }

    /// Decode a sealed stream, strictly: bad magic/kind/version/CRC,
    /// truncation, an unknown command tag, an out-of-range language
    /// index, or trailing bytes are all typed errors.
    pub fn decode(bytes: &[u8]) -> Result<CommandStream, ArtifactError> {
        let payload = open(bytes, STREAM_KIND, STREAM_VERSION)?;
        let mut r = ArtifactReader::new(payload);
        let scenario = r.get_str()?;
        let seed = r.get_u64()?;
        let ticks = r.get_u32()?;
        let count = r.get_u64()? as usize;
        // Each command is ≥ 5 bytes; refuse absurd counts before reserving.
        if count > payload.len() / 5 {
            return Err(ArtifactError::Corrupt("command count exceeds payload"));
        }
        let num_languages = LanguageId::all().len() as u8;
        let mut commands = Vec::with_capacity(count);
        for _ in 0..count {
            let cmd = match r.get_u8()? {
                CMD_SCORE => {
                    let tick = r.get_u32()?;
                    let language = r.get_u8()?;
                    let second = r.get_u8()?;
                    let num_frames = r.get_u32()?;
                    let seed = r.get_u64()?;
                    let speaker_seed = r.get_u64()?;
                    let voa = r.get_u8()? != 0;
                    let snr_db = r.get_f32()?;
                    let open_set = r.get_u8()? != 0;
                    let deadline_ms = r.get_u32()?;
                    if language >= num_languages || (second != NO_SECOND && second >= num_languages)
                    {
                        return Err(ArtifactError::Corrupt("language index out of range"));
                    }
                    SimCommand::Score {
                        tick,
                        plan: UttPlan {
                            language,
                            second_language: (second != NO_SECOND).then_some(second),
                            num_frames,
                            seed,
                            speaker_seed,
                            voa,
                            snr_db,
                            open_set,
                        },
                        deadline_ms,
                    }
                }
                CMD_HOSTILE => SimCommand::Hostile {
                    tick: r.get_u32()?,
                    case_index: r.get_u32()?,
                },
                CMD_KILL => SimCommand::KillReplica {
                    tick: r.get_u32()?,
                    replica: r.get_u32()?,
                },
                CMD_ADAPT => SimCommand::Adapt { tick: r.get_u32()? },
                CMD_CRASH_ADAPTD => SimCommand::CrashAdaptd { tick: r.get_u32()? },
                CMD_RESTART_ADAPTD => SimCommand::RestartAdaptd { tick: r.get_u32()? },
                _ => return Err(ArtifactError::Corrupt("unknown sim command tag")),
            };
            if cmd.tick() >= ticks {
                return Err(ArtifactError::Corrupt("command tick beyond the run"));
            }
            commands.push(cmd);
        }
        if r.remaining() != 0 {
            return Err(ArtifactError::TrailingBytes);
        }
        Ok(CommandStream {
            scenario,
            seed,
            ticks,
            commands,
        })
    }
}
