//! # lre-trafficsim — deterministic scenario simulation for the serving tier
//!
//! A traffic simulator that drives a live `lre-serve` instance, an
//! adapting server, or the full router + replica fleet over real TCP with
//! the traffic shapes production sees: diurnal load curves, bursts,
//! hostile clients drawn from the malformed-input fuzz corpus, deadline
//! mixes, channel/SNR drift, code-switching utterances, and open-set
//! segments in languages the system has no detector for.
//!
//! The design splits a run into three strictly separated stages:
//!
//! 1. **Plan** ([`plan`]): a [`CommandStream`] — every utterance (down to
//!    its render seed), every hostile connection, every replica kill and
//!    adaptation trigger, pinned to ticks. Generation
//!    ([`scenario::generate`]) is a pure function of (scenario, seed):
//!    same seed, byte-identical stream.
//! 2. **Drive** ([`driver`]): replay the stream against real processes,
//!    scraping stats and flight-recorder telemetry between ticks. Nothing
//!    observed ever feeds back into the plan.
//! 3. **Judge**: fold the tallies into the scenario's [`InvariantSpec`] —
//!    shed-rate bounds, p99 ceilings, zero torn replies, typed-failure-only
//!    during replica kills, guard rejection under drift, open-set unknowns
//!    actually flagged.
//!
//! Because the plan never depends on live behavior, every run can export
//! its stream to a sealed artifact and any violation reproduces from
//! `--replay <file>` alone — no scenario name, seed, or flags needed.

pub mod driver;
pub mod plan;
pub mod scenario;

pub use driver::{run, RunReport, SimConfig, SIM_CORPUS_SEED};
pub use plan::{CommandStream, SimCommand, UttPlan, STREAM_KIND, STREAM_VERSION};
pub use scenario::{
    builtin_scenarios, burst_kill, by_name, crash_recover, drift_guard, generate, phantom_eject,
    DriftPlan, InvariantSpec, ScenarioSpec,
};
