//! The replay contract, end to end.
//!
//! Two things make a simulator trustworthy: the same seed must produce
//! byte-identical plans, and a run that *fails* must fail identically
//! when re-driven from its exported stream alone. The second is pinned
//! with the deliberately failing `phantom-eject` scenario against a real
//! in-process server: the original run and the replay-from-file run must
//! produce byte-identical verdict text, both FAILing the same invariant.

use lre_artifact::ArtifactError;
use lre_lattice::DecodeScratch;
use lre_serve::{Client, EngineConfig, Scorer, ScorerHandle, Server, ServerConfig, ServerHooks};
use lre_trafficsim::{burst_kill, by_name, generate, phantom_eject, run, CommandStream, SimConfig};
use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

/// Flat mock: LLR `i` is `sum(samples) + i`. Always scores, never fails —
/// the point of these tests is the simulator's plumbing, not the model.
struct MockScorer;

impl Scorer for MockScorer {
    fn score_utt(
        &self,
        samples: &[f32],
        _scratch: &mut DecodeScratch,
    ) -> Result<Vec<f32>, ArtifactError> {
        let s: f32 = samples.iter().sum();
        Ok((0..3).map(|i| s + i as f32).collect())
    }
}

fn start_mock_server() -> Server {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    Server::start_adaptive(
        listener,
        Arc::new(ScorerHandle::new(Arc::new(MockScorer), 0)),
        ServerConfig {
            engine: EngineConfig {
                workers: 2,
                max_batch: 4,
                max_wait: Duration::from_millis(1),
                queue_capacity: 64,
                fast_math: false,
                unknown_threshold: None,
            },
            max_inflight: 32,
            max_global_inflight: 0,
        },
        ServerHooks::default(),
    )
    .expect("server starts")
}

fn stop(addr: std::net::SocketAddr, server: Server) {
    let mut client = Client::connect(addr).expect("connect for shutdown");
    client.shutdown().expect("shutdown acknowledged");
    server.join();
}

#[test]
fn same_seed_is_byte_identical_and_survives_the_file_roundtrip() {
    let spec = burst_kill();
    let a = generate(&spec, 2026);
    let b = generate(&spec, 2026);
    assert_eq!(a.encode(), b.encode(), "same seed must give the same bytes");
    assert_eq!(a.crc32(), b.crc32());

    let path = std::env::temp_dir().join(format!(
        "lre-trafficsim-roundtrip-{}.simp",
        std::process::id()
    ));
    std::fs::write(&path, a.encode()).expect("write stream");
    let back = CommandStream::decode(&std::fs::read(&path).expect("read stream"))
        .expect("exported stream decodes");
    std::fs::remove_file(&path).ok();
    assert_eq!(back, a, "decode(encode(stream)) must be the identity");
    assert_eq!(back.encode(), a.encode(), "re-encode must be byte-stable");
}

#[test]
fn a_violated_invariant_reproduces_from_the_exported_replay_alone() {
    // phantom-eject demands an `eject` flight event but never kills a
    // replica, so it fails deterministically — the pinned proof that a
    // red run stays red on replay.
    let spec = phantom_eject();
    let stream = generate(&spec, 7);

    let server = start_mock_server();
    let addr = server.local_addr();
    let mut cfg = SimConfig::new(addr);
    cfg.tick_ms = 0;
    let original = run(&stream, &spec.invariants, &cfg);
    assert!(!original.pass, "phantom-eject must fail");
    assert!(
        original.verdict_text.contains("FAIL flight:eject"),
        "wrong failure:\n{}",
        original.verdict_text
    );
    assert!(
        original.verdict_text.contains("PASS min-completed"),
        "the mock server should have scored the traffic:\n{}",
        original.verdict_text
    );
    assert!(original.verdict_text.ends_with("result=FAIL\n"));

    // Export, reload, and re-drive from the file alone — scenario name,
    // seed, and invariants all come from the stream itself.
    let path =
        std::env::temp_dir().join(format!("lre-trafficsim-replay-{}.simp", std::process::id()));
    std::fs::write(&path, stream.encode()).expect("export stream");
    let replayed = CommandStream::decode(&std::fs::read(&path).expect("read replay"))
        .expect("replay file decodes");
    std::fs::remove_file(&path).ok();
    let replay_spec = by_name(&replayed.scenario).expect("stream names a builtin scenario");
    assert_eq!(replay_spec.invariants, spec.invariants);

    let replay = run(&replayed, &replay_spec.invariants, &cfg);
    assert!(!replay.pass);
    assert_eq!(
        replay.verdict_text, original.verdict_text,
        "a replayed failure must render the identical verdict"
    );
    stop(addr, server);
}
