//! Phone HMM topology and state bookkeeping.

use lre_phone::PhoneSet;

/// Number of emitting states per phone (standard 3-state left-to-right).
pub const STATES_PER_PHONE: usize = 3;

/// Left-to-right topology parameters shared by every phone HMM.
#[derive(Clone, Copy, Debug)]
pub struct HmmTopology {
    /// Log probability of the self-loop transition.
    pub log_self: f32,
    /// Log probability of advancing to the next state (or exiting).
    pub log_next: f32,
}

impl HmmTopology {
    /// Topology with an expected state occupancy of `expected_frames` frames
    /// (self-loop probability `1 - 1/expected`).
    pub fn with_expected_frames(expected_frames: f32) -> HmmTopology {
        let p_next = (1.0 / expected_frames.max(1.001)).clamp(1e-3, 0.999);
        HmmTopology {
            log_self: (1.0 - p_next).ln(),
            log_next: p_next.ln(),
        }
    }
}

impl Default for HmmTopology {
    fn default() -> Self {
        // Phones average ~7 frames over 3 states ⇒ ~2.3 frames/state.
        Self::with_expected_frames(2.3)
    }
}

/// Maps between (phone, state) pairs and the dense state-index space used by
/// emission scorers and the decoder.
#[derive(Clone, Debug)]
pub struct StateInventory {
    num_phones: usize,
}

impl StateInventory {
    pub fn new(phone_set: &PhoneSet) -> StateInventory {
        StateInventory {
            num_phones: phone_set.len(),
        }
    }

    pub fn from_phone_count(num_phones: usize) -> StateInventory {
        StateInventory { num_phones }
    }

    #[inline]
    pub fn num_phones(&self) -> usize {
        self.num_phones
    }

    /// Total number of emitting states.
    #[inline]
    pub fn num_states(&self) -> usize {
        self.num_phones * STATES_PER_PHONE
    }

    /// Dense state index of `(phone, state)`.
    #[inline]
    pub fn state_of(&self, phone: usize, state: usize) -> usize {
        debug_assert!(phone < self.num_phones && state < STATES_PER_PHONE);
        phone * STATES_PER_PHONE + state
    }

    /// `(phone, state)` of a dense state index.
    #[inline]
    pub fn phone_of(&self, state_idx: usize) -> (usize, usize) {
        (state_idx / STATES_PER_PHONE, state_idx % STATES_PER_PHONE)
    }

    /// Whether the state is a phone-entry state.
    #[inline]
    pub fn is_entry(&self, state_idx: usize) -> bool {
        state_idx.is_multiple_of(STATES_PER_PHONE)
    }

    /// Whether the state is a phone-exit state.
    #[inline]
    pub fn is_exit(&self, state_idx: usize) -> bool {
        state_idx % STATES_PER_PHONE == STATES_PER_PHONE - 1
    }

    /// Assign a within-phone state (0..3) to a frame at relative position
    /// `pos` within a phone segment of `len` frames — the uniform three-way
    /// split used for supervised training targets.
    pub fn uniform_state(pos: usize, len: usize) -> usize {
        debug_assert!(pos < len.max(1));
        (pos * STATES_PER_PHONE / len.max(1)).min(STATES_PER_PHONE - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_probabilities_normalize() {
        let t = HmmTopology::default();
        let total = t.log_self.exp() + t.log_next.exp();
        assert!((total - 1.0).abs() < 1e-5);
    }

    #[test]
    fn expected_occupancy_controls_self_loop() {
        let short = HmmTopology::with_expected_frames(1.5);
        let long = HmmTopology::with_expected_frames(10.0);
        assert!(long.log_self > short.log_self);
    }

    #[test]
    fn state_index_roundtrip() {
        let inv = StateInventory::from_phone_count(47);
        assert_eq!(inv.num_states(), 141);
        for phone in [0, 13, 46] {
            for state in 0..STATES_PER_PHONE {
                let s = inv.state_of(phone, state);
                assert_eq!(inv.phone_of(s), (phone, state));
            }
        }
    }

    #[test]
    fn entry_exit_flags() {
        let inv = StateInventory::from_phone_count(5);
        assert!(inv.is_entry(0) && !inv.is_exit(0));
        assert!(inv.is_exit(2) && !inv.is_entry(2));
        assert!(inv.is_entry(3));
    }

    #[test]
    fn uniform_state_split_covers_all_states() {
        // A 9-frame segment: 3 frames per state.
        let states: Vec<usize> = (0..9)
            .map(|p| StateInventory::uniform_state(p, 9))
            .collect();
        assert_eq!(states, vec![0, 0, 0, 1, 1, 1, 2, 2, 2]);
        // Degenerate 1-frame segment stays in state 0.
        assert_eq!(StateInventory::uniform_state(0, 1), 0);
        // 2-frame segment: first state then last.
        assert_eq!(StateInventory::uniform_state(0, 2), 0);
        assert_eq!(StateInventory::uniform_state(1, 2), 1);
    }
}
