//! Feature front-ends: MFCC or PLP base cepstra + Δ + ΔΔ + CMVN.

use lre_dsp::{append_deltas, cmvn_in_place, mfcc, plp, FrameMatrix, MfccConfig, PlpConfig};

/// Normalization applied after delta appending.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Normalization {
    /// No per-utterance normalization (the acoustic model applies its own
    /// global transform; see `AcousticModel::feature_transform`).
    None,
    /// Cepstral mean subtraction only.
    Cms,
    /// Mean and variance normalization.
    Cmvn,
}

/// Which base cepstral analysis a recognizer uses. The paper's GMM-HMM and
/// DNN-HMM recognizers use PLP; MFCC is the classic alternative named in §1
/// as the third diversification axis, used here by the ANN-HMM front-ends.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FeatureKind {
    Mfcc,
    Plp,
}

impl FeatureKind {
    pub fn name(&self) -> &'static str {
        match self {
            FeatureKind::Mfcc => "mfcc",
            FeatureKind::Plp => "plp",
        }
    }
}

/// Feature dimension produced by [`extract_features`]: 13 cepstra × (static,
/// Δ, ΔΔ), the paper's 39-dimension configuration.
pub const FEATURE_DIM: usize = 39;

/// Extract normalized 39-dimensional features from raw samples.
///
/// Produces CMS-normalized features: per-utterance cepstral *mean*
/// subtraction (channel compensation, §4.1's conversation-side
/// normalization) — but **not** per-utterance variance scaling. Variance
/// normalization to unit scale is applied as a *global* transform owned by
/// the acoustic model: per-utterance variance depends on the utterance's
/// phone mix, which couples the feature space to the spoken language and
/// wrecks cross-language decoding (verified in this reproduction; see
/// DESIGN.md).
pub fn extract_features(samples: &[f32], kind: FeatureKind) -> FrameMatrix {
    extract_features_with(samples, kind, Normalization::Cms)
}

/// Extract features with an explicit normalization choice.
pub fn extract_features_with(
    samples: &[f32],
    kind: FeatureKind,
    norm: Normalization,
) -> FrameMatrix {
    let base = match kind {
        FeatureKind::Mfcc => mfcc(samples, &MfccConfig::default()),
        FeatureKind::Plp => plp(samples, &PlpConfig::default()),
    };
    let mut full = append_deltas(&base, 2);
    match norm {
        Normalization::None => {}
        Normalization::Cms => cms_in_place(&mut full),
        Normalization::Cmvn => cmvn_in_place(&mut full),
    }
    debug_assert_eq!(full.dim(), FEATURE_DIM);
    full
}

/// Mean-subtract each dimension in place (no variance scaling).
fn cms_in_place(feats: &mut FrameMatrix) {
    let t_max = feats.num_frames();
    if t_max == 0 {
        return;
    }
    let d = feats.dim();
    let mut mean = vec![0.0f64; d];
    for fr in feats.iter() {
        for i in 0..d {
            mean[i] += fr[i] as f64;
        }
    }
    let n = t_max as f64;
    let mean32: Vec<f32> = mean.iter().map(|m| (*m / n) as f32).collect();
    for t in 0..t_max {
        let fr = feats.frame_mut(t);
        for i in 0..d {
            fr[i] -= mean32[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone() -> Vec<f32> {
        (0..8000)
            .map(|i| (2.0 * std::f32::consts::PI * 600.0 * i as f32 / 8000.0).sin())
            .collect()
    }

    #[test]
    fn dimension_is_39() {
        for kind in [FeatureKind::Mfcc, FeatureKind::Plp] {
            let f = extract_features(&tone(), kind);
            assert_eq!(f.dim(), FEATURE_DIM);
            assert!(f.num_frames() > 90);
        }
    }

    #[test]
    fn cmvn_variant_is_normalized() {
        let f = extract_features_with(&tone(), FeatureKind::Mfcc, Normalization::Cmvn);
        for d in 0..f.dim() {
            let n = f.num_frames() as f64;
            let mean: f64 = f.iter().map(|fr| fr[d] as f64).sum::<f64>() / n;
            assert!(mean.abs() < 2e-2, "dim {d} mean {mean}");
        }
    }

    #[test]
    fn kinds_produce_different_features() {
        // Compare un-normalized features: CMS zeroes a steady-state tone.
        let a = extract_features_with(&tone(), FeatureKind::Mfcc, Normalization::None);
        let b = extract_features_with(&tone(), FeatureKind::Plp, Normalization::None);
        assert_eq!(a.num_frames(), b.num_frames());
        let diff: f32 = a
            .as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(x, y)| (x - y).abs())
            .sum();
        assert!(diff > 1.0);
    }
}
