//! Supervised acoustic-model training from the synthetic corpus.

use crate::frontend::{extract_features, FeatureKind, FEATURE_DIM};
use crate::gmm::DiagGmm;
use crate::hmm::{HmmTopology, StateInventory};
use crate::nn::{Mlp, PretrainConfig, TrainConfig as NnTrainConfig};
use crate::scorer::{FrameScorer, GmmStateScorer, NnStateScorer};
use lre_artifact::{ArtifactError, ArtifactRead, ArtifactReader, ArtifactWrite, ArtifactWriter};
use lre_corpus::{render_utterance, DeriveRng, LanguageModel, UttSpec};
use lre_phone::{PhoneSet, UniversalInventory};
use rayon::prelude::*;

/// Acoustic-model family, matching the paper's three front-end types (§4.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AmFamily {
    /// Tied-state GMM-HMM (Tsinghua EN/MA recognizers).
    GmmHmm,
    /// Shallow-network hybrid (BUT TRAPs-style HU/RU/CZ recognizers).
    AnnHmm,
    /// Deep-network hybrid (Tsinghua EN recognizer).
    DnnHmm,
}

impl AmFamily {
    pub fn name(&self) -> &'static str {
        match self {
            AmFamily::GmmHmm => "GMM-HMM",
            AmFamily::AnnHmm => "ANN-HMM",
            AmFamily::DnnHmm => "DNN-HMM",
        }
    }
}

/// Training configuration for one recognizer's acoustic model.
#[derive(Clone, Debug)]
pub struct AmTrainConfig {
    pub family: AmFamily,
    pub feature: FeatureKind,
    /// Gaussians per state for [`AmFamily::GmmHmm`].
    pub gmm_mixtures: usize,
    pub gmm_em_iters: usize,
    /// Hidden layer sizes: one entry for ANN, several for DNN.
    pub hidden_sizes: Vec<usize>,
    pub nn: NnTrainConfig,
    /// Layer-wise pretraining (the paper applies DBN pretraining to its DNN
    /// front-end, following its ref. 24); `None` = random init only.
    pub pretrain: Option<PretrainConfig>,
    pub seed: u64,
}

impl AmTrainConfig {
    /// Paper-shaped defaults per family: PLP features for the Tsinghua
    /// recognizers, MFCC for the BUT-style ANNs; 32-Gaussian states scaled
    /// down to the synthetic corpus size.
    pub fn for_family(family: AmFamily, seed: u64) -> AmTrainConfig {
        let (feature, hidden) = match family {
            AmFamily::GmmHmm => (FeatureKind::Plp, vec![]),
            AmFamily::AnnHmm => (FeatureKind::Mfcc, vec![128]),
            AmFamily::DnnHmm => (FeatureKind::Plp, vec![128, 96]),
        };
        AmTrainConfig {
            family,
            feature,
            gmm_mixtures: 8,
            gmm_em_iters: 6,
            hidden_sizes: hidden,
            nn: NnTrainConfig::default(),
            // The paper pretrains its DNN (ref. [24]); the shallow ANN and
            // the GMMs are not pretrained.
            pretrain: if family == AmFamily::DnnHmm {
                Some(PretrainConfig::default())
            } else {
                None
            },
            seed,
        }
    }
}

/// A trained recognizer acoustic model: emission scorer + topology + state
/// bookkeeping + which feature front-end it expects.
pub struct AcousticModel {
    pub scorer: Box<dyn FrameScorer>,
    pub topology: HmmTopology,
    pub inventory: StateInventory,
    pub feature: FeatureKind,
    /// Global feature normalization `(mean, inv_std)` estimated on the AM
    /// training frames; applied identically to every utterance so the
    /// feature space is independent of each utterance's phone mix.
    pub feature_transform: FeatureTransform,
    /// Held-out frame accuracy (NN families) or `None` (GMM).
    pub train_diagnostic: Option<f32>,
}

/// A fixed affine per-dimension normalization.
#[derive(Clone, Debug)]
pub struct FeatureTransform {
    mean: Vec<f32>,
    inv_std: Vec<f32>,
}

impl FeatureTransform {
    /// Identity transform of the given dimension.
    pub fn identity(dim: usize) -> FeatureTransform {
        FeatureTransform {
            mean: vec![0.0; dim],
            inv_std: vec![1.0; dim],
        }
    }

    /// Estimate from flat `n × dim` frames.
    pub fn fit(frames: &[f32], dim: usize) -> FeatureTransform {
        let n = frames.len() / dim;
        if n == 0 {
            return FeatureTransform::identity(dim);
        }
        let mut mean = vec![0.0f64; dim];
        let mut sq = vec![0.0f64; dim];
        for f in frames.chunks_exact(dim) {
            for (d, &v) in f.iter().enumerate() {
                mean[d] += v as f64;
                sq[d] += (v as f64) * (v as f64);
            }
        }
        let nf = n as f64;
        let mut m32 = vec![0.0f32; dim];
        let mut is32 = vec![1.0f32; dim];
        for d in 0..dim {
            mean[d] /= nf;
            let var = (sq[d] / nf - mean[d] * mean[d]).max(1e-8);
            m32[d] = mean[d] as f32;
            is32[d] = (1.0 / var.sqrt()) as f32;
        }
        FeatureTransform {
            mean: m32,
            inv_std: is32,
        }
    }

    /// Apply in place to every frame of a feature matrix.
    pub fn apply(&self, feats: &mut lre_dsp::FrameMatrix) {
        let d = feats.dim();
        assert_eq!(d, self.mean.len());
        for t in 0..feats.num_frames() {
            let fr = feats.frame_mut(t);
            for ((v, &m), &s) in fr.iter_mut().zip(&self.mean).zip(&self.inv_std) {
                *v = (*v - m) * s;
            }
        }
    }

    /// Normalize a flat frame buffer in place.
    pub fn apply_flat(&self, frames: &mut [f32]) {
        let d = self.mean.len();
        for f in frames.chunks_exact_mut(d) {
            for ((v, &m), &s) in f.iter_mut().zip(&self.mean).zip(&self.inv_std) {
                *v = (*v - m) * s;
            }
        }
    }
}

/// Render the training utterances and build `(frames, state_labels)` —
/// the supervised targets come from the corpus's reference alignments,
/// projected into the recognizer's phone set and split uniformly into the
/// 3 HMM states per phone segment.
pub fn collect_training_frames(
    phone_set: &PhoneSet,
    utts: &[UttSpec],
    lang: &LanguageModel,
    inv: &UniversalInventory,
    feature: FeatureKind,
) -> (Vec<f32>, Vec<u32>) {
    let state_inv = StateInventory::new(phone_set);
    let per_utt: Vec<(Vec<f32>, Vec<u32>)> = utts
        .par_iter()
        .map(|spec| {
            let rendered = render_utterance(spec, lang, inv);
            let feats = extract_features(&rendered.samples, feature);
            let t_max = feats.num_frames().min(rendered.alignment.len());

            // Project the alignment into the recognizer's phone set and find
            // contiguous segments.
            let set_phones: Vec<usize> = rendered.alignment[..t_max]
                .iter()
                .map(|&u| phone_set.project(u as usize))
                .collect();
            let mut labels = Vec::with_capacity(t_max);
            let mut start = 0usize;
            while start < t_max {
                let mut end = start + 1;
                while end < t_max && set_phones[end] == set_phones[start] {
                    end += 1;
                }
                let len = end - start;
                for pos in 0..len {
                    let st = StateInventory::uniform_state(pos, len);
                    labels.push(state_inv.state_of(set_phones[start], st) as u32);
                }
                start = end;
            }

            let frames = feats.as_slice()[..t_max * feats.dim()].to_vec();
            (frames, labels)
        })
        .collect();

    let total: usize = per_utt.iter().map(|(_, l)| l.len()).sum();
    let mut frames = Vec::with_capacity(total * FEATURE_DIM);
    let mut labels = Vec::with_capacity(total);
    for (f, l) in per_utt {
        frames.extend_from_slice(&f);
        labels.extend_from_slice(&l);
    }
    (frames, labels)
}

/// Train an acoustic model for `phone_set` on the given utterances.
pub fn train_acoustic_model(
    phone_set: &PhoneSet,
    utts: &[UttSpec],
    lang: &LanguageModel,
    inv: &UniversalInventory,
    cfg: &AmTrainConfig,
) -> AcousticModel {
    let (mut frames, labels) = collect_training_frames(phone_set, utts, lang, inv, cfg.feature);
    let transform = FeatureTransform::fit(&frames, FEATURE_DIM);
    transform.apply_flat(&mut frames);
    let state_inv = StateInventory::new(phone_set);
    let num_states = state_inv.num_states();
    let node = DeriveRng::new(cfg.seed).derive(0xA0DE_1000 + cfg.family as u64);

    match cfg.family {
        AmFamily::GmmHmm => {
            // Partition frames by state, then train per-state GMMs in parallel.
            let mut by_state: Vec<Vec<f32>> = vec![Vec::new(); num_states];
            for (i, &l) in labels.iter().enumerate() {
                by_state[l as usize]
                    .extend_from_slice(&frames[i * FEATURE_DIM..(i + 1) * FEATURE_DIM]);
            }
            // Global background Gaussian over all frames: appended to every
            // state GMM with small weight so off-distribution frames (other
            // languages, unseen noise) degrade gracefully instead of
            // collapsing the state likelihoods.
            let transform_stats = FeatureTransform::fit(&frames, FEATURE_DIM);
            let _ = &transform_stats;
            let gmms: Vec<DiagGmm> = by_state
                .par_iter()
                .enumerate()
                .map(|(s, data)| {
                    let mut rng = node.derive(s as u64).rng();
                    let g = DiagGmm::train(
                        data,
                        FEATURE_DIM,
                        cfg.gmm_mixtures,
                        cfg.gmm_em_iters,
                        &mut rng,
                    );
                    g.with_background(0.08, 3.0)
                })
                .collect();
            AcousticModel {
                scorer: Box::new(GmmStateScorer::new(gmms)),
                topology: HmmTopology::default(),
                inventory: state_inv,
                feature: cfg.feature,
                feature_transform: transform,
                train_diagnostic: None,
            }
        }
        AmFamily::AnnHmm | AmFamily::DnnHmm => {
            let mut sizes = vec![FEATURE_DIM];
            sizes.extend_from_slice(&cfg.hidden_sizes);
            sizes.push(num_states);
            let mut rng = node.rng();
            let mut net = Mlp::new(&sizes, &mut rng);
            if let Some(pre) = &cfg.pretrain {
                net.pretrain(&frames, pre, &mut rng);
            }
            let acc = net.train(&frames, &labels, &cfg.nn, &mut rng);

            // State priors from the label histogram (for scaled likelihoods).
            let mut priors = vec![0.0f32; num_states];
            for &l in &labels {
                priors[l as usize] += 1.0;
            }
            AcousticModel {
                scorer: Box::new(NnStateScorer::new(net, &priors)),
                topology: HmmTopology::default(),
                inventory: state_inv,
                feature: cfg.feature,
                feature_transform: transform,
                train_diagnostic: Some(acc),
            }
        }
    }
}

impl ArtifactWrite for FeatureTransform {
    const KIND: [u8; 4] = *b"FTRN";
    const VERSION: u32 = 1;

    fn write_payload(&self, w: &mut ArtifactWriter) {
        w.put_f32_slice(&self.mean);
        w.put_f32_slice(&self.inv_std);
    }
}

impl ArtifactRead for FeatureTransform {
    fn read_payload(r: &mut ArtifactReader) -> Result<FeatureTransform, ArtifactError> {
        let mean = r.get_f32_slice()?;
        let inv_std = r.get_f32_slice()?;
        if mean.is_empty() || mean.len() != inv_std.len() {
            return Err(ArtifactError::Corrupt("feature transform shapes disagree"));
        }
        Ok(FeatureTransform { mean, inv_std })
    }
}

const SCORER_TAG_GMM: u8 = 0;
const SCORER_TAG_NN: u8 = 1;

impl ArtifactWrite for AcousticModel {
    const KIND: [u8; 4] = *b"AMDL";
    const VERSION: u32 = 1;

    fn write_payload(&self, w: &mut ArtifactWriter) {
        let any = self.scorer.as_any();
        if let Some(g) = any.downcast_ref::<GmmStateScorer>() {
            w.put_u8(SCORER_TAG_GMM);
            g.write_payload(w);
        } else if let Some(n) = any.downcast_ref::<NnStateScorer>() {
            w.put_u8(SCORER_TAG_NN);
            n.write_payload(w);
        } else {
            // The workspace has exactly two production scorer families;
            // anything else (bench shims) is not a persistable model.
            panic!("cannot serialize an AcousticModel with a non-standard scorer");
        }
        w.put_f32(self.topology.log_self);
        w.put_f32(self.topology.log_next);
        w.put_u32(self.inventory.num_phones() as u32);
        w.put_u8(match self.feature {
            FeatureKind::Mfcc => 0,
            FeatureKind::Plp => 1,
        });
        self.feature_transform.write_payload(w);
        match self.train_diagnostic {
            Some(v) => {
                w.put_u8(1);
                w.put_f32(v);
            }
            None => w.put_u8(0),
        }
    }
}

impl ArtifactRead for AcousticModel {
    fn read_payload(r: &mut ArtifactReader) -> Result<AcousticModel, ArtifactError> {
        let scorer: Box<dyn FrameScorer> = match r.get_u8()? {
            SCORER_TAG_GMM => Box::new(GmmStateScorer::read_payload(r)?),
            SCORER_TAG_NN => Box::new(NnStateScorer::read_payload(r)?),
            _ => return Err(ArtifactError::Corrupt("unknown scorer family tag")),
        };
        let topology = HmmTopology {
            log_self: r.get_f32()?,
            log_next: r.get_f32()?,
        };
        let num_phones = r.get_u32()? as usize;
        let inventory = StateInventory::from_phone_count(num_phones);
        if num_phones == 0 || scorer.num_states() != inventory.num_states() {
            return Err(ArtifactError::Corrupt("scorer states != phone inventory"));
        }
        let feature = match r.get_u8()? {
            0 => FeatureKind::Mfcc,
            1 => FeatureKind::Plp,
            _ => return Err(ArtifactError::Corrupt("unknown feature kind tag")),
        };
        let feature_transform = FeatureTransform::read_payload(r)?;
        let train_diagnostic = match r.get_u8()? {
            0 => None,
            1 => Some(r.get_f32()?),
            _ => return Err(ArtifactError::Corrupt("bad train-diagnostic flag")),
        };
        Ok(AcousticModel {
            scorer,
            topology,
            inventory,
            feature,
            feature_transform,
            train_diagnostic,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lre_corpus::{build_language, Channel, LanguageId};
    use lre_phone::PhoneSetId;

    fn tiny_utts(lang: LanguageId, n: usize) -> Vec<UttSpec> {
        (0..n)
            .map(|i| UttSpec {
                language: lang,
                speaker_seed: i as u64,
                channel: Channel::telephone(25.0),
                num_frames: 120,
                seed: 1000 + i as u64,
            })
            .collect()
    }

    fn setup() -> (UniversalInventory, PhoneSet, LanguageModel, Vec<UttSpec>) {
        let inv = UniversalInventory::new();
        let set = PhoneSet::standard(PhoneSetId::Cz, &inv);
        let lang = build_language(LanguageId::Czech, 7, &inv);
        let utts = tiny_utts(LanguageId::Czech, 6);
        (inv, set, lang, utts)
    }

    #[test]
    fn collect_frames_shapes_align() {
        let (inv, set, lang, utts) = setup();
        let (frames, labels) = collect_training_frames(&set, &utts, &lang, &inv, FeatureKind::Mfcc);
        assert_eq!(frames.len(), labels.len() * FEATURE_DIM);
        assert!(labels.len() >= 6 * 100, "labels: {}", labels.len());
        let max_state = (set.len() * 3) as u32;
        assert!(labels.iter().all(|&l| l < max_state));
    }

    #[test]
    fn gmm_family_trains_and_scores() {
        let (inv, set, lang, utts) = setup();
        let cfg = AmTrainConfig {
            gmm_mixtures: 2,
            gmm_em_iters: 1,
            ..AmTrainConfig::for_family(AmFamily::GmmHmm, 3)
        };
        let am = train_acoustic_model(&set, &utts, &lang, &inv, &cfg);
        assert_eq!(am.scorer.num_states(), set.len() * 3);
        let mut out = vec![0.0; am.scorer.num_states()];
        am.scorer.score_frame(&[0.0; FEATURE_DIM], &mut out);
        assert!(out.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn ann_family_trains_with_diagnostic() {
        let (inv, set, lang, utts) = setup();
        let mut cfg = AmTrainConfig::for_family(AmFamily::AnnHmm, 3);
        cfg.hidden_sizes = vec![16];
        cfg.nn.epochs = 2;
        let am = train_acoustic_model(&set, &utts, &lang, &inv, &cfg);
        let acc = am.train_diagnostic.expect("NN family reports accuracy");
        // Far better than the 1/129-state chance level.
        assert!(acc > 0.05, "frame accuracy {acc}");
    }
}
