//! Feed-forward neural networks for frame classification.
//!
//! One hidden layer reproduces the BUT-style **ANN** front-ends; a deeper
//! stack reproduces the Tsinghua **DNN** (§4.1). Training follows the
//! paper's recipe in miniature: sigmoid hidden units, softmax output,
//! minibatch SGD with the learning rate halved whenever held-out frame
//! accuracy degrades ("the learning rate is reduced by a factor of 2 if the
//! accuracy decreases"). The DBN pretraining of the paper's ref. 24 is realized as greedy
//! layer-wise *denoising-autoencoder* pretraining ([`Mlp::pretrain`]) — the
//! standard CD-free stand-in with the same role: initialize each hidden
//! layer so that fine-tuning starts from a representation of the input
//! rather than from noise.

use rand::RngExt;

/// A multi-layer perceptron: sigmoid hidden layers, softmax output.
#[derive(Clone, Debug)]
pub struct Mlp {
    /// Layer sizes including input and output, e.g. `[39, 96, 96, 141]`.
    sizes: Vec<usize>,
    /// Per-layer weights, flat `out × in`, row-major.
    weights: Vec<Vec<f32>>,
    /// Per-layer biases.
    biases: Vec<Vec<f32>>,
}

/// SGD hyperparameters.
#[derive(Clone, Copy, Debug)]
pub struct TrainConfig {
    pub epochs: usize,
    pub batch_size: usize,
    pub initial_lr: f32,
    /// Classical momentum coefficient.
    pub momentum: f32,
    /// Fraction of the data held out for the LR schedule.
    pub holdout_fraction: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 24,
            batch_size: 32,
            initial_lr: 0.4,
            momentum: 0.9,
            holdout_fraction: 0.08,
        }
    }
}

/// Greedy layer-wise pretraining hyperparameters.
#[derive(Clone, Copy, Debug)]
pub struct PretrainConfig {
    pub epochs: usize,
    pub batch_size: usize,
    pub lr: f32,
    /// Std-dev of the Gaussian input corruption (denoising criterion).
    pub noise_std: f32,
}

impl Default for PretrainConfig {
    fn default() -> Self {
        Self {
            epochs: 4,
            batch_size: 32,
            lr: 0.05,
            noise_std: 0.2,
        }
    }
}

#[inline]
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

impl Mlp {
    /// Random initialization with per-layer scale `1/√fan_in`.
    pub fn new<R: RngExt>(sizes: &[usize], rng: &mut R) -> Mlp {
        assert!(sizes.len() >= 2, "need at least input and output layers");
        let mut weights = Vec::new();
        let mut biases = Vec::new();
        for l in 0..sizes.len() - 1 {
            let (fan_in, fan_out) = (sizes[l], sizes[l + 1]);
            let scale = 1.0 / (fan_in as f32).sqrt();
            let w: Vec<f32> = (0..fan_in * fan_out)
                .map(|_| (rng.random::<f32>() * 2.0 - 1.0) * scale)
                .collect();
            weights.push(w);
            biases.push(vec![0.0; fan_out]);
        }
        Mlp {
            sizes: sizes.to_vec(),
            weights,
            biases,
        }
    }

    pub fn input_dim(&self) -> usize {
        self.sizes[0]
    }

    pub fn output_dim(&self) -> usize {
        *self.sizes.last().unwrap()
    }

    pub fn num_layers(&self) -> usize {
        self.sizes.len() - 1
    }

    /// Forward pass; returns the activations of every layer (layer 0 = input
    /// copy). The final layer activation is the softmax posterior.
    fn forward_full(&self, x: &[f32]) -> Vec<Vec<f32>> {
        let mut acts = Vec::with_capacity(self.sizes.len());
        acts.push(x.to_vec());
        for l in 0..self.num_layers() {
            let (n_in, n_out) = (self.sizes[l], self.sizes[l + 1]);
            let prev = &acts[l];
            let mut z = self.biases[l].clone();
            let w = &self.weights[l];
            for (o, zo) in z.iter_mut().enumerate() {
                let row = &w[o * n_in..(o + 1) * n_in];
                let mut acc = 0.0f32;
                for (ri, pi) in row.iter().zip(prev) {
                    acc += ri * pi;
                }
                *zo += acc;
            }
            if l + 1 == self.num_layers() {
                softmax_in_place(&mut z);
            } else {
                z.iter_mut().for_each(|v| *v = sigmoid(*v));
            }
            acts.push(z);
            let _ = n_out;
        }
        acts
    }

    /// Class posteriors for a frame.
    pub fn posteriors(&self, x: &[f32]) -> Vec<f32> {
        self.forward_full(x).pop().unwrap()
    }

    /// Log posteriors written into `out` (length `output_dim`).
    pub fn log_posteriors_into(&self, x: &[f32], out: &mut [f32]) {
        let p = self.posteriors(x);
        for (o, v) in out.iter_mut().zip(&p) {
            *o = v.max(1e-12).ln();
        }
    }

    /// Log posteriors for a flat block of frames (`n × input_dim` in,
    /// `n × output_dim` out, both row-major).
    ///
    /// Each layer is one blocked `X·Wᵀ + b` ([`lre_linalg::gemm_xwt_f32`])
    /// over the whole block instead of a per-frame matvec, with two
    /// ping-pong activation buffers replacing the per-frame/per-layer `Vec`
    /// allocations of [`Mlp::posteriors`]. The kernel keeps each dot
    /// product's accumulation order, and the sigmoid/softmax/log steps are
    /// applied row-wise in the scalar path's exact sequence, so the output
    /// is bit-identical to calling [`Mlp::log_posteriors_into`] per frame.
    pub fn log_posteriors_block(&self, frames: &[f32], out: &mut [f32]) {
        self.log_posteriors_block_impl(frames, out, false);
    }

    /// [`Mlp::log_posteriors_block`] with the transcendentals (hidden-layer
    /// sigmoid, output softmax, final log) swapped for the
    /// [`crate::fastmath`] kernels. The GEMMs are unchanged, so the error is
    /// the kernel error propagated through the remaining layers — small in
    /// practice but *not* bit-identical; see the FastMath contract in
    /// DESIGN.md.
    pub fn log_posteriors_block_fast(&self, frames: &[f32], out: &mut [f32]) {
        self.log_posteriors_block_impl(frames, out, true);
    }

    /// Mode-dispatched block forward pass.
    pub fn log_posteriors_block_mode(
        &self,
        frames: &[f32],
        out: &mut [f32],
        mode: crate::fastmath::ScoringMode,
    ) {
        self.log_posteriors_block_impl(frames, out, mode.is_fast());
    }

    fn log_posteriors_block_impl(&self, frames: &[f32], out: &mut [f32], fast: bool) {
        let n_in = self.input_dim();
        debug_assert!(n_in > 0);
        let n = frames.len() / n_in;
        debug_assert_eq!(frames.len(), n * n_in);
        debug_assert_eq!(out.len(), n * self.output_dim());
        if n == 0 {
            return;
        }
        let max_width = self.sizes.iter().copied().max().unwrap();
        let mut a = vec![0.0f32; n * max_width];
        a[..frames.len()].copy_from_slice(frames);
        let mut b = vec![0.0f32; n * max_width];
        for l in 0..self.num_layers() {
            let (k, n_out) = (self.sizes[l], self.sizes[l + 1]);
            let z = &mut b[..n * n_out];
            lre_linalg::gemm_xwt_f32(&a[..n * k], &self.weights[l], &self.biases[l], k, z);
            if l + 1 == self.num_layers() {
                for row in z.chunks_exact_mut(n_out) {
                    if fast {
                        fast_softmax_in_place(row);
                    } else {
                        softmax_in_place(row);
                    }
                }
            } else if fast {
                z.iter_mut()
                    .for_each(|v| *v = crate::fastmath::fast_sigmoid(*v));
            } else {
                z.iter_mut().for_each(|v| *v = sigmoid(*v));
            }
            std::mem::swap(&mut a, &mut b);
        }
        if fast {
            for (o, &p) in out.iter_mut().zip(a[..n * self.output_dim()].iter()) {
                *o = crate::fastmath::fast_ln(p.max(1e-12));
            }
        } else {
            for (o, &p) in out.iter_mut().zip(a[..n * self.output_dim()].iter()) {
                *o = p.max(1e-12).ln();
            }
        }
    }

    /// Greedy layer-wise denoising-autoencoder pretraining on unlabeled
    /// frames: every hidden layer is trained to reconstruct its (corrupted)
    /// input through a tied-weight linear decoder, then the data is pushed
    /// through the trained layer and the next layer repeats. The softmax
    /// output layer is left at its random initialization (it is supervised
    /// by definition). Returns the per-layer final reconstruction MSEs.
    pub fn pretrain<R: RngExt>(
        &mut self,
        frames: &[f32],
        cfg: &PretrainConfig,
        rng: &mut R,
    ) -> Vec<f32> {
        let n = frames.len() / self.input_dim();
        if n == 0 {
            return Vec::new();
        }
        let mut mses = Vec::new();
        // Current representation of the data (layer-by-layer).
        let mut data: Vec<f32> = frames.to_vec();
        let mut dim = self.input_dim();

        for l in 0..self.num_layers().saturating_sub(1) {
            let n_out = self.sizes[l + 1];
            // Decoder bias (encoder weights/bias are the layer's own).
            let mut dec_bias = vec![0.0f32; dim];
            let mut order: Vec<usize> = (0..n).collect();
            let mut last_mse = 0.0f32;

            for _epoch in 0..cfg.epochs {
                for i in (1..n).rev() {
                    order.swap(i, rng.random_range(0..=i));
                }
                let mut epoch_se = 0.0f64;
                for batch in order.chunks(cfg.batch_size) {
                    let mut gw = vec![0.0f32; n_out * dim];
                    let mut gb = vec![0.0f32; n_out];
                    let mut gc = vec![0.0f32; dim];
                    for &i in batch {
                        let x = &data[i * dim..(i + 1) * dim];
                        // Corrupt input (denoising criterion).
                        let xc: Vec<f32> = x
                            .iter()
                            .map(|&v| {
                                let u1: f32 = rng.random::<f32>().max(1e-7);
                                let u2: f32 = rng.random();
                                let g = (-2.0 * u1.ln()).sqrt()
                                    * (2.0 * std::f32::consts::PI * u2).cos();
                                v + cfg.noise_std * g
                            })
                            .collect();
                        // Encode.
                        let mut h = vec![0.0f32; n_out];
                        for (o, ho) in h.iter_mut().enumerate() {
                            let row = &self.weights[l][o * dim..(o + 1) * dim];
                            let mut acc = self.biases[l][o];
                            for (w, v) in row.iter().zip(&xc) {
                                acc += w * v;
                            }
                            *ho = sigmoid(acc);
                        }
                        // Decode with tied weights: x̂ = Wᵀh + c.
                        let mut xhat = dec_bias.clone();
                        for (o, &ho) in h.iter().enumerate() {
                            let row = &self.weights[l][o * dim..(o + 1) * dim];
                            for (xh, &w) in xhat.iter_mut().zip(row) {
                                *xh += w * ho;
                            }
                        }
                        // Reconstruction error against the *clean* input.
                        let err: Vec<f32> = xhat.iter().zip(x).map(|(a, b)| a - b).collect();
                        epoch_se += err.iter().map(|e| (*e as f64) * (*e as f64)).sum::<f64>();
                        // Gradients. dL/dxhat = 2 err (drop the 2 into lr).
                        for (g, e) in gc.iter_mut().zip(&err) {
                            *g += e;
                        }
                        // Hidden delta: dL/dh_o = Σ_j err_j W_oj; through σ'.
                        for o in 0..n_out {
                            let row = &self.weights[l][o * dim..(o + 1) * dim];
                            let mut dh = 0.0f32;
                            for (e, w) in err.iter().zip(row) {
                                dh += e * w;
                            }
                            let dact = dh * h[o] * (1.0 - h[o]);
                            gb[o] += dact;
                            let grow = &mut gw[o * dim..(o + 1) * dim];
                            // Tied weights: decoder term err_j h_o + encoder
                            // term dact * xc_j.
                            for ((g, &e), &v) in grow.iter_mut().zip(&err).zip(&xc) {
                                *g += e * h[o] + dact * v;
                            }
                        }
                    }
                    let scale = cfg.lr / batch.len() as f32;
                    for (w, g) in self.weights[l].iter_mut().zip(&gw) {
                        *w -= scale * g;
                    }
                    for (b, g) in self.biases[l].iter_mut().zip(&gb) {
                        *b -= scale * g;
                    }
                    for (c, g) in dec_bias.iter_mut().zip(&gc) {
                        *c -= scale * g;
                    }
                }
                last_mse = (epoch_se / (n as f64 * dim as f64)) as f32;
            }
            mses.push(last_mse);

            // Push the data through the trained layer for the next one.
            let mut next = vec![0.0f32; n * n_out];
            for i in 0..n {
                let x = &data[i * dim..(i + 1) * dim];
                let out = &mut next[i * n_out..(i + 1) * n_out];
                for (o, oo) in out.iter_mut().enumerate() {
                    let row = &self.weights[l][o * dim..(o + 1) * dim];
                    let mut acc = self.biases[l][o];
                    for (w, v) in row.iter().zip(x) {
                        acc += w * v;
                    }
                    *oo = sigmoid(acc);
                }
            }
            data = next;
            dim = n_out;
        }
        mses
    }

    /// Supervised training on `frames` (flat `n × input_dim`) and `labels`.
    ///
    /// Returns the final held-out frame accuracy.
    pub fn train<R: RngExt>(
        &mut self,
        frames: &[f32],
        labels: &[u32],
        cfg: &TrainConfig,
        rng: &mut R,
    ) -> f32 {
        let dim = self.input_dim();
        let n = labels.len();
        assert_eq!(frames.len(), n * dim);
        if n == 0 {
            return 0.0;
        }

        // Shuffled index order; tail is the holdout split.
        let mut order: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            order.swap(i, rng.random_range(0..=i));
        }
        let n_hold =
            ((n as f32 * cfg.holdout_fraction) as usize).clamp(1, n.saturating_sub(1).max(1));
        let (train_idx, hold_idx) = order.split_at(n - n_hold);

        let mut lr = cfg.initial_lr;
        let mut best_acc = 0.0f32;
        let mut vel_w: Vec<Vec<f32>> = self.weights.iter().map(|w| vec![0.0; w.len()]).collect();
        let mut vel_b: Vec<Vec<f32>> = self.biases.iter().map(|b| vec![0.0; b.len()]).collect();
        for _epoch in 0..cfg.epochs {
            for batch in train_idx.chunks(cfg.batch_size) {
                self.sgd_batch(
                    frames,
                    labels,
                    batch,
                    dim,
                    lr,
                    cfg.momentum,
                    &mut vel_w,
                    &mut vel_b,
                );
            }
            let acc = self.frame_accuracy(frames, labels, hold_idx, dim);
            if acc < best_acc {
                lr *= 0.5;
            }
            best_acc = best_acc.max(acc);
        }
        best_acc
    }

    /// One SGD step over a batch (gradient averaged across the batch,
    /// classical momentum on the velocity buffers).
    #[allow(clippy::too_many_arguments)]
    fn sgd_batch(
        &mut self,
        frames: &[f32],
        labels: &[u32],
        batch: &[usize],
        dim: usize,
        lr: f32,
        momentum: f32,
        vel_w: &mut [Vec<f32>],
        vel_b: &mut [Vec<f32>],
    ) {
        let num_layers = self.num_layers();
        // Gradient accumulators.
        let mut gw: Vec<Vec<f32>> = self.weights.iter().map(|w| vec![0.0; w.len()]).collect();
        let mut gb: Vec<Vec<f32>> = self.biases.iter().map(|b| vec![0.0; b.len()]).collect();

        for &i in batch {
            let x = &frames[i * dim..(i + 1) * dim];
            let acts = self.forward_full(x);
            // Output delta: softmax + CE ⇒ p - y.
            let mut delta: Vec<f32> = acts[num_layers].clone();
            delta[labels[i] as usize] -= 1.0;

            for l in (0..num_layers).rev() {
                let n_in = self.sizes[l];
                let prev = &acts[l];
                // Accumulate gradients for layer l.
                for (o, &d) in delta.iter().enumerate() {
                    gb[l][o] += d;
                    let grow = &mut gw[l][o * n_in..(o + 1) * n_in];
                    for (g, &p) in grow.iter_mut().zip(prev) {
                        *g += d * p;
                    }
                }
                if l > 0 {
                    // Backpropagate: delta_prev = (Wᵀ delta) ⊙ σ'(a_prev).
                    let mut nd = vec![0.0f32; n_in];
                    let w = &self.weights[l];
                    for (o, &d) in delta.iter().enumerate() {
                        let row = &w[o * n_in..(o + 1) * n_in];
                        for (ndj, &wj) in nd.iter_mut().zip(row) {
                            *ndj += d * wj;
                        }
                    }
                    for (ndj, &a) in nd.iter_mut().zip(prev) {
                        *ndj *= a * (1.0 - a); // sigmoid derivative from activation
                    }
                    delta = nd;
                }
            }
        }

        let scale = lr / batch.len() as f32;
        for l in 0..num_layers {
            for ((w, v), g) in self.weights[l].iter_mut().zip(&mut vel_w[l]).zip(&gw[l]) {
                *v = momentum * *v - scale * g;
                *w += *v;
            }
            for ((b, v), g) in self.biases[l].iter_mut().zip(&mut vel_b[l]).zip(&gb[l]) {
                *v = momentum * *v - scale * g;
                *b += *v;
            }
        }
    }

    /// Frame classification accuracy over the given indices.
    pub fn frame_accuracy(&self, frames: &[f32], labels: &[u32], idx: &[usize], dim: usize) -> f32 {
        if idx.is_empty() {
            return 0.0;
        }
        let correct = idx
            .iter()
            .filter(|&&i| {
                let p = self.posteriors(&frames[i * dim..(i + 1) * dim]);
                let arg = p
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .unwrap()
                    .0;
                arg as u32 == labels[i]
            })
            .count();
        correct as f32 / idx.len() as f32
    }
}

fn softmax_in_place(z: &mut [f32]) {
    let max = z.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
    let mut sum = 0.0f32;
    for v in z.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    for v in z.iter_mut() {
        *v /= sum;
    }
}

/// [`softmax_in_place`] with [`crate::fastmath::fast_exp`]; same max-shift
/// structure, bounded-error exponentials.
fn fast_softmax_in_place(z: &mut [f32]) {
    let max = z.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
    let mut sum = 0.0f32;
    for v in z.iter_mut() {
        *v = crate::fastmath::fast_exp(*v - max);
        sum += *v;
    }
    for v in z.iter_mut() {
        *v /= sum;
    }
}

impl lre_artifact::ArtifactWrite for Mlp {
    const KIND: [u8; 4] = *b"MLP0";
    const VERSION: u32 = 1;

    fn write_payload(&self, w: &mut lre_artifact::ArtifactWriter) {
        w.put_u32(self.sizes.len() as u32);
        for &s in &self.sizes {
            w.put_u32(s as u32);
        }
        for (wl, bl) in self.weights.iter().zip(&self.biases) {
            w.put_f32_slice(wl);
            w.put_f32_slice(bl);
        }
    }
}

impl lre_artifact::ArtifactRead for Mlp {
    fn read_payload(
        r: &mut lre_artifact::ArtifactReader,
    ) -> Result<Mlp, lre_artifact::ArtifactError> {
        use lre_artifact::ArtifactError;
        let num_sizes = r.get_count(4)?;
        let sizes: Vec<usize> = (0..num_sizes)
            .map(|_| r.get_u32().map(|v| v as usize))
            .collect::<Result<_, _>>()?;
        if sizes.len() < 2 || sizes.contains(&0) {
            return Err(ArtifactError::Corrupt("MLP layer sizes out of range"));
        }
        let mut weights = Vec::with_capacity(sizes.len() - 1);
        let mut biases = Vec::with_capacity(sizes.len() - 1);
        for l in 0..sizes.len() - 1 {
            let wl = r.get_f32_slice()?;
            let bl = r.get_f32_slice()?;
            if wl.len() != sizes[l] * sizes[l + 1] || bl.len() != sizes[l + 1] {
                return Err(ArtifactError::Corrupt("MLP layer shapes disagree"));
            }
            weights.push(wl);
            biases.push(bl);
        }
        Ok(Mlp {
            sizes,
            weights,
            biases,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(21)
    }

    /// Two-class 2-D problem: sign of x₀+x₁.
    fn toy_data(n: usize, rng: &mut StdRng) -> (Vec<f32>, Vec<u32>) {
        let mut frames = Vec::with_capacity(n * 2);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let a = rng.random::<f32>() * 4.0 - 2.0;
            let b = rng.random::<f32>() * 4.0 - 2.0;
            frames.push(a);
            frames.push(b);
            labels.push(u32::from(a + b > 0.0));
        }
        (frames, labels)
    }

    #[test]
    fn posteriors_sum_to_one() {
        let mut r = rng();
        let mlp = Mlp::new(&[4, 8, 3], &mut r);
        let p = mlp.posteriors(&[0.1, -0.2, 0.3, 0.4]);
        assert_eq!(p.len(), 3);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn learns_linear_boundary() {
        let mut r = rng();
        let (frames, labels) = toy_data(600, &mut r);
        let mut mlp = Mlp::new(&[2, 12, 2], &mut r);
        let cfg = TrainConfig {
            epochs: 20,
            batch_size: 16,
            initial_lr: 0.5,
            momentum: 0.9,
            holdout_fraction: 0.1,
        };
        let acc = mlp.train(&frames, &labels, &cfg, &mut r);
        assert!(acc > 0.9, "holdout accuracy {acc}");
    }

    #[test]
    fn deeper_network_also_learns() {
        let mut r = rng();
        let (frames, labels) = toy_data(600, &mut r);
        let mut mlp = Mlp::new(&[2, 10, 10, 2], &mut r);
        let cfg = TrainConfig {
            epochs: 25,
            batch_size: 16,
            initial_lr: 0.5,
            momentum: 0.9,
            holdout_fraction: 0.1,
        };
        let acc = mlp.train(&frames, &labels, &cfg, &mut r);
        assert!(acc > 0.85, "holdout accuracy {acc}");
    }

    #[test]
    fn block_log_posteriors_bitwise_match_per_frame() {
        let mut r = rng();
        let mlp = Mlp::new(&[5, 17, 9, 7], &mut r);
        let n = 43;
        let frames: Vec<f32> = (0..n * 5).map(|_| r.random::<f32>() * 2.0 - 1.0).collect();

        let mut block = vec![0.0f32; n * 7];
        mlp.log_posteriors_block(&frames, &mut block);

        let mut single = vec![0.0f32; 7];
        for t in 0..n {
            mlp.log_posteriors_into(&frames[t * 5..(t + 1) * 5], &mut single);
            for (o, (a, b)) in single.iter().zip(&block[t * 7..(t + 1) * 7]).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "frame {t} output {o}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn block_log_posteriors_empty_is_noop() {
        let mut r = rng();
        let mlp = Mlp::new(&[3, 4, 2], &mut r);
        let mut out: Vec<f32> = Vec::new();
        mlp.log_posteriors_block(&[], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn log_posteriors_match_posteriors() {
        let mut r = rng();
        let mlp = Mlp::new(&[3, 6, 4], &mut r);
        let x = [0.5, -0.1, 0.2];
        let p = mlp.posteriors(&x);
        let mut lp = vec![0.0; 4];
        mlp.log_posteriors_into(&x, &mut lp);
        for (a, b) in p.iter().zip(&lp) {
            assert!((a.ln() - b).abs() < 1e-5);
        }
    }

    #[test]
    fn pretraining_reduces_reconstruction_error() {
        let mut r = rng();
        let (frames, _) = toy_data(400, &mut r);
        let mut mlp = Mlp::new(&[2, 8, 8, 2], &mut r);
        let cfg = PretrainConfig {
            epochs: 8,
            batch_size: 16,
            lr: 0.05,
            noise_std: 0.1,
        };
        // Measure the first layer's MSE after 1 epoch vs after 8 epochs.
        let mut mlp_short = mlp.clone();
        let mut r1 = rng();
        let short = mlp_short.pretrain(&frames, &PretrainConfig { epochs: 1, ..cfg }, &mut r1);
        let mut r2 = rng();
        let long = mlp.pretrain(&frames, &cfg, &mut r2);
        assert_eq!(short.len(), 2);
        assert_eq!(long.len(), 2);
        assert!(
            long[0] <= short[0] * 1.05,
            "more pretraining epochs should not hurt: {short:?} vs {long:?}"
        );
        assert!(long.iter().all(|m| m.is_finite() && *m >= 0.0));
    }

    #[test]
    fn pretraining_then_finetuning_learns() {
        let mut r = rng();
        let (frames, labels) = toy_data(500, &mut r);
        let mut mlp = Mlp::new(&[2, 10, 10, 2], &mut r);
        mlp.pretrain(&frames, &PretrainConfig::default(), &mut r);
        let cfg = TrainConfig {
            epochs: 20,
            batch_size: 16,
            initial_lr: 0.5,
            momentum: 0.9,
            holdout_fraction: 0.1,
        };
        let acc = mlp.train(&frames, &labels, &cfg, &mut r);
        assert!(acc > 0.85, "accuracy after pretrain+finetune {acc}");
    }

    #[test]
    fn pretraining_on_empty_data_is_safe() {
        let mut r = rng();
        let mut mlp = Mlp::new(&[2, 4, 2], &mut r);
        assert!(mlp
            .pretrain(&[], &PretrainConfig::default(), &mut r)
            .is_empty());
    }

    #[test]
    fn training_on_empty_data_is_safe() {
        let mut r = rng();
        let mut mlp = Mlp::new(&[2, 4, 2], &mut r);
        let acc = mlp.train(&[], &[], &TrainConfig::default(), &mut r);
        assert_eq!(acc, 0.0);
    }

    #[test]
    fn training_improves_over_untrained() {
        let mut r = rng();
        let (frames, labels) = toy_data(400, &mut r);
        let untrained = Mlp::new(&[2, 8, 2], &mut r);
        let idx: Vec<usize> = (0..400).collect();
        let acc_before = untrained.frame_accuracy(&frames, &labels, &idx, 2);

        let mut trained = untrained.clone();
        let cfg = TrainConfig {
            epochs: 15,
            batch_size: 16,
            initial_lr: 0.5,
            momentum: 0.9,
            holdout_fraction: 0.1,
        };
        trained.train(&frames, &labels, &cfg, &mut r);
        let acc_after = trained.frame_accuracy(&frames, &labels, &idx, 2);
        assert!(
            acc_after > acc_before + 0.05 && acc_after > 0.85,
            "before {acc_before}, after {acc_after}"
        );
    }
}
