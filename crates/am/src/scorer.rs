//! Frame-level emission scoring abstraction consumed by the decoder.

use crate::fastmath::ScoringMode;
use crate::gmm::DiagGmm;
use crate::nn::Mlp;
use lre_artifact::{ArtifactError, ArtifactRead, ArtifactReader, ArtifactWrite, ArtifactWriter};

/// Produces per-state emission log-scores for one feature frame.
///
/// The decoder only sees this trait, so GMM-HMM, ANN-HMM and DNN-HMM
/// front-ends are interchangeable — exactly the diversification structure
/// the paper's PPRVSM exploits.
pub trait FrameScorer: Send + Sync {
    /// Number of HMM states scored.
    fn num_states(&self) -> usize;

    /// Write `ln p(x | state)` (up to a state-independent constant) for all
    /// states into `out` (`out.len() == num_states()`).
    fn score_frame(&self, frame: &[f32], out: &mut [f32]);

    /// Score a flat block of frames (`frames.len()` = `T × dim`), writing
    /// per-state scores row-major into `out` (`T × num_states()`).
    ///
    /// The default just loops [`FrameScorer::score_frame`]; model families
    /// override it with batched kernels. Overrides must be **bit-identical**
    /// to the per-frame path — the decoder's exact (`beam: None`) mode
    /// promises unchanged output, and tests compare `f32::to_bits`.
    fn score_block(&self, frames: &[f32], dim: usize, out: &mut [f32]) {
        let s = self.num_states();
        for (x, o) in frames.chunks_exact(dim).zip(out.chunks_exact_mut(s)) {
            self.score_frame(x, o);
        }
    }

    /// [`FrameScorer::score_block`] with an explicit [`ScoringMode`].
    ///
    /// `Exact` must stay bit-identical to the per-frame path; `FastMath`
    /// may use bounded-error kernels (see `crates/am/src/fastmath.rs`).
    /// The default ignores the mode and runs the exact block path, so
    /// scorers without a fast kernel (tests, mocks) remain correct — just
    /// not faster.
    fn score_block_mode(&self, frames: &[f32], dim: usize, mode: ScoringMode, out: &mut [f32]) {
        let _ = mode;
        self.score_block(frames, dim, out);
    }

    /// Downcasting hook: artifact serialization needs to recover the
    /// concrete scorer family behind a `Box<dyn FrameScorer>`.
    fn as_any(&self) -> &dyn std::any::Any;
}

/// GMM-HMM emission model: one diagonal GMM per state.
pub struct GmmStateScorer {
    gmms: Vec<DiagGmm>,
}

impl GmmStateScorer {
    pub fn new(gmms: Vec<DiagGmm>) -> Self {
        assert!(!gmms.is_empty());
        Self { gmms }
    }

    pub fn state_gmm(&self, s: usize) -> &DiagGmm {
        &self.gmms[s]
    }
}

impl FrameScorer for GmmStateScorer {
    fn num_states(&self) -> usize {
        self.gmms.len()
    }

    fn score_frame(&self, frame: &[f32], out: &mut [f32]) {
        debug_assert_eq!(out.len(), self.gmms.len());
        for (o, g) in out.iter_mut().zip(&self.gmms) {
            *o = g.log_likelihood(frame);
        }
    }

    /// Batched scoring: frames are processed in cache-sized blocks. Each
    /// block is transposed to dimension-major layout **once**, then every
    /// state's GMM runs its vectorized transposed kernel over it
    /// ([`DiagGmm::log_likelihood_block_t`]), streaming its mixture
    /// parameters once per block instead of once per frame and accumulating
    /// the Mahalanobis terms across all frames of the block in parallel.
    fn score_block(&self, frames: &[f32], dim: usize, out: &mut [f32]) {
        self.score_block_impl(frames, dim, ScoringMode::Exact, out);
    }

    fn score_block_mode(&self, frames: &[f32], dim: usize, mode: ScoringMode, out: &mut [f32]) {
        self.score_block_impl(frames, dim, mode, out);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

impl GmmStateScorer {
    fn score_block_impl(&self, frames: &[f32], dim: usize, mode: ScoringMode, out: &mut [f32]) {
        const BLOCK: usize = 64;
        let s = self.gmms.len();
        debug_assert!(dim > 0);
        let n = frames.len() / dim;
        debug_assert_eq!(out.len(), n * s);
        let mut comps = Vec::new();
        let mut ft = vec![0.0f32; BLOCK.min(n.max(1)) * dim];
        let mut col = [0.0f32; BLOCK];
        let mut t0 = 0;
        while t0 < n {
            let bt = BLOCK.min(n - t0);
            // Transpose once per block: ft[d · bt + t] = frame (t0+t), dim d.
            for t in 0..bt {
                let x = &frames[(t0 + t) * dim..(t0 + t + 1) * dim];
                for (d, &v) in x.iter().enumerate() {
                    ft[d * bt + t] = v;
                }
            }
            for (si, g) in self.gmms.iter().enumerate() {
                g.log_likelihood_block_t_mode(&ft[..bt * dim], &mut comps, &mut col[..bt], mode);
                for (t, &v) in col[..bt].iter().enumerate() {
                    out[(t0 + t) * s + si] = v;
                }
            }
            t0 += bt;
        }
    }
}

impl ArtifactWrite for GmmStateScorer {
    const KIND: [u8; 4] = *b"GSCR";
    const VERSION: u32 = 1;

    fn write_payload(&self, w: &mut ArtifactWriter) {
        w.put_u32(self.gmms.len() as u32);
        for g in &self.gmms {
            g.write_payload(w);
        }
    }
}

impl ArtifactRead for GmmStateScorer {
    fn read_payload(r: &mut ArtifactReader) -> Result<GmmStateScorer, ArtifactError> {
        let n = r.get_u32()? as usize;
        if n == 0 {
            return Err(ArtifactError::Corrupt("state scorer with zero GMMs"));
        }
        let gmms: Vec<DiagGmm> = (0..n)
            .map(|_| DiagGmm::read_payload(r))
            .collect::<Result<_, _>>()?;
        if gmms.iter().any(|g| g.dim() != gmms[0].dim()) {
            return Err(ArtifactError::Corrupt("state GMM dimensions disagree"));
        }
        Ok(GmmStateScorer { gmms })
    }
}

/// Hybrid NN-HMM emission model: network posteriors divided by state priors
/// ("scaled likelihoods", the standard hybrid trick):
/// `ln p(x|s) ∝ ln p(s|x) - ln p(s)`.
pub struct NnStateScorer {
    net: Mlp,
    log_priors: Vec<f32>,
}

impl NnStateScorer {
    /// `priors` are state occupancy probabilities estimated on training data;
    /// they are floored and renormalized internally. The floor is a fraction
    /// of the uniform prior: states never seen in training must not receive
    /// a large scaled-likelihood boost from dividing by a near-zero prior.
    pub fn new(net: Mlp, priors: &[f32]) -> Self {
        assert_eq!(net.output_dim(), priors.len());
        let sum: f32 = priors.iter().sum();
        let floor = 0.2 / priors.len() as f32;
        let log_priors = priors
            .iter()
            .map(|&p| (p / sum.max(1e-12)).max(floor).ln())
            .collect();
        Self { net, log_priors }
    }

    pub fn network(&self) -> &Mlp {
        &self.net
    }
}

impl FrameScorer for NnStateScorer {
    fn num_states(&self) -> usize {
        self.net.output_dim()
    }

    fn score_frame(&self, frame: &[f32], out: &mut [f32]) {
        self.net.log_posteriors_into(frame, out);
        for (o, lp) in out.iter_mut().zip(&self.log_priors) {
            *o -= lp;
        }
    }

    /// Batched scoring: the whole utterance goes through the network as
    /// blocked matrix multiplies ([`Mlp::log_posteriors_block`]), then the
    /// log-priors are subtracted row-wise in the per-frame order.
    fn score_block(&self, frames: &[f32], dim: usize, out: &mut [f32]) {
        self.score_block_mode(frames, dim, ScoringMode::Exact, out);
    }

    fn score_block_mode(&self, frames: &[f32], dim: usize, mode: ScoringMode, out: &mut [f32]) {
        debug_assert_eq!(dim, self.net.input_dim());
        self.net.log_posteriors_block_mode(frames, out, mode);
        for row in out.chunks_exact_mut(self.net.output_dim()) {
            for (o, lp) in row.iter_mut().zip(&self.log_priors) {
                *o -= lp;
            }
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

// The *derived* log-priors (already floored and renormalized by `new`) are
// persisted, not the raw occupancy counts: re-deriving them on load would
// round differently and break bit-identical scoring.
impl ArtifactWrite for NnStateScorer {
    const KIND: [u8; 4] = *b"NSCR";
    const VERSION: u32 = 1;

    fn write_payload(&self, w: &mut ArtifactWriter) {
        self.net.write_payload(w);
        w.put_f32_slice(&self.log_priors);
    }
}

impl ArtifactRead for NnStateScorer {
    fn read_payload(r: &mut ArtifactReader) -> Result<NnStateScorer, ArtifactError> {
        let net = Mlp::read_payload(r)?;
        let log_priors = r.get_f32_slice()?;
        if log_priors.len() != net.output_dim() {
            return Err(ArtifactError::Corrupt("log-prior count != network outputs"));
        }
        Ok(NnStateScorer { net, log_priors })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gmm_scorer_scores_all_states() {
        let g0 = DiagGmm::from_params(vec![0.0, 0.0], vec![1.0, 1.0], vec![1.0], 2);
        let g1 = DiagGmm::from_params(vec![5.0, 5.0], vec![1.0, 1.0], vec![1.0], 2);
        let sc = GmmStateScorer::new(vec![g0, g1]);
        let mut out = vec![0.0; 2];
        sc.score_frame(&[0.0, 0.0], &mut out);
        assert!(
            out[0] > out[1],
            "frame at origin should prefer state 0: {out:?}"
        );
        sc.score_frame(&[5.0, 5.0], &mut out);
        assert!(out[1] > out[0]);
    }

    #[test]
    fn nn_scorer_divides_by_prior() {
        let mut rng = StdRng::seed_from_u64(4);
        let net = Mlp::new(&[2, 4, 3], &mut rng);
        let x = [0.3, -0.3];
        let posts = net.posteriors(&x);

        // Uniform priors: scores = log posterior + const.
        let sc_uniform = NnStateScorer::new(net.clone(), &[1.0, 1.0, 1.0]);
        let mut out_u = vec![0.0; 3];
        sc_uniform.score_frame(&x, &mut out_u);

        // Skewed prior on state 2 lowers its scaled likelihood relative to
        // the uniform case.
        let sc_skew = NnStateScorer::new(net, &[0.25, 0.25, 0.5]);
        let mut out_s = vec![0.0; 3];
        sc_skew.score_frame(&x, &mut out_s);

        let rel_u = out_u[2] - out_u[0];
        let rel_s = out_s[2] - out_s[0];
        assert!(
            rel_s < rel_u,
            "prior division should penalize frequent states"
        );
        // Sanity: uniform-prior scores equal log posteriors up to a constant.
        let d0 = out_u[0] - posts[0].ln();
        let d1 = out_u[1] - posts[1].ln();
        assert!((d0 - d1).abs() < 1e-4);
    }

    #[test]
    fn gmm_score_block_bitwise_matches_per_frame() {
        use rand::RngExt;
        let mut rng = StdRng::seed_from_u64(7);
        let dim = 6;
        // Enough states and frames to cross the 64-frame block boundary and
        // exercise partial blocks.
        let gmms: Vec<DiagGmm> = (0..9)
            .map(|_| {
                let mix = 3;
                let means: Vec<f32> = (0..mix * dim)
                    .map(|_| rng.random::<f32>() * 4.0 - 2.0)
                    .collect();
                let vars: Vec<f32> = (0..mix * dim).map(|_| 0.3 + rng.random::<f32>()).collect();
                let weights: Vec<f32> = vec![0.5, 0.3, 0.2];
                DiagGmm::from_params(means, vars, weights, dim)
            })
            .collect();
        let sc = GmmStateScorer::new(gmms);
        let n = 131;
        let frames: Vec<f32> = (0..n * dim)
            .map(|_| rng.random::<f32>() * 4.0 - 2.0)
            .collect();

        let mut block = vec![0.0f32; n * sc.num_states()];
        sc.score_block(&frames, dim, &mut block);

        let mut single = vec![0.0f32; sc.num_states()];
        for t in 0..n {
            sc.score_frame(&frames[t * dim..(t + 1) * dim], &mut single);
            for (s, (a, b)) in single
                .iter()
                .zip(&block[t * sc.num_states()..(t + 1) * sc.num_states()])
                .enumerate()
            {
                assert_eq!(a.to_bits(), b.to_bits(), "frame {t} state {s}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn nn_score_block_bitwise_matches_per_frame() {
        use rand::RngExt;
        let mut rng = StdRng::seed_from_u64(11);
        let net = Mlp::new(&[4, 13, 6], &mut rng);
        let priors: Vec<f32> = (0..6).map(|i| 0.05 + 0.03 * i as f32).collect();
        let sc = NnStateScorer::new(net, &priors);
        let n = 77;
        let frames: Vec<f32> = (0..n * 4)
            .map(|_| rng.random::<f32>() * 2.0 - 1.0)
            .collect();

        let mut block = vec![0.0f32; n * 6];
        sc.score_block(&frames, 4, &mut block);

        let mut single = vec![0.0f32; 6];
        for t in 0..n {
            sc.score_frame(&frames[t * 4..(t + 1) * 4], &mut single);
            for (s, (a, b)) in single.iter().zip(&block[t * 6..(t + 1) * 6]).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "frame {t} state {s}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn gmm_fast_mode_within_lse_bound_of_exact() {
        use crate::fastmath::FASTMATH_LSE_ABS_BOUND;
        use rand::RngExt;
        let mut rng = StdRng::seed_from_u64(23);
        let dim = 8;
        let gmms: Vec<DiagGmm> = (0..5)
            .map(|_| {
                let mix = 4;
                let means: Vec<f32> = (0..mix * dim)
                    .map(|_| rng.random::<f32>() * 4.0 - 2.0)
                    .collect();
                let vars: Vec<f32> = (0..mix * dim).map(|_| 0.3 + rng.random::<f32>()).collect();
                DiagGmm::from_params(means, vars, vec![0.4, 0.3, 0.2, 0.1], dim)
            })
            .collect();
        let sc = GmmStateScorer::new(gmms);
        let n = 97;
        let frames: Vec<f32> = (0..n * dim)
            .map(|_| rng.random::<f32>() * 4.0 - 2.0)
            .collect();
        let s = sc.num_states();
        let mut exact = vec![0.0f32; n * s];
        let mut fast = vec![0.0f32; n * s];
        sc.score_block_mode(&frames, dim, ScoringMode::Exact, &mut exact);
        sc.score_block_mode(&frames, dim, ScoringMode::FastMath, &mut fast);
        // Exact via the mode entry point must equal the plain block path bit
        // for bit; fast must sit inside the LSE error contract.
        let mut plain = vec![0.0f32; n * s];
        sc.score_block(&frames, dim, &mut plain);
        for (a, b) in exact.iter().zip(&plain) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (i, (a, b)) in exact.iter().zip(&fast).enumerate() {
            assert!(
                (a - b).abs() <= FASTMATH_LSE_ABS_BOUND,
                "elem {i}: exact {a} fast {b}"
            );
        }
    }

    #[test]
    fn nn_fast_mode_close_to_exact() {
        use rand::RngExt;
        let mut rng = StdRng::seed_from_u64(29);
        let net = Mlp::new(&[6, 16, 9], &mut rng);
        let priors: Vec<f32> = (0..9).map(|i| 0.04 + 0.02 * i as f32).collect();
        let sc = NnStateScorer::new(net, &priors);
        let n = 53;
        let frames: Vec<f32> = (0..n * 6)
            .map(|_| rng.random::<f32>() * 2.0 - 1.0)
            .collect();
        let mut exact = vec![0.0f32; n * 9];
        let mut fast = vec![0.0f32; n * 9];
        sc.score_block_mode(&frames, 6, ScoringMode::Exact, &mut exact);
        sc.score_block_mode(&frames, 6, ScoringMode::FastMath, &mut fast);
        // Kernel error propagates through the hidden layer's GEMM, so the
        // bound here is looser than the raw LSE contract but still tight
        // enough that rankings are preserved in practice.
        for (i, (a, b)) in exact.iter().zip(&fast).enumerate() {
            assert!(b.is_finite(), "elem {i} not finite");
            assert!((a - b).abs() <= 1e-2, "elem {i}: exact {a} fast {b}");
        }
    }

    #[test]
    fn trait_object_usable() {
        let g = DiagGmm::from_params(vec![0.0], vec![1.0], vec![1.0], 1);
        let boxed: Box<dyn FrameScorer> = Box::new(GmmStateScorer::new(vec![g]));
        let mut out = vec![0.0];
        boxed.score_frame(&[0.2], &mut out);
        assert!(out[0].is_finite());
    }
}
