//! Frame-level emission scoring abstraction consumed by the decoder.

use crate::gmm::DiagGmm;
use crate::nn::Mlp;

/// Produces per-state emission log-scores for one feature frame.
///
/// The decoder only sees this trait, so GMM-HMM, ANN-HMM and DNN-HMM
/// front-ends are interchangeable — exactly the diversification structure
/// the paper's PPRVSM exploits.
pub trait FrameScorer: Send + Sync {
    /// Number of HMM states scored.
    fn num_states(&self) -> usize;

    /// Write `ln p(x | state)` (up to a state-independent constant) for all
    /// states into `out` (`out.len() == num_states()`).
    fn score_frame(&self, frame: &[f32], out: &mut [f32]);
}

/// GMM-HMM emission model: one diagonal GMM per state.
pub struct GmmStateScorer {
    gmms: Vec<DiagGmm>,
}

impl GmmStateScorer {
    pub fn new(gmms: Vec<DiagGmm>) -> Self {
        assert!(!gmms.is_empty());
        Self { gmms }
    }

    pub fn state_gmm(&self, s: usize) -> &DiagGmm {
        &self.gmms[s]
    }
}

impl FrameScorer for GmmStateScorer {
    fn num_states(&self) -> usize {
        self.gmms.len()
    }

    fn score_frame(&self, frame: &[f32], out: &mut [f32]) {
        debug_assert_eq!(out.len(), self.gmms.len());
        for (o, g) in out.iter_mut().zip(&self.gmms) {
            *o = g.log_likelihood(frame);
        }
    }
}

/// Hybrid NN-HMM emission model: network posteriors divided by state priors
/// ("scaled likelihoods", the standard hybrid trick):
/// `ln p(x|s) ∝ ln p(s|x) - ln p(s)`.
pub struct NnStateScorer {
    net: Mlp,
    log_priors: Vec<f32>,
}

impl NnStateScorer {
    /// `priors` are state occupancy probabilities estimated on training data;
    /// they are floored and renormalized internally. The floor is a fraction
    /// of the uniform prior: states never seen in training must not receive
    /// a large scaled-likelihood boost from dividing by a near-zero prior.
    pub fn new(net: Mlp, priors: &[f32]) -> Self {
        assert_eq!(net.output_dim(), priors.len());
        let sum: f32 = priors.iter().sum();
        let floor = 0.2 / priors.len() as f32;
        let log_priors = priors
            .iter()
            .map(|&p| (p / sum.max(1e-12)).max(floor).ln())
            .collect();
        Self { net, log_priors }
    }

    pub fn network(&self) -> &Mlp {
        &self.net
    }
}

impl FrameScorer for NnStateScorer {
    fn num_states(&self) -> usize {
        self.net.output_dim()
    }

    fn score_frame(&self, frame: &[f32], out: &mut [f32]) {
        self.net.log_posteriors_into(frame, out);
        for (o, lp) in out.iter_mut().zip(&self.log_priors) {
            *o -= lp;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gmm_scorer_scores_all_states() {
        let g0 = DiagGmm::from_params(vec![0.0, 0.0], vec![1.0, 1.0], vec![1.0], 2);
        let g1 = DiagGmm::from_params(vec![5.0, 5.0], vec![1.0, 1.0], vec![1.0], 2);
        let sc = GmmStateScorer::new(vec![g0, g1]);
        let mut out = vec![0.0; 2];
        sc.score_frame(&[0.0, 0.0], &mut out);
        assert!(out[0] > out[1], "frame at origin should prefer state 0: {out:?}");
        sc.score_frame(&[5.0, 5.0], &mut out);
        assert!(out[1] > out[0]);
    }

    #[test]
    fn nn_scorer_divides_by_prior() {
        let mut rng = StdRng::seed_from_u64(4);
        let net = Mlp::new(&[2, 4, 3], &mut rng);
        let x = [0.3, -0.3];
        let posts = net.posteriors(&x);

        // Uniform priors: scores = log posterior + const.
        let sc_uniform = NnStateScorer::new(net.clone(), &[1.0, 1.0, 1.0]);
        let mut out_u = vec![0.0; 3];
        sc_uniform.score_frame(&x, &mut out_u);

        // Skewed prior on state 2 lowers its scaled likelihood relative to
        // the uniform case.
        let sc_skew = NnStateScorer::new(net, &[0.25, 0.25, 0.5]);
        let mut out_s = vec![0.0; 3];
        sc_skew.score_frame(&x, &mut out_s);

        let rel_u = out_u[2] - out_u[0];
        let rel_s = out_s[2] - out_s[0];
        assert!(rel_s < rel_u, "prior division should penalize frequent states");
        // Sanity: uniform-prior scores equal log posteriors up to a constant.
        let d0 = out_u[0] - posts[0].ln();
        let d1 = out_u[1] - posts[1].ln();
        assert!((d0 - d1).abs() < 1e-4);
    }

    #[test]
    fn trait_object_usable() {
        let g = DiagGmm::from_params(vec![0.0], vec![1.0], vec![1.0], 1);
        let boxed: Box<dyn FrameScorer> = Box::new(GmmStateScorer::new(vec![g]));
        let mut out = vec![0.0];
        boxed.score_frame(&[0.2], &mut out);
        assert!(out[0].is_finite());
    }
}
