//! Diagonal-covariance Gaussian mixture models.

use rand::RngExt;

/// Minimum variance floor, applied per dimension. Features entering the
/// models are CMVN-normalized (unit variance overall), so a floor well below
/// 1.0 but far above numerical noise keeps sparsely-trained states from
/// becoming high-density "absorber" states that swallow every frame.
const VAR_FLOOR: f32 = 5e-2;

/// A diagonal-covariance GMM over `dim`-dimensional frames.
///
/// Parameters are stored flat (`num_mix × dim`) and the per-mixture constant
/// `log w_m - ½Σlog(2πσ²)` is precomputed, so scoring one frame is a single
/// fused loop per mixture — this is the innermost hot path of the whole
/// system (it runs once per HMM state per frame).
#[derive(Clone, Debug)]
pub struct DiagGmm {
    dim: usize,
    num_mix: usize,
    /// Flat `num_mix × dim` means.
    means: Vec<f32>,
    /// Flat `num_mix × dim` *inverse* variances (precomputed reciprocals).
    inv_vars: Vec<f32>,
    /// Per-mixture constant: `ln w_m - ½ Σ_d ln(2π σ²_{m,d})`.
    log_consts: Vec<f32>,
    /// Normalized mixture weights (kept for model surgery/diagnostics).
    weights: Vec<f32>,
}

impl DiagGmm {
    /// Train a GMM on `frames` (flat `n × dim`) with k-means init + EM.
    ///
    /// `num_mix` is clamped down when there are too few frames. Returns a
    /// single-Gaussian fallback model if `frames` is empty.
    pub fn train<R: RngExt>(
        frames: &[f32],
        dim: usize,
        num_mix: usize,
        em_iters: usize,
        rng: &mut R,
    ) -> DiagGmm {
        assert!(dim > 0);
        let n = frames.len() / dim;
        if n == 0 {
            // Degenerate: unit Gaussian at the origin.
            // Degenerate: broad unit Gaussian at the origin (the global
            // feature transform makes this the population distribution).
            return Self::from_params(vec![0.0; dim], vec![2.0; dim], vec![1.0], dim);
        }
        let m = num_mix.min(n).max(1);

        // --- k-means initialization -------------------------------------------------
        let mut means = Vec::with_capacity(m * dim);
        for _ in 0..m {
            let pick = rng.random_range(0..n);
            means.extend_from_slice(&frames[pick * dim..(pick + 1) * dim]);
        }
        let mut assign = vec![0usize; n];
        for _ in 0..4 {
            // Assign.
            for (i, a) in assign.iter_mut().enumerate() {
                let x = &frames[i * dim..(i + 1) * dim];
                let mut best = (f32::INFINITY, 0usize);
                for c in 0..m {
                    let mu = &means[c * dim..(c + 1) * dim];
                    let d: f32 = x.iter().zip(mu).map(|(a, b)| (a - b) * (a - b)).sum();
                    if d < best.0 {
                        best = (d, c);
                    }
                }
                *a = best.1;
            }
            // Update.
            let mut counts = vec![0f32; m];
            let mut sums = vec![0f32; m * dim];
            for (i, &a) in assign.iter().enumerate() {
                counts[a] += 1.0;
                let x = &frames[i * dim..(i + 1) * dim];
                for (s, &v) in sums[a * dim..(a + 1) * dim].iter_mut().zip(x) {
                    *s += v;
                }
            }
            for c in 0..m {
                if counts[c] > 0.0 {
                    for d in 0..dim {
                        means[c * dim + d] = sums[c * dim + d] / counts[c];
                    }
                }
            }
        }

        // --- Initial variances/weights from the hard assignment ---------------------
        let mut weights = vec![0f32; m];
        let mut vars = vec![0f32; m * dim];
        for (i, &a) in assign.iter().enumerate() {
            weights[a] += 1.0;
            let x = &frames[i * dim..(i + 1) * dim];
            for d in 0..dim {
                let diff = x[d] - means[a * dim + d];
                vars[a * dim + d] += diff * diff;
            }
        }
        for c in 0..m {
            let w = weights[c].max(1.0);
            for d in 0..dim {
                vars[c * dim + d] = (vars[c * dim + d] / w).max(VAR_FLOOR);
            }
        }
        let total: f32 = weights.iter().sum();
        weights.iter_mut().for_each(|w| *w = (*w / total).max(1e-6));

        let mut gmm = Self::from_params(means, vars, weights, dim);

        // --- EM refinement ------------------------------------------------------------
        let mut resp = vec![0f32; m];
        for _ in 0..em_iters {
            let mut new_w = vec![0f32; m];
            let mut new_mu = vec![0f32; m * dim];
            let mut new_var = vec![0f32; m * dim];
            for i in 0..n {
                let x = &frames[i * dim..(i + 1) * dim];
                gmm.posteriors(x, &mut resp);
                for c in 0..m {
                    let r = resp[c];
                    if r < 1e-8 {
                        continue;
                    }
                    new_w[c] += r;
                    for d in 0..dim {
                        new_mu[c * dim + d] += r * x[d];
                        new_var[c * dim + d] += r * x[d] * x[d];
                    }
                }
            }
            let total: f32 = new_w.iter().sum();
            let mut means = vec![0f32; m * dim];
            let mut vars = vec![0f32; m * dim];
            let mut weights = vec![0f32; m];
            for c in 0..m {
                let wc = new_w[c].max(1e-6);
                weights[c] = (new_w[c] / total).max(1e-6);
                for d in 0..dim {
                    let mu = new_mu[c * dim + d] / wc;
                    means[c * dim + d] = mu;
                    vars[c * dim + d] = (new_var[c * dim + d] / wc - mu * mu).max(VAR_FLOOR);
                }
            }
            gmm = Self::from_params(means, vars, weights, dim);
        }
        gmm
    }

    /// Return a copy with an extra broad "background" component: a zero-mean
    /// Gaussian with `var_scale` × unit variance and mixture weight `w_bg`.
    /// Features are globally normalized upstream, so zero-mean/scaled-unit
    /// is the population distribution; the component acts as a likelihood
    /// floor for off-distribution frames.
    pub fn with_background(&self, w_bg: f32, var_scale: f32) -> DiagGmm {
        assert!((0.0..1.0).contains(&w_bg));
        let dim = self.dim;
        let mut means = self.means.clone();
        means.extend(std::iter::repeat_n(0.0f32, dim));
        let mut vars: Vec<f32> = self.inv_vars.iter().map(|iv| 1.0 / iv).collect();
        vars.extend(std::iter::repeat_n(var_scale, dim));
        let mut weights: Vec<f32> = self.weights.iter().map(|w| w * (1.0 - w_bg)).collect();
        weights.push(w_bg);
        Self::from_params(means, vars, weights, dim)
    }

    /// Build from explicit parameters (weights need not be normalized).
    pub fn from_params(means: Vec<f32>, vars: Vec<f32>, weights: Vec<f32>, dim: usize) -> DiagGmm {
        let num_mix = weights.len();
        assert_eq!(means.len(), num_mix * dim);
        assert_eq!(vars.len(), num_mix * dim);
        let wsum: f32 = weights.iter().sum();
        let norm_weights: Vec<f32> = weights.iter().map(|w| (w / wsum).max(1e-10)).collect();
        let ln2pi = (2.0 * std::f32::consts::PI).ln();
        let mut inv_vars = Vec::with_capacity(num_mix * dim);
        let mut log_consts = Vec::with_capacity(num_mix);
        for c in 0..num_mix {
            let mut log_det = 0.0f32;
            for d in 0..dim {
                let v = vars[c * dim + d].max(VAR_FLOOR);
                inv_vars.push(1.0 / v);
                log_det += v.ln();
            }
            log_consts
                .push((weights[c] / wsum).max(1e-10).ln() - 0.5 * (dim as f32 * ln2pi + log_det));
        }
        DiagGmm {
            dim,
            num_mix,
            means,
            inv_vars,
            log_consts,
            weights: norm_weights,
        }
    }

    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    #[inline]
    pub fn num_mix(&self) -> usize {
        self.num_mix
    }

    /// Normalized mixture weights.
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// Log-likelihood of one frame: `ln Σ_m w_m N(x; μ_m, σ²_m)`.
    pub fn log_likelihood(&self, x: &[f32]) -> f32 {
        debug_assert_eq!(x.len(), self.dim);
        let mut max = f32::NEG_INFINITY;
        let mut comps = [0f32; 16]; // stack buffer; num_mix is small
        debug_assert!(self.num_mix <= 16);
        for (c, slot) in comps.iter_mut().enumerate().take(self.num_mix) {
            let mu = &self.means[c * self.dim..(c + 1) * self.dim];
            let iv = &self.inv_vars[c * self.dim..(c + 1) * self.dim];
            let mut q = 0.0f32;
            for d in 0..self.dim {
                let diff = x[d] - mu[d];
                q += diff * diff * iv[d];
            }
            let l = self.log_consts[c] - 0.5 * q;
            *slot = l;
            if l > max {
                max = l;
            }
        }
        // Log-sum-exp.
        let mut sum = 0.0f32;
        for &l in &comps[..self.num_mix] {
            sum += (l - max).exp();
        }
        max + sum.ln()
    }

    /// Log-likelihood of every frame in a **transposed** block, written to
    /// `out` (`n = out.len()` frames; `ft[d · n + t]` holds dimension `d` of
    /// frame `t`).
    ///
    /// Iterates mixture components in the outer loop and feature dimensions
    /// in the middle loop, so the innermost loop walks the `n` frames of one
    /// dimension with unit stride: the serial `q` accumulation chain each
    /// frame imposes runs for all frames in parallel, which vectorizes where
    /// the per-frame path cannot. Per frame, the arithmetic (distance
    /// accumulation order over `d`, max tracking and log-sum-exp order over
    /// components) is exactly [`DiagGmm::log_likelihood`]'s, so results are
    /// bit-identical. The caller transposes a frame block once and reuses it
    /// across every state's GMM.
    ///
    /// `comps` is caller-owned scratch (resized internally) holding the
    /// per-component log terms, `num_mix × n`.
    pub fn log_likelihood_block_t(&self, ft: &[f32], comps: &mut Vec<f32>, out: &mut [f32]) {
        let n = out.len();
        self.fill_comps_block_t(ft, comps, n);
        for (t, o) in out.iter_mut().enumerate() {
            let mut max = f32::NEG_INFINITY;
            for c in 0..self.num_mix {
                let l = comps[c * n + t];
                if l > max {
                    max = l;
                }
            }
            let mut sum = 0.0f32;
            for c in 0..self.num_mix {
                sum += (comps[c * n + t] - max).exp();
            }
            *o = max + sum.ln();
        }
    }

    /// Per-component log terms for a transposed block: the Mahalanobis
    /// distance accumulation and `log_const − q/2` shift shared by the exact
    /// and fast-math log-sum-exp tails. Operation order matches the
    /// historical [`DiagGmm::log_likelihood_block_t`] body exactly, so the
    /// exact path through this helper stays bit-identical.
    fn fill_comps_block_t(&self, ft: &[f32], comps: &mut Vec<f32>, n: usize) {
        debug_assert_eq!(ft.len(), n * self.dim);
        comps.clear();
        comps.resize(self.num_mix * n, 0.0);
        for c in 0..self.num_mix {
            let crow = &mut comps[c * n..(c + 1) * n];
            for d in 0..self.dim {
                let mu = self.means[c * self.dim + d];
                let iv = self.inv_vars[c * self.dim + d];
                let col = &ft[d * n..(d + 1) * n];
                for (q, &x) in crow.iter_mut().zip(col) {
                    let diff = x - mu;
                    *q += diff * diff * iv;
                }
            }
            let log_const = self.log_consts[c];
            for q in crow.iter_mut() {
                *q = log_const - 0.5 * *q;
            }
        }
    }

    /// [`DiagGmm::log_likelihood_block_t`] under the bounded-error
    /// fast-math contract.
    ///
    /// The Mahalanobis form is expanded around the mean,
    /// `log_const − q/2 = c₀ + Σ_d (iv·µ)_d·x_d − ½ Σ_d iv_d·x²_d`, and
    /// accumulated as two fused multiply-adds per element over a shared
    /// `x²` block — the reassociation + FMA contraction that the exact
    /// kernel deliberately forgoes to stay bit-identical. The log-sum-exp
    /// tail runs on the polynomial [`crate::fastmath`] kernels. Each
    /// rounding difference is at the 1-ulp scale of the partial sums, so
    /// the per-frame deviation stays well inside
    /// [`crate::fastmath::FASTMATH_LSE_ABS_BOUND`] for CMVN-normalized
    /// features. (The speedup assumes FMA hardware; without it `mul_add`
    /// falls back to a slow-but-correct libm call.)
    ///
    /// The log-sum-exp tail is restructured frame-innermost: the exact
    /// tail's per-frame loop over components is a chain of scalar libm
    /// calls, while [`crate::fastmath::fast_exp`] is inline branch-free
    /// arithmetic the autovectorizer can run one vector of *frames* at a
    /// time. All scratch (component rows, per-frame max/sum, squared
    /// features) lives in the caller's `comps` buffer, so steady-state
    /// block scoring does no allocation in either mode.
    pub fn log_likelihood_block_t_fast(&self, ft: &[f32], comps: &mut Vec<f32>, out: &mut [f32]) {
        let n = out.len();
        let dim = self.dim;
        let k = self.num_mix;
        debug_assert_eq!(ft.len(), n * dim);
        comps.clear();
        comps.resize(k * n + 2 * n + dim * n + dim, 0.0);
        let (crows, rest) = comps.split_at_mut(k * n);
        let (maxv, rest) = rest.split_at_mut(n);
        let (sums, rest) = rest.split_at_mut(n);
        let (ft2, mrow) = rest.split_at_mut(dim * n);
        for (x2, &x) in ft2.iter_mut().zip(ft) {
            *x2 = x * x;
        }
        for c in 0..k {
            let means = &self.means[c * dim..(c + 1) * dim];
            let ivs = &self.inv_vars[c * dim..(c + 1) * dim];
            let mut c0 = self.log_consts[c];
            for ((m, &mu), &iv) in mrow.iter_mut().zip(means).zip(ivs) {
                *m = mu * iv;
                c0 -= 0.5 * mu * *m;
            }
            let crow = &mut crows[c * n..(c + 1) * n];
            crow.fill(c0);
            for d in 0..dim {
                let m = mrow[d];
                let v = -0.5 * ivs[d];
                let col = &ft[d * n..(d + 1) * n];
                let col2 = &ft2[d * n..(d + 1) * n];
                for ((q, &x), &x2) in crow.iter_mut().zip(col).zip(col2) {
                    *q = m.mul_add(x, v.mul_add(x2, *q));
                }
            }
        }
        maxv.fill(f32::NEG_INFINITY);
        for c in 0..k {
            let crow = &crows[c * n..(c + 1) * n];
            for (mx, &l) in maxv.iter_mut().zip(crow) {
                *mx = mx.max(l);
            }
        }
        sums.fill(0.0);
        for c in 0..k {
            let crow = &crows[c * n..(c + 1) * n];
            for ((s, &l), &mx) in sums.iter_mut().zip(crow).zip(maxv.iter()) {
                *s += crate::fastmath::fast_exp(l - mx);
            }
        }
        for ((o, &s), &mx) in out.iter_mut().zip(sums.iter()).zip(maxv.iter()) {
            *o = mx + crate::fastmath::fast_ln(s);
        }
    }

    /// Mode-dispatched transposed-block scoring: `Exact` is the historical
    /// bit-identical kernel, `FastMath` the bounded-error one.
    pub fn log_likelihood_block_t_mode(
        &self,
        ft: &[f32],
        comps: &mut Vec<f32>,
        out: &mut [f32],
        mode: crate::fastmath::ScoringMode,
    ) {
        match mode {
            crate::fastmath::ScoringMode::Exact => self.log_likelihood_block_t(ft, comps, out),
            crate::fastmath::ScoringMode::FastMath => {
                self.log_likelihood_block_t_fast(ft, comps, out)
            }
        }
    }

    /// Mixture posteriors for one frame (responsibilities), written to `out`.
    pub fn posteriors(&self, x: &[f32], out: &mut [f32]) {
        debug_assert_eq!(out.len(), self.num_mix);
        let mut max = f32::NEG_INFINITY;
        for (c, o) in out.iter_mut().enumerate() {
            let mu = &self.means[c * self.dim..(c + 1) * self.dim];
            let iv = &self.inv_vars[c * self.dim..(c + 1) * self.dim];
            let mut q = 0.0f32;
            for d in 0..self.dim {
                let diff = x[d] - mu[d];
                q += diff * diff * iv[d];
            }
            *o = self.log_consts[c] - 0.5 * q;
            max = max.max(*o);
        }
        let mut sum = 0.0f32;
        for o in out.iter_mut() {
            *o = (*o - max).exp();
            sum += *o;
        }
        for o in out.iter_mut() {
            *o /= sum;
        }
    }
}

// The derived fields (`inv_vars`, `log_consts`) are persisted directly
// rather than re-derived through `from_params` on load: recomputing the
// reciprocals/logs would round differently and break the bit-identical
// save→load→score contract.
impl lre_artifact::ArtifactWrite for DiagGmm {
    const KIND: [u8; 4] = *b"GMM0";
    const VERSION: u32 = 1;

    fn write_payload(&self, w: &mut lre_artifact::ArtifactWriter) {
        w.put_u32(self.dim as u32);
        w.put_u32(self.num_mix as u32);
        w.put_f32_slice(&self.means);
        w.put_f32_slice(&self.inv_vars);
        w.put_f32_slice(&self.log_consts);
        w.put_f32_slice(&self.weights);
    }
}

impl lre_artifact::ArtifactRead for DiagGmm {
    fn read_payload(
        r: &mut lre_artifact::ArtifactReader,
    ) -> Result<DiagGmm, lre_artifact::ArtifactError> {
        use lre_artifact::ArtifactError;
        let dim = r.get_u32()? as usize;
        let num_mix = r.get_u32()? as usize;
        let means = r.get_f32_slice()?;
        let inv_vars = r.get_f32_slice()?;
        let log_consts = r.get_f32_slice()?;
        let weights = r.get_f32_slice()?;
        // Scoring uses a 16-slot stack buffer; anything outside [1, 16]
        // cannot have come from this workspace's training code.
        if dim == 0 || num_mix == 0 || num_mix > 16 {
            return Err(ArtifactError::Corrupt("GMM shape out of range"));
        }
        if means.len() != num_mix * dim
            || inv_vars.len() != num_mix * dim
            || log_consts.len() != num_mix
            || weights.len() != num_mix
        {
            return Err(ArtifactError::Corrupt("GMM parameter lengths disagree"));
        }
        Ok(DiagGmm {
            dim,
            num_mix,
            means,
            inv_vars,
            log_consts,
            weights,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(17)
    }

    /// Two well-separated clusters in 2-D.
    fn two_cluster_data(n_each: usize, rng: &mut StdRng) -> Vec<f32> {
        let mut data = Vec::with_capacity(n_each * 4);
        for i in 0..2 * n_each {
            let center = if i < n_each { (-3.0, -3.0) } else { (3.0, 3.0) };
            data.push(center.0 + rng.random::<f32>() - 0.5);
            data.push(center.1 + rng.random::<f32>() - 0.5);
        }
        data
    }

    #[test]
    fn single_gaussian_matches_closed_form() {
        // Unit Gaussian at 0: ll(0) = -d/2 ln(2π).
        let g = DiagGmm::from_params(vec![0.0, 0.0], vec![1.0, 1.0], vec![1.0], 2);
        let expect = -(2.0 * std::f32::consts::PI).ln();
        assert!((g.log_likelihood(&[0.0, 0.0]) - expect).abs() < 1e-5);
        // One std away in one dim: subtract 1/2.
        assert!((g.log_likelihood(&[1.0, 0.0]) - (expect - 0.5)).abs() < 1e-5);
    }

    #[test]
    fn em_finds_two_clusters() {
        let mut r = rng();
        let data = two_cluster_data(200, &mut r);
        let g = DiagGmm::train(&data, 2, 2, 5, &mut r);
        // Each cluster center should be near (±3, ±3).
        let m0 = &g.means[0..2];
        let m1 = &g.means[2..4];
        let near = |m: &[f32], c: f32| (m[0] - c).abs() < 0.7 && (m[1] - c).abs() < 0.7;
        assert!(
            (near(m0, -3.0) && near(m1, 3.0)) || (near(m0, 3.0) && near(m1, -3.0)),
            "means: {m0:?} {m1:?}"
        );
    }

    #[test]
    fn training_data_scores_higher_than_outliers() {
        let mut r = rng();
        let data = two_cluster_data(100, &mut r);
        let g = DiagGmm::train(&data, 2, 2, 5, &mut r);
        assert!(g.log_likelihood(&[3.0, 3.0]) > g.log_likelihood(&[30.0, -40.0]) + 10.0);
    }

    #[test]
    fn posteriors_sum_to_one() {
        let mut r = rng();
        let data = two_cluster_data(100, &mut r);
        let g = DiagGmm::train(&data, 2, 4, 3, &mut r);
        let mut p = vec![0.0; g.num_mix()];
        g.posteriors(&[0.5, -0.5], &mut p);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn empty_data_gives_usable_fallback() {
        let g = DiagGmm::train(&[], 3, 4, 5, &mut rng());
        assert_eq!(g.num_mix(), 1);
        assert!(g.log_likelihood(&[0.0, 0.0, 0.0]).is_finite());
    }

    #[test]
    fn mixtures_clamped_to_sample_count() {
        let data = vec![1.0f32, 2.0, 3.0, 4.0]; // 2 frames of dim 2
        let g = DiagGmm::train(&data, 2, 8, 2, &mut rng());
        assert!(g.num_mix() <= 2);
    }

    #[test]
    fn em_improves_or_maintains_total_likelihood() {
        let mut r = rng();
        let data = two_cluster_data(150, &mut r);
        let total_ll = |g: &DiagGmm| -> f64 {
            (0..data.len() / 2)
                .map(|i| g.log_likelihood(&data[i * 2..i * 2 + 2]) as f64)
                .sum()
        };
        let mut r1 = rng();
        let g0 = DiagGmm::train(&data, 2, 2, 0, &mut r1);
        let mut r2 = rng();
        let g5 = DiagGmm::train(&data, 2, 2, 5, &mut r2);
        assert!(
            total_ll(&g5) >= total_ll(&g0) - 1e-3,
            "{} vs {}",
            total_ll(&g5),
            total_ll(&g0)
        );
    }
}

#[cfg(test)]
mod timing {
    use super::*;

    #[test]
    #[ignore = "manual timing probe"]
    fn block_kernel_stage_split() {
        let dim = 39;
        let k = 8;
        let n = 64;
        let mut rng = 0x12345u64;
        let mut next = move || {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((rng >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        };
        let means: Vec<f32> = (0..dim * k).map(|_| next() * 4.0).collect();
        let vars: Vec<f32> = (0..dim * k).map(|_| 0.5 + next().abs() * 2.0).collect();
        let weights: Vec<f32> = vec![1.0 / k as f32; k];
        let g = DiagGmm::from_params(means, vars, weights, dim);
        let ft: Vec<f32> = (0..dim * n).map(|_| next() * 6.0).collect();
        let mut comps = Vec::new();
        let mut out = vec![0.0f32; n];
        let reps = 20000;
        let t0 = std::time::Instant::now();
        for _ in 0..reps {
            g.fill_comps_block_t(&ft, &mut comps, n);
        }
        let fill = t0.elapsed().as_secs_f64();
        let t0 = std::time::Instant::now();
        for _ in 0..reps {
            g.log_likelihood_block_t(&ft, &mut comps, &mut out);
        }
        let exact = t0.elapsed().as_secs_f64();
        let t0 = std::time::Instant::now();
        for _ in 0..reps {
            g.log_likelihood_block_t_fast(&ft, &mut comps, &mut out);
        }
        let fast = t0.elapsed().as_secs_f64();
        std::hint::black_box(&out);
        println!(
            "fill={fill:.3}s exact={exact:.3}s (tail={:.3}s) fast={fast:.3}s",
            exact - fill
        );
    }
}
