//! Opt-in fast transcendental kernels and the [`ScoringMode`] switch.
//!
//! The exact scoring path calls libm `exp`/`ln` per mixture component and
//! per frame, which `BENCH_decoder.json` shows dominating GMM/NN block
//! scoring. This module provides polynomial replacements that are *not*
//! bit-identical but carry a tested bounded-error contract:
//!
//! * [`fast_exp`]: relative error ≤ [`FAST_EXP_REL_ERR`] for inputs in
//!   `[-87, 88]`; inputs below `-87.3` (including `-inf`) flush to
//!   ≈ `2^-126` (the true value is below `1e-38` there, so the absolute
//!   error is negligible for log-sum-exp, whose terms are anchored by an
//!   `exp(0) = 1` summand).
//! * [`fast_ln`]: absolute error ≤ [`FAST_LN_ABS_ERR`] for normal positive
//!   inputs (subnormals fall back to libm).
//! * [`fast_log_sum_exp`]: absolute error ≤ [`FASTMATH_LSE_ABS_BOUND`]
//!   against the exact max-shifted log-sum-exp over the same summands.
//!
//! The bounds are enforced by unit tests here and property tests in
//! `crates/am/tests/proptests.rs`; the end-to-end consequence (zero
//! decision flips on the seed corpus) is measured by `perfbaseline` and
//! gated in CI. Everything stays scalar-callable so the block kernels can
//! keep their existing loop shapes and let the autovectorizer work.

use std::f32::consts::{LN_2, LOG2_E, SQRT_2};

/// Which arithmetic the scoring kernels use.
///
/// `Exact` is the historical path: libm transcendentals, bit-identical to
/// every previously persisted artifact. `FastMath` swaps in the polynomial
/// kernels from this module — bounded error, not bit-identical — and is
/// only reachable by explicit opt-in (decoder config, `--fast-math`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ScoringMode {
    #[default]
    Exact,
    FastMath,
}

impl ScoringMode {
    /// Wire byte for artifact payloads (`0` exact, `1` fast-math).
    pub fn to_u8(self) -> u8 {
        match self {
            ScoringMode::Exact => 0,
            ScoringMode::FastMath => 1,
        }
    }

    /// Inverse of [`ScoringMode::to_u8`]; unknown bytes are rejected so a
    /// future mode can't silently decode as one of today's.
    pub fn from_u8(b: u8) -> Option<ScoringMode> {
        match b {
            0 => Some(ScoringMode::Exact),
            1 => Some(ScoringMode::FastMath),
            _ => None,
        }
    }

    pub fn is_fast(self) -> bool {
        self == ScoringMode::FastMath
    }

    /// Human-readable label used by CLI output and bench JSON.
    pub fn label(self) -> &'static str {
        match self {
            ScoringMode::Exact => "exact",
            ScoringMode::FastMath => "fast-math",
        }
    }
}

/// Relative-error contract for [`fast_exp`] on `[-87, 88]`.
pub const FAST_EXP_REL_ERR: f32 = 2e-6;

/// Absolute-error contract for [`fast_ln`] on normal positive inputs.
pub const FAST_LN_ABS_ERR: f32 = 1e-5;

/// Absolute-error contract for [`fast_log_sum_exp`] versus the exact
/// max-shifted log-sum-exp (error budget: per-term `fast_exp` relative
/// error, f32 resummation, and the final `fast_ln`).
pub const FASTMATH_LSE_ABS_BOUND: f32 = 5e-5;

/// Polynomial `e^x`.
///
/// Range reduction: `e^x = 2^n · e^t` with `n = round(x·log2 e)` and the
/// residual `t = x − n·ln 2` recovered by a Cody–Waite two-constant split
/// (the high part of `ln 2` multiplies `n` exactly, so the subtraction
/// doesn't amplify rounding at large `|x|`), then a degree-6 Taylor
/// polynomial for `e^t` on `|t| ≤ ln 2 / 2` and an exponent-field bit trick
/// for the `2^n` scale. Inputs are clamped to `[-87.34, 88.0]`: below the
/// clamp (including `-inf`) the result flushes to ≈ `2^-126` instead of a
/// subnormal/zero — harmless for log-sum-exp, where such terms sit next to
/// an `exp(0) = 1` anchor — and above it the result saturates at
/// `e^88 ≈ 1.7e38` rather than overflowing to `inf`.
#[inline]
pub fn fast_exp(x: f32) -> f32 {
    // High part holds 10 significand bits, so n·LN2_HI is exact for |n| ≤ 2^14.
    // Written out as the exact f32 value (355/512), not the nearest decimal:
    // the trailing digits are the point of the Cody–Waite split.
    #[allow(clippy::excessive_precision)]
    const LN2_HI: f32 = 0.693_359_375;
    const LN2_LO: f32 = -2.121_944_4e-4;
    let x = x.clamp(-87.336_54, 88.0);
    // Ties-to-even rounding: same accuracy (any nearest integer keeps the
    // residual inside the polynomial's domain) but, unlike `round`, it maps
    // to a single rounding instruction, so the whole function stays
    // branch-free and autovectorizable inside column-major loops.
    let n = (x * LOG2_E).round_ties_even();
    let t = (x - n * LN2_HI) - n * LN2_LO;
    // Horner degree-6 Taylor for e^t on |t| ≤ ln2/2 ≈ 0.3466.
    let p = 1.0
        + t * (1.0
            + t * (0.5
                + t * (1.0 / 6.0 + t * (1.0 / 24.0 + t * (1.0 / 120.0 + t * (1.0 / 720.0))))));
    let scale = f32::from_bits((((n as i32) + 127) as u32) << 23);
    p * scale
}

/// Polynomial `ln x` for positive inputs.
///
/// Splits `x = 2^e · m` with the mantissa renormalized into
/// `[√2/2, √2)` so the series argument `s = (m−1)/(m+1)` satisfies
/// `|s| ≤ 0.1716`, then uses the atanh expansion
/// `ln m = 2s(1 + s²/3 + s⁴/5 + s⁶/7)` (next term < 3e-8). Zero maps to
/// `-inf`, negatives to NaN, and subnormals fall back to libm — none of
/// which occur on the scoring path, where arguments are sums ≥ 1 or
/// probabilities clamped to ≥ 1e-12.
#[inline]
pub fn fast_ln(x: f32) -> f32 {
    if x < f32::MIN_POSITIVE {
        // Zero, negative, NaN, or subnormal: precision doesn't matter here,
        // semantics do, so defer to libm.
        return x.ln();
    }
    let bits = x.to_bits();
    let mut e = ((bits >> 23) as i32) - 127;
    let mut m = f32::from_bits((bits & 0x007f_ffff) | 0x3f80_0000); // [1, 2)
    if m > SQRT_2 {
        m *= 0.5;
        e += 1;
    }
    let s = (m - 1.0) / (m + 1.0);
    let s2 = s * s;
    let p = 2.0 * s * (1.0 + s2 * (1.0 / 3.0 + s2 * (0.2 + s2 * (1.0 / 7.0))));
    e as f32 * LN_2 + p
}

/// Max-shifted log-sum-exp over `vals` using the fast kernels.
///
/// Mirrors the exact path's structure (find max, sum `exp(v − max)`, add
/// `ln(sum)`), so the two differ only through the kernel error bounded by
/// [`FASTMATH_LSE_ABS_BOUND`]. Empty input returns `-inf`; a non-finite
/// max (all `-inf`) short-circuits to it, matching the exact kernels.
#[inline]
pub fn fast_log_sum_exp(vals: &[f32]) -> f32 {
    let mut max = f32::NEG_INFINITY;
    for &v in vals {
        if v > max {
            max = v;
        }
    }
    if !max.is_finite() {
        return max;
    }
    let mut sum = 0.0f32;
    for &v in vals {
        sum += fast_exp(v - max);
    }
    max + fast_ln(sum)
}

/// `1/(1 + e^{-x})` via [`fast_exp`] — the MLP hidden activation.
#[inline]
pub fn fast_sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + fast_exp(-x))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_exp_relative_error_in_range() {
        let mut worst = 0.0f32;
        let mut x = -87.0f32;
        while x <= 88.0 {
            let exact = x.exp();
            let rel = ((fast_exp(x) - exact) / exact).abs();
            worst = worst.max(rel);
            x += 0.0137; // irrational-ish step to avoid hitting only grid points
        }
        assert!(worst <= FAST_EXP_REL_ERR, "worst rel err {worst}");
    }

    #[test]
    fn fast_exp_extremes() {
        // Below the clamp everything flushes to ≈ 2^-126 — negligible next
        // to the exp(0) = 1 anchor every log-sum-exp carries.
        assert!(fast_exp(f32::NEG_INFINITY) <= 2e-38);
        assert!(fast_exp(-200.0) <= 2e-38);
        assert!((fast_exp(0.0) - 1.0).abs() < 1e-6);
        assert!(fast_exp(200.0).is_finite()); // saturates, not inf
    }

    #[test]
    fn fast_ln_absolute_error_in_range() {
        let mut worst = 0.0f32;
        for i in 1..40_000 {
            let x = i as f32 * 0.003; // (0, 120]
            let d = (fast_ln(x) - x.ln()).abs();
            worst = worst.max(d);
        }
        for &x in &[1e-30f32, 1e-12, 1e-6, 1e6, 1e12, 1e30] {
            let d = (fast_ln(x) - x.ln()).abs();
            worst = worst.max(d);
        }
        assert!(worst <= FAST_LN_ABS_ERR, "worst abs err {worst}");
    }

    #[test]
    fn fast_ln_edge_semantics() {
        assert_eq!(fast_ln(0.0), f32::NEG_INFINITY);
        assert!(fast_ln(-1.0).is_nan());
        assert!((fast_ln(1.0)).abs() < 1e-7);
    }

    #[test]
    fn fast_lse_matches_exact_within_bound() {
        let vals = [-1.25f32, -30.0, 0.0, -3.5, -87.0, -2.0, -0.01, -11.0];
        let max = vals.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let exact: f32 = max + vals.iter().map(|v| (v - max).exp()).sum::<f32>().ln();
        let fast = fast_log_sum_exp(&vals);
        assert!((fast - exact).abs() <= FASTMATH_LSE_ABS_BOUND);
    }

    #[test]
    fn fast_lse_degenerate_inputs() {
        assert_eq!(fast_log_sum_exp(&[]), f32::NEG_INFINITY);
        assert_eq!(
            fast_log_sum_exp(&[f32::NEG_INFINITY, f32::NEG_INFINITY]),
            f32::NEG_INFINITY
        );
    }

    #[test]
    fn scoring_mode_roundtrip() {
        for mode in [ScoringMode::Exact, ScoringMode::FastMath] {
            assert_eq!(ScoringMode::from_u8(mode.to_u8()), Some(mode));
        }
        assert_eq!(ScoringMode::from_u8(7), None);
        assert_eq!(ScoringMode::default(), ScoringMode::Exact);
        assert!(ScoringMode::FastMath.is_fast() && !ScoringMode::Exact.is_fast());
    }
}
