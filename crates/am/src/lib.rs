//! Acoustic-model substrate.
//!
//! The paper diversifies its parallel front-ends over three acoustic-model
//! families (§4.1): BUT-style **ANN-HMM** (HU/RU/CZ), Tsinghua **DNN-HMM**
//! (EN) and Tsinghua **GMM-HMM** (EN/MA). This crate implements all three
//! from scratch:
//!
//! - [`gmm`]: diagonal-covariance Gaussian mixture models with k-means
//!   initialization and EM,
//! - [`nn`]: feed-forward networks (one hidden layer = "ANN", deeper stack =
//!   "DNN") trained with minibatch SGD on frame/state targets,
//! - [`hmm`]: 3-state left-to-right phone HMM topology and the state
//!   inventory bookkeeping for a phone set,
//! - [`frontend`]: MFCC/PLP + Δ + ΔΔ + CMVN feature extraction (39-dim),
//! - [`scorer`]: the [`scorer::FrameScorer`] abstraction the
//!   decoder consumes — GMM emission log-likelihoods, or NN posteriors
//!   converted to scaled likelihoods,
//! - [`train`]: supervised acoustic-model training from the synthetic
//!   corpus's frame-level reference alignments.

pub mod fastmath;
pub mod frontend;
pub mod gmm;
pub mod hmm;
pub mod nn;
pub mod scorer;
pub mod train;

pub use fastmath::ScoringMode;
pub use frontend::{extract_features, FeatureKind};
pub use gmm::DiagGmm;
pub use hmm::{HmmTopology, StateInventory, STATES_PER_PHONE};
pub use nn::Mlp;
pub use scorer::{FrameScorer, GmmStateScorer, NnStateScorer};
pub use train::{train_acoustic_model, AcousticModel, AmFamily, AmTrainConfig, FeatureTransform};
