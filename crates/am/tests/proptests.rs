//! Property-based tests for the acoustic-model substrate.

use lre_am::{DiagGmm, FeatureTransform, Mlp, StateInventory};
use lre_artifact::{check_damage_detected, ArtifactRead, ArtifactWrite};
use lre_dsp::FrameMatrix;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn frames(n: usize, dim: usize, seed: u64) -> Vec<f32> {
    let mut r = StdRng::seed_from_u64(seed);
    (0..n * dim)
        .map(|_| r.random::<f32>() * 4.0 - 2.0)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // ---------------------------------------------------------------- GMM

    #[test]
    fn gmm_loglik_is_finite_and_peaks_at_data(seed in 0u64..500, n in 10usize..80) {
        let dim = 4;
        let data = frames(n, dim, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        let g = DiagGmm::train(&data, dim, 3, 2, &mut rng);
        // Finite everywhere, and a training point scores above a far outlier.
        let x0 = &data[..dim];
        let far = vec![50.0f32; dim];
        prop_assert!(g.log_likelihood(x0).is_finite());
        prop_assert!(g.log_likelihood(x0) > g.log_likelihood(&far));
        // Weights normalized.
        let wsum: f32 = g.weights().iter().sum();
        prop_assert!((wsum - 1.0).abs() < 1e-4);
    }

    #[test]
    fn gmm_posteriors_always_normalized(seed in 0u64..200) {
        let dim = 3;
        let data = frames(40, dim, seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let g = DiagGmm::train(&data, dim, 4, 2, &mut rng);
        let mut p = vec![0.0; g.num_mix()];
        for probe in [[0.0f32, 0.0, 0.0], [3.0, -3.0, 1.0], [-10.0, 10.0, 0.0]] {
            g.posteriors(&probe, &mut p);
            prop_assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
            prop_assert!(p.iter().all(|&v| (0.0..=1.0 + 1e-6).contains(&v)));
        }
    }

    #[test]
    fn gmm_background_component_preserves_ranking_direction(seed in 0u64..100) {
        let dim = 3;
        let data = frames(60, dim, seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let g = DiagGmm::train(&data, dim, 3, 2, &mut rng);
        let smoothed = g.with_background(0.1, 3.0);
        // The background adds a floor: smoothed likelihoods can't fall below
        // the floored background density minus the mixing penalty.
        let far = vec![8.0f32; dim];
        prop_assert!(smoothed.log_likelihood(&far) >= g.log_likelihood(&far) - 1e-3);
        prop_assert_eq!(smoothed.num_mix(), g.num_mix() + 1);
    }

    // ----------------------------------------------------- FeatureTransform

    #[test]
    fn transform_normalizes_its_own_fit_data(seed in 0u64..200, n in 8usize..60) {
        let dim = 5;
        let data = frames(n, dim, seed);
        let t = FeatureTransform::fit(&data, dim);
        let mut normed = data.clone();
        t.apply_flat(&mut normed);
        for d in 0..dim {
            let vals: Vec<f64> =
                normed.chunks_exact(dim).map(|f| f[d] as f64).collect();
            let mean: f64 = vals.iter().sum::<f64>() / vals.len() as f64;
            let var: f64 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / vals.len() as f64;
            prop_assert!(mean.abs() < 1e-2, "dim {d} mean {mean}");
            prop_assert!((var - 1.0).abs() < 0.05, "dim {d} var {var}");
        }
    }

    #[test]
    fn transform_is_the_same_for_matrix_and_flat(seed in 0u64..100) {
        let dim = 4;
        let data = frames(20, dim, seed);
        let t = FeatureTransform::fit(&data, dim);
        let mut flat = data.clone();
        t.apply_flat(&mut flat);
        let mut matrix = FrameMatrix::from_flat(dim, data);
        t.apply(&mut matrix);
        for (a, b) in flat.iter().zip(matrix.as_slice()) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    // ----------------------------------------------------------------- MLP

    #[test]
    fn mlp_posteriors_normalized_for_any_input(
        seed in 0u64..100,
        x in prop::collection::vec(-5.0f32..5.0, 6),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = Mlp::new(&[6, 10, 4], &mut rng);
        let p = net.posteriors(&x);
        prop_assert_eq!(p.len(), 4);
        prop_assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        prop_assert!(p.iter().all(|v| v.is_finite() && *v >= 0.0));
    }

    // ------------------------------------------------------ StateInventory

    #[test]
    fn uniform_state_is_monotone_within_segment(len in 1usize..40) {
        let mut prev = 0;
        for pos in 0..len {
            let s = StateInventory::uniform_state(pos, len);
            prop_assert!(s >= prev, "state regressed at pos {pos}");
            prop_assert!(s < 3);
            prev = s;
        }
        // First frame always state 0; last frame of len>=3 always state 2.
        prop_assert_eq!(StateInventory::uniform_state(0, len), 0);
        if len >= 3 {
            prop_assert_eq!(StateInventory::uniform_state(len - 1, len), 2);
        }
    }

    // ------------------------------------------------ artifact round trips

    #[test]
    fn gmm_artifact_roundtrip_scores_bit_identically(
        seed in 0u64..200,
        probe in 0usize..1 << 16,
    ) {
        let dim = 4;
        let data = frames(50, dim, seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let g = DiagGmm::train(&data, dim, 3, 2, &mut rng);
        let sealed = g.to_artifact_bytes();
        let back = DiagGmm::from_artifact_bytes(&sealed).expect("round trip");
        for probe_frame in data.chunks_exact(dim).take(8) {
            prop_assert_eq!(
                back.log_likelihood(probe_frame).to_bits(),
                g.log_likelihood(probe_frame).to_bits(),
                "reloaded GMM must score to the bit"
            );
        }
        check_damage_detected::<DiagGmm>(&sealed, probe);
    }

    #[test]
    fn mlp_artifact_roundtrip_scores_bit_identically(
        seed in 0u64..200,
        probe in 0usize..1 << 16,
        x in prop::collection::vec(-3.0f32..3.0, 6),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = Mlp::new(&[6, 9, 4], &mut rng);
        let sealed = net.to_artifact_bytes();
        let back = Mlp::from_artifact_bytes(&sealed).expect("round trip");
        let (mut a, mut b) = (vec![0.0f32; 4], vec![0.0f32; 4]);
        net.log_posteriors_into(&x, &mut a);
        back.log_posteriors_into(&x, &mut b);
        for (p, q) in a.iter().zip(&b) {
            prop_assert_eq!(p.to_bits(), q.to_bits(), "reloaded MLP must score to the bit");
        }
        check_damage_detected::<Mlp>(&sealed, probe);
    }
}

// ------------------------------------------------------- fast-math kernels
//
// The fast-math contract has two layers: the scalar kernels' bounds
// (FAST_EXP_REL_ERR / FAST_LN_ABS_ERR / FASTMATH_LSE_ABS_BOUND, exercised
// directly below) and the block-kernel bound for *unnormalized* random
// parameters, which is magnitude-scaled: the mean-expanded accumulation
// rounds at the ulp of its partial sums, so with means up to ±2 and
// frames up to ±3 the element-wise deviation is bounded by
// `GMM_BLOCK_FAST_ABS_BOUND` (CMVN-normalized production features sit an
// order of magnitude tighter — see the unit test on a trained scorer).
const GMM_BLOCK_FAST_ABS_BOUND: f32 = 1e-3;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fast_exp_relative_error_bounded(x in -87.0f32..88.0) {
        let exact = x.exp();
        let rel = ((lre_am::fastmath::fast_exp(x) - exact) / exact).abs();
        prop_assert!(rel <= lre_am::fastmath::FAST_EXP_REL_ERR, "x={x} rel={rel}");
    }

    #[test]
    fn fast_ln_absolute_error_bounded(x in 1e-6f32..1e6) {
        let d = (lre_am::fastmath::fast_ln(x) - x.ln()).abs();
        prop_assert!(d <= lre_am::fastmath::FAST_LN_ABS_ERR, "x={x} d={d}");
    }

    #[test]
    fn fast_lse_within_bound_of_exact(
        vals in prop::collection::vec(-40.0f32..0.0, 1..24),
    ) {
        let max = vals.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let exact = max + vals.iter().map(|v| (v - max).exp()).sum::<f32>().ln();
        let fast = lre_am::fastmath::fast_log_sum_exp(&vals);
        prop_assert!(
            (fast - exact).abs() <= lre_am::fastmath::FASTMATH_LSE_ABS_BOUND,
            "exact={exact} fast={fast}"
        );
    }

    #[test]
    fn fast_lse_monotone_in_its_max_term(
        mut vals in prop::collection::vec(-30.0f32..0.0, 1..16),
    ) {
        // Raising the dominant term by 0.1 raises the true LSE by at least
        // 0.1/K — far above the kernel error bound, so the fast LSE must
        // strictly increase too.
        let before = lre_am::fastmath::fast_log_sum_exp(&vals);
        let (arg, _) = vals
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap();
        vals[arg] += 0.1;
        let after = lre_am::fastmath::fast_log_sum_exp(&vals);
        prop_assert!(after > before, "before={before} after={after}");
    }

    #[test]
    fn fast_lse_permutation_invariant(
        vals in prop::collection::vec(-20.0f32..0.0, 2..16),
        rot in 0usize..16,
    ) {
        let a = lre_am::fastmath::fast_log_sum_exp(&vals);
        let mut rotated = vals.clone();
        rotated.rotate_left(rot % vals.len());
        let b = lre_am::fastmath::fast_log_sum_exp(&rotated);
        let mut reversed = vals.clone();
        reversed.reverse();
        let c = lre_am::fastmath::fast_log_sum_exp(&reversed);
        // Only the f32 resummation order differs: ≤ 16 positive terms with
        // partial sums ≤ 16 keeps any two orderings within a few ulp.
        prop_assert!((a - b).abs() <= 5e-5, "rotate: {a} vs {b}");
        prop_assert!((a - c).abs() <= 5e-5, "reverse: {a} vs {c}");
    }

    #[test]
    fn gmm_block_fast_tracks_exact_elementwise(
        seed in 0u64..300,
        n in 1usize..80,
        k in 1usize..6,
    ) {
        let dim = 7;
        let mut r = StdRng::seed_from_u64(seed);
        let means: Vec<f32> = (0..k * dim).map(|_| r.random::<f32>() * 4.0 - 2.0).collect();
        let vars: Vec<f32> = (0..k * dim).map(|_| 0.5 + r.random::<f32>() * 2.0).collect();
        let weights: Vec<f32> = (0..k).map(|_| 0.1 + r.random::<f32>()).collect();
        let g = DiagGmm::from_params(means, vars, weights, dim);
        // Transposed block: dimension-major, frame-minor.
        let ft: Vec<f32> = (0..dim * n).map(|_| r.random::<f32>() * 6.0 - 3.0).collect();
        let mut comps = Vec::new();
        let mut exact = vec![0.0f32; n];
        let mut fast = vec![0.0f32; n];
        g.log_likelihood_block_t(&ft, &mut comps, &mut exact);
        g.log_likelihood_block_t_fast(&ft, &mut comps, &mut fast);
        for (t, (e, f)) in exact.iter().zip(&fast).enumerate() {
            prop_assert!(f.is_finite(), "frame {t} not finite");
            prop_assert!(
                (e - f).abs() <= GMM_BLOCK_FAST_ABS_BOUND,
                "frame {t}: exact={e} fast={f}"
            );
        }
    }
}
