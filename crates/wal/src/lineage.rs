//! The generation-lineage store: every served bundle generation, sealed
//! on disk, restorable bit-identically.
//!
//! The in-memory adaptation controller keeps exactly one previous model
//! for rollback. This store extends that to the full serve history: a
//! chain of generations where each entry records the bundle's checksum,
//! its parent's checksum, and the pristine sealed bytes in a
//! `gen-<generation>.bndl` file. `rollback --to <gen>` loads those exact
//! bytes back — `f32::to_bits`-identical scores follow from the artifact
//! layer's bit-exact float encoding.
//!
//! Chain shape. Generations are **contiguous serve events** (0, 1, 2, …
//! with no gaps): a promote after a deep rollback does not rewind the
//! numbering, it appends the next number with its parent pointer aimed at
//! the generation it was boosted from. The parent pointer must always
//! name a *strictly earlier* generation's checksum, which is what keeps
//! the chain acyclic even though it is not a straight line.
//!
//! Retention. [`LineageStore::gc`] prunes the oldest generations' *bytes*
//! by count or byte budget but keeps their index entries (marked pruned),
//! so the chain stays checkable end to end; loading a pruned generation
//! is a typed refusal, not a file-not-found surprise.

use crate::dir::{fsync_dir, write_durable};
use lre_artifact::{crc32, ArtifactError, ArtifactReader, ArtifactWriter};
use lre_obs::{FlightRecorder, EV_WAL_GC};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const IDX_FILE: &str = "lineage.idx";
const IDX_KIND: [u8; 4] = *b"GLIN";
const IDX_VERSION: u32 = 1;

/// File name of a retained generation's sealed bundle bytes.
pub fn generation_name(generation: u64) -> String {
    format!("gen-{generation:010}.bndl")
}

/// One chain entry. The sealed bytes live next to the index in
/// `gen-<generation>.bndl` unless `pruned`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineageEntry {
    pub generation: u64,
    /// CRC-32 of the sealed bundle bytes (the workspace-wide bundle
    /// checksum).
    pub checksum: u32,
    /// Checksum of the bundle this one was boosted from. For the root
    /// entry this is whatever the bundle itself claims (typically 0).
    pub parent_checksum: u32,
    /// Utterances selected into the boost round that produced it.
    pub selected: u32,
    /// Sealed bundle byte length (kept for byte-budget GC accounting
    /// even after pruning).
    pub bytes_len: u64,
    /// Bytes discarded by GC; the entry remains for chain validation.
    pub pruned: bool,
}

/// Typed failures of the lineage store, beyond artifact-level damage.
#[derive(Debug)]
pub enum LineageError {
    Artifact(ArtifactError),
    /// The requested generation is not in the chain at all.
    UnknownGeneration(u64),
    /// The generation existed but its bytes were garbage-collected.
    Pruned(u64),
    /// An append that does not extend the chain head by exactly one, or
    /// whose parent checksum matches no earlier generation.
    BrokenChain(&'static str),
}

impl std::fmt::Display for LineageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LineageError::Artifact(e) => write!(f, "lineage artifact error: {e}"),
            LineageError::UnknownGeneration(g) => write!(f, "unknown generation {g}"),
            LineageError::Pruned(g) => write!(f, "generation {g} was garbage-collected"),
            LineageError::BrokenChain(what) => write!(f, "lineage chain violation: {what}"),
        }
    }
}

impl std::error::Error for LineageError {}

impl From<ArtifactError> for LineageError {
    fn from(e: ArtifactError) -> LineageError {
        LineageError::Artifact(e)
    }
}

impl From<std::io::Error> for LineageError {
    fn from(e: std::io::Error) -> LineageError {
        LineageError::Artifact(ArtifactError::Io(e))
    }
}

/// The on-disk generation chain. Not internally locked: the adaptation
/// controller already serializes promotes and rollbacks, so callers wrap
/// the store in their existing mutex.
pub struct LineageStore {
    path: PathBuf,
    entries: Vec<LineageEntry>,
    flight: Option<Arc<FlightRecorder>>,
}

impl LineageStore {
    /// Open (or create) the store at `path` and validate the whole chain:
    /// contiguous generation numbers, acyclic parent pointers, and a
    /// present bundle file for every unpruned entry.
    pub fn open(path: &Path) -> Result<LineageStore, LineageError> {
        fs::create_dir_all(path).map_err(ArtifactError::Io)?;
        let idx_path = path.join(IDX_FILE);
        let entries = match fs::read(&idx_path) {
            Ok(bytes) => decode_index(&bytes)?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(ArtifactError::Io(e).into()),
        };
        let store = LineageStore {
            path: path.to_path_buf(),
            entries,
            flight: None,
        };
        store.validate_chain()?;
        Ok(store)
    }

    /// Record GC events into this flight recorder.
    pub fn set_flight(&mut self, flight: Arc<FlightRecorder>) {
        self.flight = Some(flight);
    }

    fn validate_chain(&self) -> Result<(), LineageError> {
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                let prev = &self.entries[i - 1];
                if e.generation != prev.generation + 1 {
                    return Err(LineageError::BrokenChain(
                        "generation numbers not contiguous",
                    ));
                }
                if !self.entries[..i]
                    .iter()
                    .any(|p| p.checksum == e.parent_checksum)
                {
                    return Err(LineageError::BrokenChain(
                        "parent checksum matches no earlier generation",
                    ));
                }
            }
            if !e.pruned && !self.path.join(generation_name(e.generation)).exists() {
                return Err(LineageError::BrokenChain(
                    "retained generation file missing",
                ));
            }
        }
        Ok(())
    }

    /// Seed an empty store with the generation being served right now
    /// (the baseline bundle). No-op if the chain already starts.
    pub fn record_root(&mut self, sealed: &[u8], generation: u64) -> Result<(), LineageError> {
        if !self.entries.is_empty() {
            return Ok(());
        }
        self.push_entry(sealed, generation, read_parent_checksum(sealed), 0)
    }

    /// Append the next served generation. `generation` must extend the
    /// head by exactly one and `parent_checksum` must name an earlier
    /// retained-or-pruned generation — the promote path calls this
    /// *before* swapping the scorer, so a bundle is never served that the
    /// chain cannot restore.
    pub fn append(
        &mut self,
        sealed: &[u8],
        generation: u64,
        parent_checksum: u32,
        selected: u32,
    ) -> Result<(), LineageError> {
        let head = self
            .entries
            .last()
            .ok_or(LineageError::BrokenChain("append to an unrooted chain"))?;
        if generation != head.generation + 1 {
            return Err(LineageError::BrokenChain(
                "append must extend the head by one",
            ));
        }
        if !self.entries.iter().any(|e| e.checksum == parent_checksum) {
            return Err(LineageError::BrokenChain(
                "parent checksum matches no earlier generation",
            ));
        }
        self.push_entry(sealed, generation, parent_checksum, selected)
    }

    fn push_entry(
        &mut self,
        sealed: &[u8],
        generation: u64,
        parent_checksum: u32,
        selected: u32,
    ) -> Result<(), LineageError> {
        let entry = LineageEntry {
            generation,
            checksum: crc32(sealed),
            parent_checksum,
            selected,
            bytes_len: sealed.len() as u64,
            pruned: false,
        };
        // Bytes first, index second: a crash in between leaves an orphan
        // bundle file (harmless), never an index entry without bytes.
        write_durable(&self.path, &generation_name(generation), sealed)?;
        self.entries.push(entry);
        self.store_index()?;
        Ok(())
    }

    /// Load the pristine sealed bytes of `generation`, verifying the
    /// stored checksum before handing them out.
    pub fn load(&self, generation: u64) -> Result<Vec<u8>, LineageError> {
        let entry = self
            .entries
            .iter()
            .find(|e| e.generation == generation)
            .ok_or(LineageError::UnknownGeneration(generation))?;
        if entry.pruned {
            return Err(LineageError::Pruned(generation));
        }
        let bytes =
            fs::read(self.path.join(generation_name(generation))).map_err(ArtifactError::Io)?;
        if crc32(&bytes) != entry.checksum {
            return Err(ArtifactError::ChecksumMismatch.into());
        }
        Ok(bytes)
    }

    /// The newest chain entry.
    pub fn head(&self) -> Option<&LineageEntry> {
        self.entries.last()
    }

    /// Every chain entry, oldest first (pruned included).
    pub fn entries(&self) -> &[LineageEntry] {
        &self.entries
    }

    /// Entries whose bytes are still on disk.
    pub fn retained(&self) -> usize {
        self.entries.iter().filter(|e| !e.pruned).count()
    }

    /// Bytes currently held by retained generations.
    pub fn retained_bytes(&self) -> u64 {
        self.entries
            .iter()
            .filter(|e| !e.pruned)
            .map(|e| e.bytes_len)
            .sum()
    }

    /// Prune the oldest retained generations until at most `keep_count`
    /// remain and (when given) at most `max_bytes` are held. The head is
    /// never pruned — the serving generation must stay restorable.
    /// Returns (generations pruned, bytes reclaimed).
    pub fn gc(
        &mut self,
        keep_count: usize,
        max_bytes: Option<u64>,
    ) -> Result<(u64, u64), LineageError> {
        let keep_count = keep_count.max(1);
        let mut pruned = 0u64;
        let mut reclaimed = 0u64;
        loop {
            let retained = self.retained();
            let over_count = retained > keep_count;
            let over_bytes = max_bytes.is_some_and(|b| self.retained_bytes() > b) && retained > 1;
            if !over_count && !over_bytes {
                break;
            }
            let Some(oldest) = self
                .entries
                .iter()
                .position(|e| !e.pruned)
                .filter(|&i| i + 1 < self.entries.len())
            else {
                break; // only the head left
            };
            let gen = self.entries[oldest].generation;
            fs::remove_file(self.path.join(generation_name(gen))).ok();
            self.entries[oldest].pruned = true;
            pruned += 1;
            reclaimed += self.entries[oldest].bytes_len;
        }
        if pruned > 0 {
            fsync_dir(&self.path)?;
            self.store_index()?;
            if let Some(flight) = &self.flight {
                flight.record(EV_WAL_GC, "lineage gc", pruned, reclaimed, 0.0, 0.0);
            }
        }
        Ok((pruned, reclaimed))
    }

    fn store_index(&self) -> Result<(), LineageError> {
        let mut w = ArtifactWriter::new();
        w.put_u32(self.entries.len() as u32);
        for e in &self.entries {
            w.put_u64(e.generation);
            w.put_u32(e.checksum);
            w.put_u32(e.parent_checksum);
            w.put_u32(e.selected);
            w.put_u64(e.bytes_len);
            w.put_u8(u8::from(e.pruned));
        }
        let sealed = lre_artifact::seal(IDX_KIND, IDX_VERSION, &w.into_bytes());
        write_durable(&self.path, IDX_FILE, &sealed)?;
        Ok(())
    }
}

fn decode_index(bytes: &[u8]) -> Result<Vec<LineageEntry>, ArtifactError> {
    let payload = lre_artifact::open(bytes, IDX_KIND, IDX_VERSION)?;
    let mut r = ArtifactReader::new(payload);
    let count = r.get_count(29)?;
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        entries.push(LineageEntry {
            generation: r.get_u64()?,
            checksum: r.get_u32()?,
            parent_checksum: r.get_u32()?,
            selected: r.get_u32()?,
            bytes_len: r.get_u64()?,
            pruned: match r.get_u8()? {
                0 => false,
                1 => true,
                _ => return Err(ArtifactError::Corrupt("unknown pruned flag")),
            },
        });
    }
    if r.remaining() != 0 {
        return Err(ArtifactError::TrailingBytes);
    }
    Ok(entries)
}

/// Best-effort read of a sealed bundle's own parent-checksum field is the
/// bundle format's business, not ours; the root entry simply records 0
/// when the caller has nothing better.
fn read_parent_checksum(_sealed: &[u8]) -> u32 {
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use lre_artifact::seal;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("lre_wal_lin_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    /// A synthetic sealed "bundle": a BNDL-tagged container of f32 bits.
    fn bundle(gen: u64, scores: &[f32]) -> Vec<u8> {
        let mut w = ArtifactWriter::new();
        w.put_u64(gen);
        w.put_f32_slice(scores);
        seal(*b"BNDL", 4, &w.into_bytes())
    }

    #[test]
    fn chain_appends_and_reloads_bit_identically() {
        let d = tmpdir("chain");
        let b0 = bundle(0, &[0.5, -1.25, f32::MIN_POSITIVE]);
        let b1 = bundle(1, &[0.75, -1.0, 3.5]);
        let b2 = bundle(2, &[0.125, 2.0, -0.0]);
        {
            let mut store = LineageStore::open(&d).unwrap();
            store.record_root(&b0, 0).unwrap();
            store.append(&b1, 1, crc32(&b0), 10).unwrap();
            store.append(&b2, 2, crc32(&b1), 12).unwrap();
        }
        let store = LineageStore::open(&d).unwrap();
        assert_eq!(store.head().unwrap().generation, 2);
        for (gen, want) in [(0, &b0), (1, &b1), (2, &b2)] {
            let got = store.load(gen).unwrap();
            assert_eq!(&got, want, "generation {gen} must be byte-identical");
        }
        fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn append_enforces_contiguity_and_known_parent() {
        let d = tmpdir("enforce");
        let mut store = LineageStore::open(&d).unwrap();
        let b0 = bundle(0, &[1.0]);
        assert!(matches!(
            store.append(&bundle(1, &[2.0]), 1, 0, 0),
            Err(LineageError::BrokenChain(_))
        ));
        store.record_root(&b0, 0).unwrap();
        // Gap in numbering.
        assert!(matches!(
            store.append(&bundle(2, &[2.0]), 2, crc32(&b0), 0),
            Err(LineageError::BrokenChain(_))
        ));
        // Unknown parent checksum.
        assert!(matches!(
            store.append(&bundle(1, &[2.0]), 1, 0xDEAD_BEEF, 0),
            Err(LineageError::BrokenChain(_))
        ));
        // Parent may be any earlier generation (post-deep-rollback shape).
        let b1 = bundle(1, &[2.0]);
        store.append(&b1, 1, crc32(&b0), 0).unwrap();
        store.append(&bundle(2, &[3.0]), 2, crc32(&b0), 0).unwrap();
        fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn gc_prunes_oldest_keeps_head_and_chain_stays_valid() {
        let d = tmpdir("gc");
        let mut store = LineageStore::open(&d).unwrap();
        let mut bundles = vec![bundle(0, &[0.0])];
        store.record_root(&bundles[0], 0).unwrap();
        for g in 1..6u64 {
            let b = bundle(g, &[g as f32]);
            let parent = crc32(&bundles[g as usize - 1]);
            store.append(&b, g, parent, g as u32).unwrap();
            bundles.push(b);
        }
        let (pruned, reclaimed) = store.gc(3, None).unwrap();
        assert_eq!(pruned, 3);
        assert!(reclaimed > 0);
        assert_eq!(store.retained(), 3);
        assert!(matches!(store.load(0), Err(LineageError::Pruned(0))));
        assert!(matches!(
            store.load(9),
            Err(LineageError::UnknownGeneration(9))
        ));
        assert_eq!(store.load(5).unwrap(), bundles[5]);
        // Entries survive for chain validation, and reopen still validates.
        assert_eq!(store.entries().len(), 6);
        drop(store);
        let store = LineageStore::open(&d).unwrap();
        assert_eq!(store.retained(), 3);
        assert_eq!(store.load(4).unwrap(), bundles[4]);
        fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn gc_by_bytes_never_prunes_the_head() {
        let d = tmpdir("bytes");
        let mut store = LineageStore::open(&d).unwrap();
        let b0 = bundle(0, &[1.0; 100]);
        store.record_root(&b0, 0).unwrap();
        let b1 = bundle(1, &[2.0; 100]);
        store.append(&b1, 1, crc32(&b0), 0).unwrap();
        // Budget below even one bundle: everything but the head goes.
        store.gc(10, Some(8)).unwrap();
        assert_eq!(store.retained(), 1);
        assert_eq!(store.load(1).unwrap(), b1);
        fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn damaged_bundle_bytes_are_refused_at_load() {
        let d = tmpdir("damage");
        let mut store = LineageStore::open(&d).unwrap();
        let b0 = bundle(0, &[1.0, 2.0]);
        store.record_root(&b0, 0).unwrap();
        let path = d.join(generation_name(0));
        let mut bytes = fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n / 2] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            store.load(0),
            Err(LineageError::Artifact(ArtifactError::ChecksumMismatch))
        ));
        fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn missing_retained_file_fails_open_validation() {
        let d = tmpdir("missing");
        {
            let mut store = LineageStore::open(&d).unwrap();
            store.record_root(&bundle(0, &[1.0]), 0).unwrap();
        }
        fs::remove_file(d.join(generation_name(0))).unwrap();
        assert!(matches!(
            LineageStore::open(&d),
            Err(LineageError::BrokenChain(_))
        ));
        fs::remove_dir_all(&d).ok();
    }
}
