//! `lre-wal`: durable, crash-safe adaptation state.
//!
//! The serve→adapt loop is stateful in two ways that matter after a
//! crash: the buffered vote window (the utterances the next boost round
//! would select from) and the history of served model generations (what
//! a rollback can restore). This crate makes both durable without
//! knowing anything about votes or bundles — it stores *opaque sealed
//! `lre-artifact` containers*, which keeps it a leaf below `lre-serve`:
//!
//! * [`SegmentedWal`] — a segmented write-ahead log of sealed records:
//!   per-record CRC framing (each record is its own container), bounded
//!   append segments indexed by a durable segment directory, background
//!   sealing + LZSS compression of retired segments, fsync batching with
//!   a configurable durability interval, logical truncation via a
//!   low-water mark, and torn-tail-tolerant replay on restart.
//! * [`LineageStore`] — the generation chain: every served bundle's
//!   pristine sealed bytes keyed by generation number, with parent
//!   checksums validated on append and on open, retention/GC by count or
//!   bytes, and checksum-verified loads so `rollback --to <gen>` restores
//!   `f32::to_bits`-identical scores.
//!
//! Telemetry rides [`lre_obs`]: `wal.*` counters and latency histograms
//! ([`WalObs`]) plus flight-recorder events for seal, GC, and recovery.

pub mod compress;
pub mod dir;
pub mod lineage;
pub mod log;
pub mod segment;

pub use dir::{SegmentEntry, WalDir};
pub use lineage::{generation_name, LineageEntry, LineageError, LineageStore};
pub use log::{SegmentedWal, WalObs, WalOptions, WalReplay, WalStatus};
pub use segment::{SealedSegment, Tail};
