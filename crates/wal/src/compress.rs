//! LZSS byte compression for sealed WAL segments.
//!
//! Vote records are highly repetitive — fixed wire scaffolding, runs of
//! near-identical score vectors, repeated sparse-vector index patterns —
//! so even a modest dictionary coder cuts cold segments substantially.
//! The workspace vendors no compression crate, so this is a small
//! self-contained LZSS:
//!
//! * window 4096 bytes, match length 3..=18;
//! * output is groups of one *control byte* (eight flags, LSB first)
//!   followed by eight items: flag 0 → one literal byte, flag 1 → a
//!   2-byte token `[offset_hi4 | len-3, offset_lo8]` encoding a
//!   back-reference (offset 1..=4095 back, length 3..=18);
//! * the encoder finds matches through a 3-byte-prefix hash table with a
//!   single candidate per slot — O(n), trading ratio for speed, which is
//!   the right trade for a background sealing thread.
//!
//! The decoder needs the exact decompressed length up front (the sealed
//! segment header carries it) and treats any deviation — token past the
//! declared end, back-reference before the start, leftover input — as
//! corruption. Compressed segments additionally travel inside a sealed
//! `lre-artifact` container, so bit rot is caught by CRC before this
//! decoder ever runs; the checks here defend the invariants, not the
//! media.

use lre_artifact::ArtifactError;

const WINDOW: usize = 4096;
const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = 18;
const HASH_BITS: u32 = 13;

#[inline]
fn hash3(data: &[u8], i: usize) -> usize {
    let v = (data[i] as u32) | ((data[i + 1] as u32) << 8) | ((data[i + 2] as u32) << 16);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// LZSS-compress `data`. The output is self-delimiting only together with
/// the original length, which callers must store alongside.
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    // Most-recent position of each 3-byte-prefix hash; usize::MAX = empty.
    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut i = 0;
    while i < data.len() {
        let control_at = out.len();
        out.push(0);
        let mut control = 0u8;
        for flag in 0..8 {
            if i >= data.len() {
                break;
            }
            let mut match_len = 0;
            let mut match_off = 0;
            if i + MIN_MATCH <= data.len() {
                let h = hash3(data, i);
                let cand = head[h];
                head[h] = i;
                if cand != usize::MAX && i - cand < WINDOW {
                    let limit = MAX_MATCH.min(data.len() - i);
                    let mut l = 0;
                    while l < limit && data[cand + l] == data[i + l] {
                        l += 1;
                    }
                    if l >= MIN_MATCH {
                        match_len = l;
                        match_off = i - cand;
                    }
                }
            }
            if match_len >= MIN_MATCH {
                control |= 1 << flag;
                let token = (((match_len - MIN_MATCH) as u16) << 12) | (match_off as u16);
                out.extend_from_slice(&token.to_le_bytes());
                // Seed the hash table through the matched span so later
                // matches can land inside it.
                let end = (i + match_len).min(data.len().saturating_sub(MIN_MATCH - 1));
                for j in (i + 1)..end {
                    head[hash3(data, j)] = j;
                }
                i += match_len;
            } else {
                out.push(data[i]);
                i += 1;
            }
        }
        out[control_at] = control;
    }
    out
}

/// Decompress exactly `raw_len` bytes. Every structural violation is a
/// typed [`ArtifactError::Corrupt`].
pub fn decompress(data: &[u8], raw_len: usize) -> Result<Vec<u8>, ArtifactError> {
    let mut out = Vec::with_capacity(raw_len);
    let mut i = 0;
    while out.len() < raw_len {
        if i >= data.len() {
            return Err(ArtifactError::Corrupt("compressed stream ends early"));
        }
        let control = data[i];
        i += 1;
        for flag in 0..8 {
            if out.len() == raw_len {
                break;
            }
            if control & (1 << flag) != 0 {
                if i + 2 > data.len() {
                    return Err(ArtifactError::Corrupt("compressed token truncated"));
                }
                let token = u16::from_le_bytes([data[i], data[i + 1]]);
                i += 2;
                let len = ((token >> 12) as usize) + MIN_MATCH;
                let off = (token & 0x0FFF) as usize;
                if off == 0 || off > out.len() {
                    return Err(ArtifactError::Corrupt("back-reference before stream start"));
                }
                if out.len() + len > raw_len {
                    return Err(ArtifactError::Corrupt(
                        "back-reference past declared length",
                    ));
                }
                // Byte-at-a-time: overlapping references (off < len) are
                // legal LZSS and reproduce runs.
                for _ in 0..len {
                    let b = out[out.len() - off];
                    out.push(b);
                }
            } else {
                if i >= data.len() {
                    return Err(ArtifactError::Corrupt("compressed literal truncated"));
                }
                if out.len() == raw_len {
                    return Err(ArtifactError::Corrupt("literal past declared length"));
                }
                out.push(data[i]);
                i += 1;
            }
        }
    }
    if i != data.len() {
        return Err(ArtifactError::Corrupt(
            "compressed stream has trailing bytes",
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let packed = compress(data);
        let back = decompress(&packed, data.len()).expect("decompress");
        assert_eq!(back, data);
    }

    #[test]
    fn roundtrips_edge_shapes() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"ab");
        roundtrip(b"abc");
        roundtrip(&[0u8; 10_000]); // long run → overlapping references
        roundtrip("abcabcabcabcabcabc".as_bytes());
        roundtrip(&(0..=255u8).collect::<Vec<_>>()); // incompressible ramp
    }

    #[test]
    fn roundtrips_pseudorandom_and_repetitive_mix() {
        // Deterministic xorshift noise interleaved with repeated blocks —
        // the shape of concatenated vote records.
        let mut state = 0x1234_5678_9ABC_DEFFu64;
        let mut data = Vec::new();
        for block in 0..64 {
            let mut chunk = Vec::new();
            for _ in 0..200 {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                chunk.push((state & 0xFF) as u8);
            }
            data.extend_from_slice(&chunk);
            if block % 3 == 0 {
                data.extend_from_slice(&chunk); // immediate repeat
            }
            data.extend_from_slice(b"LREA-record-scaffolding");
        }
        let packed = compress(&data);
        assert!(packed.len() < data.len(), "mixed data should compress");
        assert_eq!(decompress(&packed, data.len()).unwrap(), data);
    }

    #[test]
    fn repetitive_data_actually_shrinks() {
        let data = b"the same vote record header ".repeat(100);
        let packed = compress(&data);
        assert!(
            packed.len() * 4 < data.len(),
            "100x repeat should compress at least 4:1, got {} -> {}",
            data.len(),
            packed.len()
        );
    }

    #[test]
    fn decompress_rejects_structural_damage() {
        let data = b"abcabcabcabc some literal tail".to_vec();
        let packed = compress(&data);
        // Wrong declared length, both directions.
        assert!(decompress(&packed, data.len() + 1).is_err());
        assert!(decompress(&packed, data.len().saturating_sub(1)).is_err());
        // Truncated stream.
        assert!(decompress(&packed[..packed.len() - 1], data.len()).is_err());
        // A token whose back-reference points before the start.
        let bad = vec![0x01, 0x05, 0x00]; // control: token; offset 5 into empty output
        assert!(decompress(&bad, 8).is_err());
        // Offset zero is never valid.
        let zero_off = vec![0x01, 0x00, 0x00];
        assert!(decompress(&zero_off, 8).is_err());
    }
}
