//! The segmented write-ahead log.
//!
//! [`SegmentedWal`] appends opaque *sealed records* — complete
//! `lre-artifact` containers of one configured kind (the vote log uses
//! `VREC`) — to a directory of bounded segment files, and on restart
//! replays every record that was durable at the crash:
//!
//! * **Appends** go to the open segment with one buffered `write_all`;
//!   durability is batched — a background worker fsyncs the open segment
//!   every `fsync_interval` (interval zero = fsync inline on every
//!   append). A kill -9 therefore loses at most one interval of
//!   acknowledged records, and never a byte that a [`SegmentedWal::sync`]
//!   returned for.
//! * **Rolling**: when the open segment reaches its byte budget it is
//!   retired and queued for the worker, which compresses it into an
//!   immutable sealed container ([`crate::segment::SealedSegment`]) and
//!   deletes the raw file.
//! * **Logical truncation**: a drain calls [`SegmentedWal::truncate_to`],
//!   which advances the durable low-water mark in the directory index and
//!   garbage-collects segments whose whole range fell below it. Nothing
//!   rewrites record data.
//! * **Replay**: [`SegmentedWal::open`] reconciles the directory index
//!   with the files on disk, walks every live segment, tolerates a torn
//!   *tail* record (the signature of a crash mid-append — the file is
//!   truncated back to the last clean boundary), and hands back every
//!   surviving record at or above the low-water mark, in sequence order.

use crate::dir::{fsync_dir, write_durable, SegmentEntry, WalDir};
use crate::segment::{open_name, sealed_name, walk_records, SealedSegment, Tail};
use lre_artifact::{ArtifactError, HEADER_LEN, MAGIC};
use lre_obs::{
    Counter, FlightRecorder, Histogram, Registry, EV_WAL_GC, EV_WAL_RECOVER, EV_WAL_SEAL,
};
use std::collections::VecDeque;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Configuration for a [`SegmentedWal`].
#[derive(Clone)]
pub struct WalOptions {
    /// Container kind every appended record must carry.
    pub record_kind: [u8; 4],
    /// Container version every appended record must carry.
    pub record_version: u32,
    /// Byte budget of an open segment; reaching it triggers a roll and a
    /// background seal.
    pub segment_bytes: u64,
    /// Durability interval for fsync batching. `Duration::ZERO` fsyncs
    /// inline on every append (maximum durability, per-append cost).
    pub fsync_interval: Duration,
}

impl WalOptions {
    /// Options for a log of `kind`/`version` records with a 1 MiB
    /// segment budget and 50 ms fsync batching.
    pub fn new(record_kind: [u8; 4], record_version: u32) -> WalOptions {
        WalOptions {
            record_kind,
            record_version,
            segment_bytes: 1 << 20,
            fsync_interval: Duration::from_millis(50),
        }
    }
}

/// Pre-registered WAL telemetry. Cloneable (the worker thread keeps its
/// own handle); every series lives under the `wal.` prefix.
#[derive(Clone)]
pub struct WalObs {
    pub append_us: Arc<Histogram>,
    pub seal_us: Arc<Histogram>,
    pub fsync_us: Arc<Histogram>,
    pub appended_records: Arc<Counter>,
    pub replayed_records: Arc<Counter>,
    pub torn_records: Arc<Counter>,
    pub sealed_segments: Arc<Counter>,
    pub gc_segments: Arc<Counter>,
    pub flight: Option<Arc<FlightRecorder>>,
}

impl WalObs {
    /// Register (or re-attach to) the `wal.*` series in `registry`.
    pub fn new(registry: &Registry, flight: Option<Arc<FlightRecorder>>) -> WalObs {
        WalObs {
            append_us: registry.histogram("wal.append_us"),
            seal_us: registry.histogram("wal.seal_us"),
            fsync_us: registry.histogram("wal.fsync_us"),
            appended_records: registry.counter("wal.appended_records"),
            replayed_records: registry.counter("wal.replayed_records"),
            torn_records: registry.counter("wal.torn_records"),
            sealed_segments: registry.counter("wal.sealed_segments"),
            gc_segments: registry.counter("wal.gc_segments"),
            flight,
        }
    }
}

/// What [`SegmentedWal::open`] recovered from disk.
pub struct WalReplay {
    /// Every durable record at or above the low-water mark, ascending by
    /// sequence number, in its original sealed container form.
    pub records: Vec<(u64, Vec<u8>)>,
    /// Torn tail records skipped (0 or 1 — only the final record of the
    /// final segment can tear).
    pub torn_tail_records: u64,
    /// Durable low-water mark at open.
    pub low_water: u64,
    /// Sequence number the next append will receive.
    pub next_seq: u64,
}

/// A point-in-time summary of the log, cheap enough for a status RPC.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStatus {
    /// Total records ever appended (the next sequence number).
    pub next_seq: u64,
    /// First logically present sequence number.
    pub low_water: u64,
    /// Records currently in the log (`next_seq - low_water`).
    pub buffered: u64,
    /// Live segments, open + sealed.
    pub segments: u64,
    /// Of those, sealed (compressed, immutable).
    pub sealed_segments: u64,
    /// Records replayed by this process's `open`.
    pub replayed: u64,
    /// Torn tail records skipped by this process's `open`.
    pub torn: u64,
    /// fsyncs issued since open.
    pub fsyncs: u64,
    /// Appends not yet covered by an fsync.
    pub unsynced: u64,
}

struct OpenSegment {
    file: File,
    first_seq: u64,
    bytes: u64,
}

struct Inner {
    dir: WalDir,
    open: Option<OpenSegment>,
    next_seq: u64,
    /// Appends since the last fsync of the open segment.
    unsynced: u64,
    fsyncs: u64,
    replayed: u64,
    torn: u64,
    /// Retired open segments awaiting background sealing (first_seq).
    seal_queue: VecDeque<u64>,
    stopping: bool,
}

struct Shared {
    inner: Mutex<Inner>,
    cv: Condvar,
    path: PathBuf,
    opts: WalOptions,
    obs: Option<WalObs>,
}

/// The segmented write-ahead log. All methods take `&self`; appends and
/// truncation serialize on one internal mutex, fsync and sealing run on
/// a background worker.
pub struct SegmentedWal {
    shared: Arc<Shared>,
    worker: Mutex<Option<thread::JoinHandle<()>>>,
}

impl SegmentedWal {
    /// Open (or create) the WAL at `path`, replaying whatever survived.
    /// The caller owns feeding [`WalReplay::records`] back into its
    /// in-memory state.
    pub fn open(
        path: &Path,
        opts: WalOptions,
        obs: Option<WalObs>,
    ) -> Result<(SegmentedWal, WalReplay), ArtifactError> {
        fs::create_dir_all(path)?;
        let mut dir = WalDir::load(path)?;
        reconcile_with_disk(path, &mut dir)?;

        let mut records: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut torn_tail = 0u64;
        let mut next_seq = dir.low_water;
        let mut open_tail: Option<(u64, u64)> = None; // (first_seq, clean bytes)
        let last_idx = dir.segments.len().checked_sub(1);
        for (i, entry) in dir.segments.iter().enumerate() {
            let is_last = Some(i) == last_idx;
            let segment_records: Vec<Vec<u8>>;
            let mut clean_bytes = 0u64;
            if entry.sealed {
                let bytes = fs::read(path.join(sealed_name(entry.first_seq)))?;
                let seg = SealedSegment::open_bytes(&bytes, opts.record_kind, opts.record_version)?;
                if seg.first_seq != entry.first_seq {
                    return Err(ArtifactError::Corrupt("sealed segment sequence mismatch"));
                }
                segment_records = seg.records;
            } else {
                let bytes = fs::read(path.join(open_name(entry.first_seq)))?;
                let (recs, tail) = walk_records(&bytes, opts.record_kind, opts.record_version)?;
                if tail == Tail::Torn {
                    if !is_last {
                        return Err(ArtifactError::Corrupt("torn record before log tail"));
                    }
                    torn_tail += 1;
                }
                clean_bytes = recs.iter().map(|r| r.len() as u64).sum();
                segment_records = recs;
            }
            let mut seq = entry.first_seq;
            for rec in segment_records {
                if seq >= dir.low_water {
                    records.push((seq, rec));
                }
                seq += 1;
            }
            next_seq = next_seq.max(seq);
            if is_last && !entry.sealed {
                open_tail = Some((entry.first_seq, clean_bytes));
            }
        }

        // Reopen the tail segment for appending, truncating away any torn
        // record so the stream stays framed.
        let open = match open_tail {
            Some((first_seq, clean_bytes)) => {
                let file = OpenOptions::new()
                    .append(true)
                    .open(path.join(open_name(first_seq)))?;
                file.set_len(clean_bytes)?;
                if torn_tail > 0 {
                    file.sync_data()?;
                }
                Some(OpenSegment {
                    file,
                    first_seq,
                    bytes: clean_bytes,
                })
            }
            None => None,
        };

        if let Some(obs) = &obs {
            obs.replayed_records.add(records.len() as u64);
            obs.torn_records.add(torn_tail);
            if let Some(flight) = &obs.flight {
                flight.record(
                    EV_WAL_RECOVER,
                    "wal replay",
                    records.len() as u64,
                    torn_tail,
                    0.0,
                    0.0,
                );
            }
        }

        let replay = WalReplay {
            torn_tail_records: torn_tail,
            low_water: dir.low_water,
            next_seq,
            records,
        };
        let replayed = replay.records.len() as u64;

        dir.store(path)?;
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                dir,
                open,
                next_seq,
                unsynced: 0,
                fsyncs: 0,
                replayed,
                torn: torn_tail,
                seal_queue: VecDeque::new(),
                stopping: false,
            }),
            cv: Condvar::new(),
            path: path.to_path_buf(),
            opts,
            obs,
        });
        let worker = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("lre-wal".into())
                .spawn(move || worker_loop(shared))
                .map_err(ArtifactError::Io)?
        };
        Ok((
            SegmentedWal {
                shared,
                worker: Mutex::new(Some(worker)),
            },
            replay,
        ))
    }

    /// Append one sealed record, returning its sequence number. The
    /// record must be a container of the configured kind; only the frame
    /// is checked here (the caller just sealed it — re-verifying the CRC
    /// per append would double the checksum cost of the hot path).
    pub fn append(&self, record: &[u8]) -> Result<u64, ArtifactError> {
        let t0 = Instant::now();
        if record.len() < HEADER_LEN
            || record[0..4] != MAGIC
            || record[4..8] != self.shared.opts.record_kind
        {
            return Err(ArtifactError::Corrupt("append of unframed record"));
        }
        let mut inner = self.shared.inner.lock().expect("wal poisoned");
        // Roll a full open segment before this record lands.
        let mut notify = false;
        if let Some(open) = &inner.open {
            if open.bytes >= self.shared.opts.segment_bytes {
                let open = inner.open.take().expect("checked above");
                open.file.sync_data()?;
                inner.seal_queue.push_back(open.first_seq);
                notify = true;
            }
        }
        if inner.open.is_none() {
            let first_seq = inner.next_seq;
            let file = File::create(self.shared.path.join(open_name(first_seq)))?;
            inner.dir.segments.push(SegmentEntry {
                first_seq,
                sealed: false,
            });
            // The new entry (and the file's directory entry) must be
            // durable before any record in it is acknowledged.
            inner.dir.store(&self.shared.path)?;
            inner.open = Some(OpenSegment {
                file,
                first_seq,
                bytes: 0,
            });
        }
        let seq = inner.next_seq;
        {
            let open = inner.open.as_mut().expect("open segment exists");
            open.file.write_all(record)?;
            open.bytes += record.len() as u64;
        }
        inner.next_seq += 1;
        if self.shared.opts.fsync_interval.is_zero() {
            let open = inner.open.as_ref().expect("open segment exists");
            open.file.sync_data()?;
            inner.fsyncs += 1;
        } else {
            inner.unsynced += 1;
        }
        drop(inner);
        if notify {
            self.shared.cv.notify_all();
        }
        if let Some(obs) = &self.shared.obs {
            obs.appended_records.incr();
            obs.append_us.record(t0.elapsed().as_micros() as u64);
        }
        Ok(seq)
    }

    /// Force everything appended so far onto stable storage.
    pub fn sync(&self) -> Result<(), ArtifactError> {
        let mut inner = self.shared.inner.lock().expect("wal poisoned");
        if let Some(open) = &inner.open {
            open.file.sync_data()?;
        }
        inner.unsynced = 0;
        inner.fsyncs += 1;
        Ok(())
    }

    /// Advance the durable low-water mark: records below `seq` are
    /// logically gone (drained), and segments whose whole range fell
    /// below it are deleted. This is the drain-side truncation — O(index),
    /// never a data rewrite.
    pub fn truncate_to(&self, seq: u64) -> Result<(), ArtifactError> {
        let mut inner = self.shared.inner.lock().expect("wal poisoned");
        if seq > inner.next_seq {
            return Err(ArtifactError::Corrupt("low-water mark past the log head"));
        }
        if seq <= inner.dir.low_water {
            return Ok(());
        }
        inner.dir.low_water = seq;

        // End (exclusive) of each segment's range is the next segment's
        // first_seq; the tail segment ends at next_seq.
        let next_seq = inner.next_seq;
        let ends: Vec<u64> = inner
            .dir
            .segments
            .iter()
            .enumerate()
            .map(|(i, _)| {
                inner
                    .dir
                    .segments
                    .get(i + 1)
                    .map(|n| n.first_seq)
                    .unwrap_or(next_seq)
            })
            .collect();
        let mut removed = 0u64;
        let mut reclaimed = 0u64;
        let segments = std::mem::take(&mut inner.dir.segments);
        let mut keep = Vec::with_capacity(segments.len());
        for (entry, end) in segments.into_iter().zip(ends) {
            if end > seq {
                keep.push(entry);
                continue;
            }
            let name = if entry.sealed {
                sealed_name(entry.first_seq)
            } else {
                open_name(entry.first_seq)
            };
            let path = self.shared.path.join(name);
            reclaimed += fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            fs::remove_file(&path).ok();
            removed += 1;
            // A queued-but-unsealed segment that just got drained no
            // longer needs sealing.
            inner.seal_queue.retain(|&s| s != entry.first_seq);
            // The drained segment may be the open one (fully drained log).
            if inner
                .open
                .as_ref()
                .is_some_and(|o| o.first_seq == entry.first_seq)
            {
                inner.open = None;
            }
        }
        inner.dir.segments = keep;
        inner.dir.store(&self.shared.path)?;
        if removed > 0 {
            fsync_dir(&self.shared.path)?;
            if let Some(obs) = &self.shared.obs {
                obs.gc_segments.add(removed);
                if let Some(flight) = &obs.flight {
                    flight.record(EV_WAL_GC, "wal segment gc", removed, reclaimed, 0.0, 0.0);
                }
            }
        }
        Ok(())
    }

    /// Point-in-time status summary.
    pub fn status(&self) -> WalStatus {
        let inner = self.shared.inner.lock().expect("wal poisoned");
        let sealed = inner.dir.segments.iter().filter(|s| s.sealed).count() as u64;
        WalStatus {
            next_seq: inner.next_seq,
            low_water: inner.dir.low_water,
            buffered: inner.next_seq - inner.dir.low_water,
            segments: inner.dir.segments.len() as u64,
            sealed_segments: sealed,
            replayed: inner.replayed,
            torn: inner.torn,
            fsyncs: inner.fsyncs,
            unsynced: inner.unsynced,
        }
    }

    /// The sequence number the next append will receive.
    pub fn next_seq(&self) -> u64 {
        self.shared.inner.lock().expect("wal poisoned").next_seq
    }

    /// Block until every queued segment seal has completed (test and
    /// shutdown support).
    pub fn flush_seals(&self) {
        let mut inner = self.shared.inner.lock().expect("wal poisoned");
        while !inner.seal_queue.is_empty() {
            self.shared.cv.notify_all();
            let (guard, _) = self
                .shared
                .cv
                .wait_timeout(inner, Duration::from_millis(10))
                .expect("wal poisoned");
            inner = guard;
        }
    }
}

impl Drop for SegmentedWal {
    fn drop(&mut self) {
        {
            let mut inner = self.shared.inner.lock().expect("wal poisoned");
            inner.stopping = true;
            if let Some(open) = &inner.open {
                let _ = open.file.sync_data();
            }
        }
        self.shared.cv.notify_all();
        if let Some(handle) = self.worker.lock().expect("wal poisoned").take() {
            let _ = handle.join();
        }
    }
}

/// Union the on-disk segment files into the directory index: a crash can
/// leave a file the index never learned about (or a sealed file whose
/// index entry still says open); the files are the ground truth for
/// existence, the index for the low-water mark.
fn reconcile_with_disk(path: &Path, dir: &mut WalDir) -> Result<(), ArtifactError> {
    let mut on_disk: Vec<(u64, bool)> = Vec::new();
    for entry in fs::read_dir(path)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let (stem, sealed) = if let Some(s) = name.strip_suffix(".seg") {
            (s, true)
        } else if let Some(s) = name.strip_suffix(".log") {
            (s, false)
        } else {
            continue;
        };
        let Some(seq) = stem
            .strip_prefix("seg-")
            .and_then(|s| s.parse::<u64>().ok())
        else {
            continue;
        };
        on_disk.push((seq, sealed));
    }
    for (first_seq, sealed) in on_disk {
        match dir.segments.iter_mut().find(|s| s.first_seq == first_seq) {
            Some(entry) => {
                // A sealed file supersedes its open twin (crash between
                // writing the seal and updating the index); the leftover
                // .log is deleted so it cannot shadow anything later.
                if sealed && !entry.sealed {
                    entry.sealed = true;
                    fs::remove_file(path.join(open_name(first_seq))).ok();
                }
            }
            None => dir.segments.push(SegmentEntry { first_seq, sealed }),
        }
    }
    dir.segments.sort_by_key(|s| s.first_seq);
    // At most the last segment may be unsealed: an unsealed file earlier
    // in the order is a crash artifact of a completed seal whose .log
    // deletion never landed — but reconciliation above already preferred
    // the .seg. Anything still unsealed mid-order has no sealed twin and
    // the log cannot vouch for its framing; refuse rather than guess.
    if dir.segments.iter().rev().skip(1).any(|s| !s.sealed) {
        return Err(ArtifactError::Corrupt("unsealed segment before log tail"));
    }
    Ok(())
}

fn worker_loop(shared: Arc<Shared>) {
    loop {
        let job = {
            let mut inner = shared.inner.lock().expect("wal poisoned");
            loop {
                if let Some(first_seq) = inner.seal_queue.front().copied() {
                    break Some(first_seq);
                }
                if inner.stopping {
                    break None;
                }
                let timeout = if shared.opts.fsync_interval.is_zero() {
                    Duration::from_millis(200)
                } else {
                    shared.opts.fsync_interval
                };
                let (guard, _) = shared
                    .cv
                    .wait_timeout(inner, timeout)
                    .expect("wal poisoned");
                inner = guard;
                // Periodic fsync of the open segment (batched durability).
                if !shared.opts.fsync_interval.is_zero() && inner.unsynced > 0 {
                    let t0 = Instant::now();
                    let cloned = inner.open.as_ref().and_then(|o| o.file.try_clone().ok());
                    if let Some(file) = cloned {
                        // Sync outside the lock so appends keep flowing.
                        inner.unsynced = 0;
                        inner.fsyncs += 1;
                        drop(inner);
                        let _ = file.sync_data();
                        if let Some(obs) = &shared.obs {
                            obs.fsync_us.record(t0.elapsed().as_micros() as u64);
                        }
                        inner = shared.inner.lock().expect("wal poisoned");
                    }
                }
            }
        };
        let Some(first_seq) = job else { break };
        seal_one(&shared, first_seq);
        let mut inner = shared.inner.lock().expect("wal poisoned");
        inner.seal_queue.retain(|&s| s != first_seq);
        drop(inner);
        shared.cv.notify_all();
    }
    // Drain-stop: one final fsync so nothing acknowledged is lost on an
    // orderly shutdown.
    let inner = shared.inner.lock().expect("wal poisoned");
    if let Some(open) = &inner.open {
        let _ = open.file.sync_data();
    }
}

/// Compress one retired open segment into its sealed form. Failures are
/// non-fatal: the raw `.log` stays behind and replay handles it.
fn seal_one(shared: &Shared, first_seq: u64) {
    let t0 = Instant::now();
    let log_path = shared.path.join(open_name(first_seq));
    let Ok(bytes) = fs::read(&log_path) else {
        return; // GC'd concurrently
    };
    let Ok((records, Tail::Clean)) =
        walk_records(&bytes, shared.opts.record_kind, shared.opts.record_version)
    else {
        return; // torn or unframed: leave the raw file for replay to judge
    };
    let seg = SealedSegment { first_seq, records };
    let (sealed, raw_len) = seg.seal_bytes();
    let sealed_len = sealed.len();
    if write_durable(&shared.path, &sealed_name(first_seq), &sealed).is_err() {
        return;
    }
    {
        let mut inner = shared.inner.lock().expect("wal poisoned");
        if let Some(entry) = inner
            .dir
            .segments
            .iter_mut()
            .find(|s| s.first_seq == first_seq)
        {
            entry.sealed = true;
            let _ = inner.dir.store(&shared.path);
        } else {
            // Drained while we sealed: the sealed file is garbage too.
            drop(inner);
            fs::remove_file(shared.path.join(sealed_name(first_seq))).ok();
            return;
        }
    }
    fs::remove_file(&log_path).ok();
    if let Some(obs) = &shared.obs {
        obs.sealed_segments.incr();
        obs.seal_us.record(t0.elapsed().as_micros() as u64);
        if let Some(flight) = &obs.flight {
            flight.record(
                EV_WAL_SEAL,
                "wal segment sealed",
                first_seq,
                raw_len as u64,
                sealed_len as f64,
                0.0,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lre_artifact::seal;

    const K: [u8; 4] = *b"TREC";
    const V: u32 = 1;

    fn rec(i: u64) -> Vec<u8> {
        // Mildly compressible, record-unique payload.
        let mut p = format!("record payload number {i} ").into_bytes();
        p.extend_from_slice(&i.to_le_bytes());
        p.extend(std::iter::repeat_n(0xA5, 32));
        seal(K, V, &p)
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("lre_wal_log_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn opts() -> WalOptions {
        let mut o = WalOptions::new(K, V);
        o.fsync_interval = Duration::ZERO; // deterministic tests
        o
    }

    #[test]
    fn append_reopen_replays_identically() {
        let d = tmpdir("replay");
        let sent: Vec<Vec<u8>> = (0..25).map(rec).collect();
        {
            let (wal, replay) = SegmentedWal::open(&d, opts(), None).unwrap();
            assert_eq!(replay.records.len(), 0);
            for (i, r) in sent.iter().enumerate() {
                assert_eq!(wal.append(r).unwrap(), i as u64);
            }
            assert_eq!(wal.status().next_seq, 25);
        }
        let (wal, replay) = SegmentedWal::open(&d, opts(), None).unwrap();
        assert_eq!(replay.next_seq, 25);
        assert_eq!(replay.torn_tail_records, 0);
        let got: Vec<&Vec<u8>> = replay.records.iter().map(|(_, b)| b).collect();
        assert_eq!(got.len(), sent.len());
        for (g, s) in got.iter().zip(&sent) {
            assert_eq!(*g, s);
        }
        // Sequence numbers continue, never restart.
        assert_eq!(wal.append(&rec(99)).unwrap(), 25);
        fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn torn_tail_is_skipped_and_truncated_away() {
        let d = tmpdir("torn");
        {
            let (wal, _) = SegmentedWal::open(&d, opts(), None).unwrap();
            for i in 0..5 {
                wal.append(&rec(i)).unwrap();
            }
        }
        // Tear the last record: chop 3 bytes off the open segment.
        let log = d.join(open_name(0));
        let len = fs::metadata(&log).unwrap().len();
        let f = OpenOptions::new().write(true).open(&log).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);

        let (wal, replay) = SegmentedWal::open(&d, opts(), None).unwrap();
        assert_eq!(replay.records.len(), 4);
        assert_eq!(replay.torn_tail_records, 1);
        assert_eq!(replay.next_seq, 4);
        // The torn bytes are gone: appending keeps the stream framed.
        assert_eq!(wal.append(&rec(77)).unwrap(), 4);
        drop(wal);
        let (_, replay) = SegmentedWal::open(&d, opts(), None).unwrap();
        assert_eq!(replay.records.len(), 5);
        assert_eq!(replay.torn_tail_records, 0);
        fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn rolling_seals_segments_and_replay_crosses_them() {
        let d = tmpdir("seal");
        let mut o = opts();
        o.segment_bytes = 256; // force frequent rolls
        let sent: Vec<Vec<u8>> = (0..40).map(rec).collect();
        {
            let (wal, _) = SegmentedWal::open(&d, o.clone(), None).unwrap();
            for r in &sent {
                wal.append(r).unwrap();
            }
            wal.flush_seals();
            let st = wal.status();
            assert!(
                st.segments > 2,
                "expected rolls, got {} segments",
                st.segments
            );
            assert!(st.sealed_segments >= 1, "expected sealed segments");
        }
        let (_, replay) = SegmentedWal::open(&d, o, None).unwrap();
        assert_eq!(replay.records.len(), sent.len());
        for ((seq, got), (i, want)) in replay.records.iter().zip(sent.iter().enumerate()) {
            assert_eq!(*seq, i as u64);
            assert_eq!(got, want);
        }
        fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn truncate_advances_low_water_and_gcs() {
        let d = tmpdir("gc");
        let mut o = opts();
        o.segment_bytes = 256;
        let (wal, _) = SegmentedWal::open(&d, o.clone(), None).unwrap();
        for i in 0..40 {
            wal.append(&rec(i)).unwrap();
        }
        wal.flush_seals();
        let before = wal.status();
        wal.truncate_to(35).unwrap();
        let after = wal.status();
        assert_eq!(after.low_water, 35);
        assert_eq!(after.buffered, 5);
        assert!(
            after.segments < before.segments,
            "drained segments should be deleted ({} -> {})",
            before.segments,
            after.segments
        );
        drop(wal);
        // Replay resumes above the durable low-water mark.
        let (wal, replay) = SegmentedWal::open(&d, o, None).unwrap();
        assert_eq!(replay.low_water, 35);
        assert_eq!(
            replay.records.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            (35..40).collect::<Vec<_>>()
        );
        // Fully drained log: everything deleted, appends continue.
        wal.truncate_to(40).unwrap();
        assert_eq!(wal.status().segments, 0);
        assert_eq!(wal.append(&rec(1000)).unwrap(), 40);
        fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn truncate_past_head_is_refused_and_regress_is_a_noop() {
        let d = tmpdir("bounds");
        let (wal, _) = SegmentedWal::open(&d, opts(), None).unwrap();
        wal.append(&rec(0)).unwrap();
        assert!(wal.truncate_to(5).is_err());
        wal.truncate_to(1).unwrap();
        wal.truncate_to(0).unwrap(); // regressing the mark: ignored
        assert_eq!(wal.status().low_water, 1);
        fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn unframed_appends_are_refused() {
        let d = tmpdir("unframed");
        let (wal, _) = SegmentedWal::open(&d, opts(), None).unwrap();
        assert!(wal.append(b"raw bytes").is_err());
        assert!(wal.append(&seal(*b"XXXX", 1, b"wrong kind")).is_err());
        assert_eq!(wal.status().next_seq, 0);
        fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn obs_series_record_appends_and_replay() {
        let d = tmpdir("obs");
        let registry = Registry::new();
        let obs = WalObs::new(&registry, None);
        {
            let (wal, _) = SegmentedWal::open(&d, opts(), Some(obs.clone())).unwrap();
            for i in 0..3 {
                wal.append(&rec(i)).unwrap();
            }
        }
        assert_eq!(obs.appended_records.get(), 3);
        let (_, replay) = SegmentedWal::open(&d, opts(), Some(obs.clone())).unwrap();
        assert_eq!(replay.records.len(), 3);
        assert_eq!(obs.replayed_records.get(), 3);
        fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn batched_fsync_interval_still_replays_after_clean_drop() {
        let d = tmpdir("batched");
        let mut o = WalOptions::new(K, V);
        o.fsync_interval = Duration::from_millis(5);
        {
            let (wal, _) = SegmentedWal::open(&d, o.clone(), None).unwrap();
            for i in 0..10 {
                wal.append(&rec(i)).unwrap();
            }
            wal.sync().unwrap();
            assert_eq!(wal.status().unsynced, 0);
        }
        let (_, replay) = SegmentedWal::open(&d, o, None).unwrap();
        assert_eq!(replay.records.len(), 10);
        fs::remove_dir_all(&d).ok();
    }
}
