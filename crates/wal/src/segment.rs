//! Segment files: the on-disk unit of the write-ahead log.
//!
//! A WAL directory holds two shapes of segment, both named by the
//! sequence number of their first record:
//!
//! * **Open** (`seg-<first_seq>.log`) — the append target: sealed
//!   records of the configured kind concatenated back to back, nothing
//!   else. Each record is a complete `lre-artifact` container, so every
//!   record carries its own length and CRC; the segment needs no frame
//!   of its own and a crash can only tear the *final* record.
//! * **Sealed** (`seg-<first_seq>.seg`) — an immutable, compressed
//!   [`SealedSegment`] container written by the background worker once
//!   an open segment reaches its size budget. Sealing is
//!   write-new-then-delete-old, so a crash between the two leaves both
//!   files and recovery prefers the sealed one.
//!
//! This is the chunked-region-file shape (cf. anvil region files): many
//! small records packed into a bounded number of files, with an index
//! ([`crate::dir`]) mapping sequence ranges to files instead of one file
//! per record or one unbounded log.

use crate::compress;
use lre_artifact::{open_prefix, ArtifactError, ArtifactReader, ArtifactWriter};

/// Compression method byte in a sealed segment: stored raw.
pub const METHOD_RAW: u8 = 0;
/// Compression method byte in a sealed segment: LZSS ([`crate::compress`]).
pub const METHOD_LZSS: u8 = 1;

/// File name of an open (append) segment whose first record is `first_seq`.
pub fn open_name(first_seq: u64) -> String {
    format!("seg-{first_seq:020}.log")
}

/// File name of a sealed segment whose first record is `first_seq`.
pub fn sealed_name(first_seq: u64) -> String {
    format!("seg-{first_seq:020}.seg")
}

/// What the walker found at the end of a segment's record stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tail {
    /// The stream ended exactly on a record boundary.
    Clean,
    /// The final record was torn — cut mid-write or its CRC never
    /// landed. Recovery treats this as "the crash ate the last append",
    /// legal only in the very last segment of the log.
    Torn,
}

/// Walk a buffer of concatenated sealed records, returning each record's
/// *container* bytes (header + payload + CRC, exactly as appended — the
/// in-memory log stores and re-serves the same sealed form).
///
/// A damaged *final* record is reported as [`Tail::Torn`] rather than an
/// error: a torn tail is the expected signature of a crash mid-append.
/// Damage anywhere earlier cannot be explained by a crash (appends are
/// strictly ordered) and is a hard error.
pub fn walk_records(
    bytes: &[u8],
    kind: [u8; 4],
    version: u32,
) -> Result<(Vec<Vec<u8>>, Tail), ArtifactError> {
    let mut records = Vec::new();
    let mut at = 0;
    while at < bytes.len() {
        match open_prefix(&bytes[at..], kind, version) {
            Ok((_payload, used)) => {
                records.push(bytes[at..at + used].to_vec());
                at += used;
            }
            Err(ArtifactError::Truncated) | Err(ArtifactError::ChecksumMismatch) => {
                return Ok((records, Tail::Torn));
            }
            Err(e) => return Err(e),
        }
    }
    Ok((records, Tail::Clean))
}

/// An immutable sealed segment: the records of one retired open segment,
/// compressed, inside a single checksummed container.
pub struct SealedSegment {
    /// Sequence number of the first record.
    pub first_seq: u64,
    /// The records, each still in its sealed container form.
    pub records: Vec<Vec<u8>>,
}

impl SealedSegment {
    /// Container kind of a sealed segment file.
    pub const KIND: [u8; 4] = *b"WSEG";
    /// Container format revision.
    pub const VERSION: u32 = 1;

    /// Concatenated raw record bytes (the open-segment image).
    fn raw_image(&self) -> Vec<u8> {
        let total = self.records.iter().map(Vec::len).sum();
        let mut image = Vec::with_capacity(total);
        for r in &self.records {
            image.extend_from_slice(r);
        }
        image
    }

    /// Split a raw image back into per-record containers. Inside a sealed
    /// segment a torn tail is impossible — the whole container is CRC'd —
    /// so any tear means the seal itself lied.
    fn split_image(
        image: &[u8],
        count: usize,
        kind: [u8; 4],
        version: u32,
    ) -> Result<Vec<Vec<u8>>, ArtifactError> {
        let (records, tail) = walk_records(image, kind, version)?;
        if tail == Tail::Torn {
            return Err(ArtifactError::Corrupt("sealed segment image torn"));
        }
        if records.len() != count {
            return Err(ArtifactError::Corrupt(
                "sealed segment record count mismatch",
            ));
        }
        Ok(records)
    }

    /// Seal this segment: compress the record image (falling back to raw
    /// storage when LZSS does not help) and wrap it in a container.
    /// Returns the sealed bytes and the raw image length (for
    /// compression-ratio accounting).
    pub fn seal_bytes(&self) -> (Vec<u8>, usize) {
        let image = self.raw_image();
        let packed = compress::compress(&image);
        let (method, body) = if packed.len() < image.len() {
            (METHOD_LZSS, packed)
        } else {
            (METHOD_RAW, image.clone())
        };
        let mut w = ArtifactWriter::new();
        w.put_u64(self.first_seq);
        w.put_u32(self.records.len() as u32);
        w.put_u8(method);
        w.put_u64(image.len() as u64);
        w.put_blob(&body);
        (
            lre_artifact::seal(Self::KIND, Self::VERSION, &w.into_bytes()),
            image.len(),
        )
    }

    /// Open sealed-segment bytes, restoring the per-record containers.
    /// `kind`/`version` are the *record* type the log was configured with.
    pub fn open_bytes(
        sealed: &[u8],
        kind: [u8; 4],
        version: u32,
    ) -> Result<SealedSegment, ArtifactError> {
        let payload = lre_artifact::open(sealed, Self::KIND, Self::VERSION)?;
        let mut r = ArtifactReader::new(payload);
        let first_seq = r.get_u64()?;
        let count = r.get_u32()? as usize;
        let method = r.get_u8()?;
        let raw_len = r.get_u64()? as usize;
        let body = r.get_blob()?;
        if r.remaining() != 0 {
            return Err(ArtifactError::TrailingBytes);
        }
        let image = match method {
            METHOD_RAW => {
                if body.len() != raw_len {
                    return Err(ArtifactError::Corrupt("raw segment length mismatch"));
                }
                body.to_vec()
            }
            METHOD_LZSS => compress::decompress(body, raw_len)?,
            _ => return Err(ArtifactError::Corrupt("unknown segment compression method")),
        };
        let records = Self::split_image(&image, count, kind, version)?;
        Ok(SealedSegment { first_seq, records })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lre_artifact::seal;

    const K: [u8; 4] = *b"TREC";
    const V: u32 = 1;

    fn rec(tag: u8, len: usize) -> Vec<u8> {
        seal(K, V, &vec![tag; len])
    }

    #[test]
    fn walk_handles_clean_and_torn_streams() {
        let a = rec(1, 10);
        let b = rec(2, 0);
        let c = rec(3, 300);
        let mut stream: Vec<u8> = Vec::new();
        for r in [&a, &b, &c] {
            stream.extend_from_slice(r);
        }
        let (records, tail) = walk_records(&stream, K, V).unwrap();
        assert_eq!(records, vec![a.clone(), b.clone(), c.clone()]);
        assert_eq!(tail, Tail::Clean);

        // Cut anywhere inside the final record: first two survive, torn tail.
        for cut in 1..c.len() {
            let torn = &stream[..a.len() + b.len() + cut];
            let (records, tail) = walk_records(torn, K, V).unwrap();
            assert_eq!(records.len(), 2, "cut {cut}");
            assert_eq!(tail, Tail::Torn, "cut {cut}");
        }

        // A zeroed CRC on the final record (trailer never landed) is also
        // a torn tail, not an error.
        let mut zeroed = stream.clone();
        let n = zeroed.len();
        zeroed[n - 4..].fill(0);
        let (records, tail) = walk_records(&zeroed, K, V).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(tail, Tail::Torn);
    }

    #[test]
    fn walk_rejects_unframed_garbage_midstream() {
        let mut stream = rec(1, 8);
        stream.extend_from_slice(b"XXXXgarbage that is not a record header!");
        assert!(matches!(
            walk_records(&stream, K, V),
            Err(ArtifactError::BadMagic)
        ));
    }

    #[test]
    fn sealed_segment_roundtrips_with_compression() {
        let records: Vec<Vec<u8>> = (0..50).map(|i| rec(i as u8 % 4, 64)).collect();
        let seg = SealedSegment {
            first_seq: 1234,
            records: records.clone(),
        };
        let (sealed, raw_len) = seg.seal_bytes();
        assert_eq!(raw_len, records.iter().map(Vec::len).sum::<usize>());
        assert!(sealed.len() < raw_len, "repeated records should compress");
        let back = SealedSegment::open_bytes(&sealed, K, V).unwrap();
        assert_eq!(back.first_seq, 1234);
        assert_eq!(back.records, records);
    }

    #[test]
    fn sealed_segment_detects_damage() {
        let seg = SealedSegment {
            first_seq: 7,
            records: vec![rec(1, 32), rec(2, 32)],
        };
        let (sealed, _) = seg.seal_bytes();
        for cut in [0, sealed.len() / 2, sealed.len() - 1] {
            assert!(SealedSegment::open_bytes(&sealed[..cut], K, V).is_err());
        }
        for byte in (0..sealed.len()).step_by(11) {
            let mut bad = sealed.clone();
            bad[byte] ^= 0x10;
            assert!(
                SealedSegment::open_bytes(&bad, K, V).is_err(),
                "flip at {byte} accepted"
            );
        }
    }

    #[test]
    fn names_sort_with_sequence_numbers() {
        assert!(open_name(9) < open_name(10));
        assert!(sealed_name(999) < sealed_name(1000));
        assert_eq!(open_name(5), "seg-00000000000000000005.log");
    }
}
