//! The segment directory: the WAL's offset index and durable low-water
//! mark.
//!
//! `wal.dir` is a small sealed artifact listing every live segment (by
//! the sequence number of its first record, which is also its file name)
//! plus the **low-water mark**: the first sequence number that is still
//! logically present. A drain does not rewrite megabytes of segments —
//! it advances the low-water mark durably and lets GC delete segments
//! whose entire range has fallen below it.
//!
//! The directory is rewritten atomically (temp file + rename + fsync of
//! both file and directory) only on *structural* events — open, roll,
//! seal, truncate, GC — never per append. Appends change no entry: the
//! open segment's extent is discovered by scanning it at recovery, which
//! is exactly the torn-tail-tolerant walk in [`crate::segment`].

use lre_artifact::{ArtifactError, ArtifactReader, ArtifactWriter};
use std::fs::{self, File};
use std::io;
use std::path::Path;

/// Directory file name inside a WAL directory.
pub const DIR_FILE: &str = "wal.dir";

const DIR_KIND: [u8; 4] = *b"WDIR";
const DIR_VERSION: u32 = 1;

/// One live segment, keyed by its first record's sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentEntry {
    pub first_seq: u64,
    /// Sealed segments are immutable `.seg` containers; the (at most
    /// one) unsealed entry is the `.log` append target.
    pub sealed: bool,
}

/// The decoded `wal.dir` state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WalDir {
    /// First sequence number still logically in the log; everything
    /// below has been drained and may be garbage-collected.
    pub low_water: u64,
    /// Live segments, ascending by `first_seq`.
    pub segments: Vec<SegmentEntry>,
}

impl WalDir {
    fn to_bytes(&self) -> Vec<u8> {
        let mut w = ArtifactWriter::new();
        w.put_u64(self.low_water);
        w.put_u32(self.segments.len() as u32);
        for s in &self.segments {
            w.put_u64(s.first_seq);
            w.put_u8(u8::from(s.sealed));
        }
        lre_artifact::seal(DIR_KIND, DIR_VERSION, &w.into_bytes())
    }

    fn from_bytes(bytes: &[u8]) -> Result<WalDir, ArtifactError> {
        let payload = lre_artifact::open(bytes, DIR_KIND, DIR_VERSION)?;
        let mut r = ArtifactReader::new(payload);
        let low_water = r.get_u64()?;
        let count = r.get_count(9)?;
        let mut segments = Vec::with_capacity(count);
        let mut prev: Option<u64> = None;
        for _ in 0..count {
            let first_seq = r.get_u64()?;
            let sealed = match r.get_u8()? {
                0 => false,
                1 => true,
                _ => return Err(ArtifactError::Corrupt("unknown segment state")),
            };
            if prev.is_some_and(|p| p >= first_seq) {
                return Err(ArtifactError::Corrupt("segment entries out of order"));
            }
            prev = Some(first_seq);
            segments.push(SegmentEntry { first_seq, sealed });
        }
        if r.remaining() != 0 {
            return Err(ArtifactError::TrailingBytes);
        }
        Ok(WalDir {
            low_water,
            segments,
        })
    }

    /// Load the directory from `wal_dir`, or a fresh empty one if the
    /// file does not exist (a brand-new WAL directory).
    pub fn load(wal_dir: &Path) -> Result<WalDir, ArtifactError> {
        let path = wal_dir.join(DIR_FILE);
        match fs::read(&path) {
            Ok(bytes) => WalDir::from_bytes(&bytes),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(WalDir::default()),
            Err(e) => Err(ArtifactError::Io(e)),
        }
    }

    /// Persist the directory durably: temp file, fsync, rename, fsync the
    /// containing directory so the rename itself survives a crash.
    pub fn store(&self, wal_dir: &Path) -> io::Result<()> {
        write_durable(wal_dir, DIR_FILE, &self.to_bytes())
    }
}

/// Write `name` under `dir` atomically and durably: the file appears with
/// its full contents or not at all, and once this returns both the data
/// and the directory entry have been fsynced.
pub fn write_durable(dir: &Path, name: &str, bytes: &[u8]) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    let tmp = dir.join(format!("{name}.tmp"));
    {
        let mut f = File::create(&tmp)?;
        io::Write::write_all(&mut f, bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, dir.join(name))?;
    fsync_dir(dir)
}

/// fsync a directory so renames/unlinks inside it are durable. On
/// platforms where opening a directory for sync is unsupported this is a
/// no-op (the rename is still atomic, just not crash-durable).
pub fn fsync_dir(dir: &Path) -> io::Result<()> {
    match File::open(dir) {
        Ok(f) => match f.sync_all() {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::Unsupported => Ok(()),
            Err(e) => Err(e),
        },
        Err(_) => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("lre_wal_dir_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn load_of_missing_directory_is_empty() {
        let d = tmpdir("missing");
        let dir = WalDir::load(&d).unwrap();
        assert_eq!(dir, WalDir::default());
        fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn store_load_roundtrip() {
        let d = tmpdir("roundtrip");
        let dir = WalDir {
            low_water: 42,
            segments: vec![
                SegmentEntry {
                    first_seq: 0,
                    sealed: true,
                },
                SegmentEntry {
                    first_seq: 128,
                    sealed: false,
                },
            ],
        };
        dir.store(&d).unwrap();
        assert_eq!(WalDir::load(&d).unwrap(), dir);
        // No temp file left behind.
        assert!(!d.join(format!("{DIR_FILE}.tmp")).exists());
        fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn corrupt_directory_is_a_typed_error() {
        let d = tmpdir("corrupt");
        let dir = WalDir {
            low_water: 1,
            segments: vec![SegmentEntry {
                first_seq: 0,
                sealed: false,
            }],
        };
        dir.store(&d).unwrap();
        let path = d.join(DIR_FILE);
        let mut bytes = fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n / 2] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert!(WalDir::load(&d).is_err());
        fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn out_of_order_entries_are_refused() {
        let dir = WalDir {
            low_water: 0,
            segments: vec![
                SegmentEntry {
                    first_seq: 10,
                    sealed: true,
                },
                SegmentEntry {
                    first_seq: 5,
                    sealed: false,
                },
            ],
        };
        let bytes = dir.to_bytes();
        assert!(matches!(
            WalDir::from_bytes(&bytes),
            Err(ArtifactError::Corrupt(_))
        ));
    }
}
