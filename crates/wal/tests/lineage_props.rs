//! Property tests for the generation-lineage chain: under any
//! interleaving of promote / deep-rollback / GC, the chain stays
//! contiguous and acyclic, and every retained generation reloads
//! byte-identically — with its decoded scores pinned by `f32::to_bits`.

use lre_artifact::{crc32, seal, ArtifactReader, ArtifactWriter};
use lre_wal::{generation_name, LineageError, LineageStore};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// One step of the adaptation controller's life, as the store sees it.
#[derive(Debug, Clone)]
enum Op {
    /// Boost a candidate off the currently served generation and promote
    /// it (scores are the per-language payload of the synthetic bundle).
    Promote(Vec<f32>),
    /// Deep rollback: re-serve an earlier generation (index into the
    /// retained set at that moment). Changes what the next promote's
    /// parent is; changes nothing in the store.
    Rollback(usize),
    /// Retention pass keeping at most `keep` generations' bytes.
    Gc(usize),
}

fn promote() -> BoxedStrategy<Op> {
    prop::collection::vec(-1000.0f32..1000.0, 1..6)
        .prop_map(Op::Promote)
        .boxed()
}

fn op() -> impl Strategy<Value = Op> {
    // Promote repeated to weight the mix toward chain growth (the
    // vendored prop_oneof! is uniform over its arms).
    prop_oneof![
        promote(),
        promote(),
        promote(),
        (0usize..8).prop_map(Op::Rollback).boxed(),
        (1usize..5).prop_map(Op::Gc).boxed(),
    ]
}

/// A synthetic sealed bundle: generation + score vector. Small, but
/// structurally honest — sealed container, f32 bit patterns inside.
fn bundle(generation: u64, scores: &[f32]) -> Vec<u8> {
    let mut w = ArtifactWriter::new();
    w.put_u64(generation);
    w.put_f32_slice(scores);
    seal(*b"SBNL", 1, &w.into_bytes())
}

fn decode_scores(sealed: &[u8]) -> Vec<f32> {
    let payload = lre_artifact::open(sealed, *b"SBNL", 1).unwrap();
    let mut r = ArtifactReader::new(payload);
    r.get_u64().unwrap();
    r.get_f32_slice().unwrap()
}

static DIR_TAG: AtomicU64 = AtomicU64::new(0);

fn fresh_dir() -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "lre_wal_lineage_props_{}_{}",
        std::process::id(),
        DIR_TAG.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn any_interleaving_keeps_the_chain_sound(ops in prop::collection::vec(op(), 1..24)) {
        let dir = fresh_dir();
        let mut store = LineageStore::open(&dir).unwrap();

        // Mirror of the truth: generation -> (sealed bytes, scores).
        let root_scores = vec![0.25f32, -1.5];
        let root = bundle(0, &root_scores);
        store.record_root(&root, 0).unwrap();
        let mut truth: Vec<(Vec<u8>, Vec<f32>)> = vec![(root, root_scores)];
        let mut serving: u64 = 0;

        for op in &ops {
            match op {
                Op::Promote(scores) => {
                    let next = store.head().unwrap().generation + 1;
                    let sealed = bundle(next, scores);
                    let parent_ck = crc32(&truth[serving as usize].0);
                    store.append(&sealed, next, parent_ck, scores.len() as u32).unwrap();
                    truth.push((sealed, scores.clone()));
                    serving = next;
                }
                Op::Rollback(pick) => {
                    let retained: Vec<u64> = store
                        .entries()
                        .iter()
                        .filter(|e| !e.pruned)
                        .map(|e| e.generation)
                        .collect();
                    serving = retained[pick % retained.len()];
                }
                Op::Gc(keep) => {
                    store.gc(*keep, None).unwrap();
                    // Serving a pruned generation is impossible from the
                    // controller (it never prunes what it could re-serve
                    // without reloading); keep the model honest by moving
                    // the serving pointer up if GC took its bytes.
                    let still = store
                        .entries()
                        .iter()
                        .any(|e| e.generation == serving && !e.pruned);
                    if !still {
                        serving = store.head().unwrap().generation;
                    }
                }
            }

            // Invariant 1: contiguous generation numbers.
            let entries = store.entries();
            for w in entries.windows(2) {
                prop_assert_eq!(w[1].generation, w[0].generation + 1, "chain not contiguous");
            }
            // Invariant 2: acyclic — every parent checksum names a
            // strictly earlier generation.
            for (i, e) in entries.iter().enumerate().skip(1) {
                prop_assert!(
                    entries[..i].iter().any(|p| p.checksum == e.parent_checksum),
                    "generation {} has no earlier parent",
                    e.generation
                );
            }
            // Invariant 3: every retained generation reloads
            // byte-identically, scores pinned bit-for-bit.
            for e in entries.iter().filter(|e| !e.pruned) {
                let loaded = store.load(e.generation).unwrap();
                let (want_bytes, want_scores) = &truth[e.generation as usize];
                prop_assert_eq!(&loaded, want_bytes, "generation {} bytes drifted", e.generation);
                let got_scores = decode_scores(&loaded);
                prop_assert_eq!(got_scores.len(), want_scores.len());
                for (g, w) in got_scores.iter().zip(want_scores) {
                    prop_assert_eq!(g.to_bits(), w.to_bits(), "score bits drifted");
                }
            }
            // Invariant 4: pruned generations refuse loads with the
            // typed error, not garbage.
            for e in entries.iter().filter(|e| e.pruned) {
                prop_assert!(matches!(
                    store.load(e.generation),
                    Err(LineageError::Pruned(_))
                ));
            }
        }

        // The whole history survives a reopen (crash-restart shape).
        let head = store.head().unwrap().generation;
        let retained = store.retained();
        drop(store);
        let store = LineageStore::open(&dir).unwrap();
        prop_assert_eq!(store.head().unwrap().generation, head);
        prop_assert_eq!(store.retained(), retained);
        for e in store.entries().iter().filter(|e| !e.pruned) {
            let loaded = store.load(e.generation).unwrap();
            prop_assert_eq!(&loaded, &truth[e.generation as usize].0);
        }
        // Sanity: the per-generation files on disk are exactly the
        // retained set.
        for e in store.entries() {
            prop_assert_eq!(
                dir.join(generation_name(e.generation)).exists(),
                !e.pruned
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
