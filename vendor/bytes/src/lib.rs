//! Vendored offline stand-in for the `bytes` crate.
//!
//! Implements the byte-buffer surface the supervector cache uses:
//! [`BytesMut`] with little-endian `put_*` appends, [`Bytes`] with
//! consuming `get_*` reads, `remaining`, and `freeze`. On top of the
//! panicking `get_*` API (mirroring the real crate) this stub adds
//! `try_get_*` variants returning `Option`, which the cache loader uses to
//! reject truncated or corrupt files gracefully.

/// Append-only growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut { data: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable, consumable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Immutable byte buffer with a read cursor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data, pos: 0 }
    }
}

/// Write side: little-endian appends.
pub trait BufMut {
    fn put_u8(&mut self, v: u8);
    fn put_u32_le(&mut self, v: u32);
    fn put_u64_le(&mut self, v: u64);
    fn put_f32_le(&mut self, v: f32);
    fn put_f64_le(&mut self, v: f64);
    fn put_slice(&mut self, s: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }
    fn put_u32_le(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }
    fn put_f32_le(&mut self, v: f32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }
    fn put_f64_le(&mut self, v: f64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }
    fn put_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }
}

/// Read side: consuming little-endian reads. The `get_*` methods panic on
/// underflow (like the real crate); `try_get_*` return `None` instead.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn try_get_u8(&mut self) -> Option<u8>;
    fn try_get_u32_le(&mut self) -> Option<u32>;
    fn try_get_u64_le(&mut self) -> Option<u64>;
    fn try_get_f32_le(&mut self) -> Option<f32>;
    fn try_get_f64_le(&mut self) -> Option<f64>;

    fn get_u8(&mut self) -> u8 {
        self.try_get_u8().expect("buffer underflow")
    }
    fn get_u32_le(&mut self) -> u32 {
        self.try_get_u32_le().expect("buffer underflow")
    }
    fn get_u64_le(&mut self) -> u64 {
        self.try_get_u64_le().expect("buffer underflow")
    }
    fn get_f32_le(&mut self) -> f32 {
        self.try_get_f32_le().expect("buffer underflow")
    }
    fn get_f64_le(&mut self) -> f64 {
        self.try_get_f64_le().expect("buffer underflow")
    }
}

impl Bytes {
    fn take<const N: usize>(&mut self) -> Option<[u8; N]> {
        let end = self.pos.checked_add(N)?;
        if end > self.data.len() {
            return None;
        }
        let mut out = [0u8; N];
        out.copy_from_slice(&self.data[self.pos..end]);
        self.pos = end;
        Some(out)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }
    fn try_get_u8(&mut self) -> Option<u8> {
        self.take::<1>().map(|b| b[0])
    }
    fn try_get_u32_le(&mut self) -> Option<u32> {
        self.take::<4>().map(u32::from_le_bytes)
    }
    fn try_get_u64_le(&mut self) -> Option<u64> {
        self.take::<8>().map(u64::from_le_bytes)
    }
    fn try_get_f32_le(&mut self) -> Option<f32> {
        self.take::<4>().map(f32::from_le_bytes)
    }
    fn try_get_f64_le(&mut self) -> Option<f64> {
        self.take::<8>().map(f64::from_le_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut w = BytesMut::new();
        w.put_u8(7);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(42);
        w.put_f32_le(1.5);
        w.put_f64_le(-2.25);
        let mut r = w.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 42);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.get_f64_le(), -2.25);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn try_get_on_short_buffer_is_none() {
        let mut b = Bytes::from(vec![1u8, 2, 3]);
        assert!(b.try_get_u32_le().is_none());
        // A failed read consumes nothing.
        assert_eq!(b.remaining(), 3);
        assert_eq!(b.try_get_u8(), Some(1));
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn get_on_empty_panics() {
        let mut b = Bytes::from(Vec::new());
        let _ = b.get_u32_le();
    }

    #[test]
    fn bytesmut_derefs_to_slice() {
        let mut w = BytesMut::new();
        w.put_slice(b"abc");
        assert_eq!(&w[..], b"abc");
        assert_eq!(w.len(), 3);
    }
}
