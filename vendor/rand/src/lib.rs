//! Vendored offline stand-in for the `rand` crate.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! the tiny API slice it actually uses: a seedable deterministic generator
//! ([`rngs::StdRng`]), the [`SeedableRng`] construction trait and the
//! [`RngExt`] sampling trait (`random::<T>()` / `random_range(..)`).
//!
//! The generator is SplitMix64 — statistically solid for simulation and
//! test-data purposes, deterministic across platforms, and trivially
//! seedable from a `u64`. It is **not** cryptographically secure, which is
//! fine: every use in this workspace is synthetic-corpus generation,
//! model initialization or property-test case generation.

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Derive a full generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from an RNG.
///
/// `f32`/`f64` sample uniformly from `[0, 1)`; integers sample their full
/// range; `bool` is a fair coin.
pub trait SampleUniform {
    fn sample(rng: &mut dyn RngCore) -> Self;
}

/// Minimal core trait: a stream of uniform `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Range argument accepted by [`RngExt::random_range`].
pub trait RangeArg<T> {
    /// Half-open `[lo, hi)` bounds; inclusive ranges convert to `hi + 1`.
    fn bounds(&self) -> (T, T);
}

macro_rules! impl_range_arg {
    ($($t:ty),*) => {$(
        impl RangeArg<$t> for core::ops::Range<$t> {
            fn bounds(&self) -> ($t, $t) {
                assert!(self.start < self.end, "empty range");
                (self.start, self.end)
            }
        }
        impl RangeArg<$t> for core::ops::RangeInclusive<$t> {
            fn bounds(&self) -> ($t, $t) {
                assert!(self.start() <= self.end(), "empty range");
                (*self.start(), self.end().checked_add(1).expect("range end overflow"))
            }
        }
    )*};
}
impl_range_arg!(u16, u32, u64, usize, i32, i64);

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(rng: &mut dyn RngCore) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_sample_int!(u16, u32, u64, usize, i32, i64, u8);

impl SampleUniform for f64 {
    fn sample(rng: &mut dyn RngCore) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleUniform for f32 {
    fn sample(rng: &mut dyn RngCore) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl SampleUniform for bool {
    fn sample(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Uniform sampling extension methods, matching the call sites in this
/// workspace (`rng.random::<f32>()`, `rng.random_range(0..n)`, ...).
pub trait RngExt: RngCore {
    fn random<T: SampleUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform integer in the given range (half-open or inclusive).
    ///
    /// Uses Lemire-style multiply-shift rejection-free mapping; the bias is
    /// ≤ 2⁻⁶⁴ · span, negligible for the span sizes used here.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: RangeArg<T>,
        T: RangeSpan,
    {
        let (lo, hi) = range.bounds();
        T::offset(lo, mulhi_span(self.next_u64(), T::span(lo, hi)))
    }
}

impl<R: RngCore> RngExt for R {}

/// Map a uniform `u64` onto `[0, span)` via the high half of a 128-bit
/// product.
#[inline]
fn mulhi_span(x: u64, span: u64) -> u64 {
    ((x as u128 * span as u128) >> 64) as u64
}

/// Integer helpers for [`RngExt::random_range`].
pub trait RangeSpan: Copy {
    fn span(lo: Self, hi: Self) -> u64;
    fn offset(lo: Self, delta: u64) -> Self;
}

macro_rules! impl_range_span {
    ($($t:ty),*) => {$(
        impl RangeSpan for $t {
            #[inline]
            fn span(lo: $t, hi: $t) -> u64 {
                (hi as i128 - lo as i128) as u64
            }
            #[inline]
            fn offset(lo: $t, delta: u64) -> $t {
                (lo as i128 + delta as i128) as $t
            }
        }
    )*};
}
impl_range_span!(u16, u32, u64, usize, i32, i64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator (the workspace's "standard" RNG).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // One warm-up mix so that nearby seeds diverge immediately.
            let mut r = StdRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            };
            r.next_u64();
            r
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f: f32 = r.random();
            let d: f64 = r.random();
            assert!((0.0..1.0).contains(&f));
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for i in 1..200usize {
            let v = r.random_range(0..i);
            assert!(v < i);
            let w = r.random_range(0..=i);
            assert!(w <= i);
        }
        for _ in 0..100 {
            let v: u16 = r.random_range(0..59u16);
            assert!(v < 59);
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = StdRng::seed_from_u64(0);
        let mut b = StdRng::seed_from_u64(1);
        let same = (0..64)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut r = StdRng::seed_from_u64(3);
        let vals: Vec<f32> = (0..512).map(|_| r.random::<f32>()).collect();
        assert!(vals.iter().any(|&v| v < 0.1));
        assert!(vals.iter().any(|&v| v > 0.9));
    }
}
