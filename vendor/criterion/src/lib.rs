//! Vendored offline stand-in for `criterion`.
//!
//! Provides the macro/entry-point surface the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`, `Bencher::iter`) backed by a simple but honest
//! measurement loop: warm-up, then timed batches until a time budget is
//! spent, reporting min/mean/median per iteration. Results print to stdout
//! in a stable `bench: <group>/<name> ... <stats>` format that downstream
//! tooling (BENCH_*.json writers) can parse.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 60,
            measurement_time: Duration::from_millis(900),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            sample_size: None,
        }
    }

    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench(None, name, self.sample_size, self.measurement_time, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let samples = self.sample_size.unwrap_or(self.parent.sample_size);
        run_bench(
            Some(&self.name),
            name,
            samples,
            self.parent.measurement_time,
            f,
        );
        self
    }

    pub fn finish(self) {}
}

/// Passed to the closure under measurement; `iter` runs and times the body.
pub struct Bencher {
    samples: usize,
    budget: Duration,
    /// Nanoseconds per iteration, one entry per sample batch.
    results: Vec<f64>,
}

impl Bencher {
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warm-up: run until ~10% of the budget is spent (at least once).
        let warm_deadline = Instant::now() + self.budget / 10;
        let iters_per_batch;
        loop {
            let t0 = Instant::now();
            black_box(f());
            let dt = t0.elapsed();
            if Instant::now() >= warm_deadline {
                // Aim for ~samples batches within the remaining budget.
                let per_iter = dt.max(Duration::from_nanos(1));
                let budget_per_batch = self.budget / (self.samples as u32).max(1);
                iters_per_batch = (budget_per_batch.as_nanos() / per_iter.as_nanos().max(1))
                    .clamp(1, 1 << 20) as u64;
                break;
            }
        }
        let deadline = Instant::now() + self.budget;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..iters_per_batch {
                black_box(f());
            }
            let dt = t0.elapsed();
            self.results
                .push(dt.as_nanos() as f64 / iters_per_batch as f64);
            if Instant::now() >= deadline {
                break;
            }
        }
    }
}

fn run_bench(
    group: Option<&str>,
    name: &str,
    samples: usize,
    budget: Duration,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        samples: samples.max(1),
        budget,
        results: Vec::new(),
    };
    f(&mut b);
    let label = match group {
        Some(g) => format!("{g}/{name}"),
        None => name.to_string(),
    };
    if b.results.is_empty() {
        println!("bench: {label:<44} (no samples)");
        return;
    }
    let mut sorted = b.results.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    println!(
        "bench: {label:<44} min {:>12}  median {:>12}  mean {:>12}  ({} samples)",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(mean),
        sorted.len()
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion {
            sample_size: 5,
            measurement_time: Duration::from_millis(20),
        };
        let mut g = c.benchmark_group("t");
        g.sample_size(5);
        let mut ran = false;
        g.bench_function("noop", |b| {
            ran = true;
            b.iter(|| 1 + 1)
        });
        g.finish();
        assert!(ran);
    }

    #[test]
    fn fmt_ns_scales_units() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(2_000_000_000.0).ends_with(" s"));
    }
}
