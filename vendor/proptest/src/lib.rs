//! Vendored offline stand-in for `proptest`.
//!
//! Implements the subset the workspace's property tests use: numeric-range
//! strategies, `any::<T>()` for integers and bool, `prop::collection::vec`,
//! tuples, `prop_map`, `Just`, `prop_oneof!`, the `proptest!` macro and
//! `prop_assert!`/`prop_assert_eq!`.
//! Cases are generated from a fixed seed (deterministic runs); there is no
//! shrinking — a failing case panics with its inputs' `Debug` rendering so
//! it can be reproduced by seed.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Runner configuration; only `cases` is honoured.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values (no shrinking).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Derived strategy applying `f` to generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase (parity with real proptest's `.boxed()`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(move |rng| self.generate(rng)),
        }
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T> {
    #[allow(clippy::type_complexity)]
    inner: Box<dyn Fn(&mut StdRng) -> T>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        (self.inner)(rng)
    }
}

/// Full-domain strategy, mirroring real proptest's `any::<T>()` for the
/// integer and bool types the workspace's tests use. Every bit pattern
/// is reachable (floats are deliberately unimplemented: this stub's
/// uniform floats live in `[0, 1)`, which would silently narrow
/// `any::<f32>()` — build full-domain floats from
/// `any::<u32>().prop_map(f32::from_bits)` instead).
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(core::marker::PhantomData<T>);

pub fn any<T>() -> Any<T> {
    Any(core::marker::PhantomData)
}

macro_rules! impl_any_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random()
            }
        }
    )*};
}
impl_any_strategy!(u8, u16, u32, u64, usize, i32, i64, bool);

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let u: $t = rng.random();
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_int_range_strategy!(u16, u32, u64, usize, i32, i64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
}

/// Uniform choice among same-typed strategies (backs `prop_oneof!`).
pub struct Union<S> {
    options: Vec<S>,
}

pub fn union<S: Strategy>(options: Vec<S>) -> Union<S> {
    assert!(!options.is_empty(), "prop_oneof! needs at least one option");
    Union { options }
}

impl<S: Strategy> Strategy for Union<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        let i = rng.random_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// Length argument for [`vec`]: a fixed `usize` or a `Range<usize>`.
    pub trait SizeRange {
        fn pick(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: Box<dyn SizeRange>,
    }

    pub fn vec<S: Strategy>(elem: S, size: impl SizeRange + 'static) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: Box::new(size),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// Uniform choice from a fixed set of values.
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from an empty set");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            self.options[rng.random_range(0..self.options.len())].clone()
        }
    }
}

pub mod bool {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// A fair coin.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.random()
        }
    }
}

/// Namespace mirror of `proptest::prelude::prop`.
pub mod prop {
    pub use crate::{bool, collection, sample};
}

/// Drives one property-test function: generates `cases` inputs from a
/// name-derived fixed seed and runs the body on each.
pub struct TestRunner {
    rng: StdRng,
    cases: u32,
}

impl TestRunner {
    pub fn new(cfg: ProptestConfig, name: &str) -> TestRunner {
        // Stable per-test seed: same inputs every run, different per test.
        let seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3)
        });
        TestRunner {
            rng: StdRng::seed_from_u64(seed),
            cases: cfg.cases,
        }
    }

    pub fn cases(&self) -> u32 {
        self.cases
    }

    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($opt:expr),+ $(,)?) => {
        $crate::union(vec![$($opt),+])
    };
}

/// The test-suite macro: expands each `#[test] fn name(pat in strategy, ...)`
/// into a plain `#[test]` that runs the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::TestRunner::new($cfg, stringify!($name));
            for _case in 0..runner.cases() {
                let ($($pat,)+) = {
                    let rng = runner.rng();
                    ($($crate::Strategy::generate(&($strat), rng),)+)
                };
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn float_ranges_stay_in_bounds(x in -2.0f32..2.0, y in 0.5f64..9.5) {
            prop_assert!((-2.0..2.0).contains(&x));
            prop_assert!((0.5..9.5).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(0u32..10, 3..7)) {
            prop_assert!(v.len() >= 3 && v.len() < 7);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn tuples_and_map_compose((a, b) in (0usize..5, 0usize..5).prop_map(|(x, y)| (x, x + y))) {
            prop_assert!(b >= a);
        }

        #[test]
        fn oneof_picks_an_arm(v in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!(v == 1 || v == 2, "got {v}");
        }

    }

    #[test]
    fn any_covers_both_halves_and_both_bools() {
        // The full-domain contract: `any` must reach the high half of the
        // integer domain (a `[0, 1)`-style narrowing would never get there)
        // and both bool values. 64 draws miss a half with p = 2^-64.
        use crate::Strategy;
        let mut runner = crate::TestRunner::new(ProptestConfig::default(), "cover");
        let ints = crate::any::<u64>();
        let bools = crate::any::<bool>();
        let high = (0..64)
            .filter(|_| ints.generate(runner.rng()) > u64::MAX / 2)
            .count();
        assert!(
            high > 0 && high < 64,
            "u64 draws all on one side ({high}/64)"
        );
        let trues = (0..64).filter(|_| bools.generate(runner.rng())).count();
        assert!(
            trues > 0 && trues < 64,
            "bool draws all one value ({trues}/64)"
        );
    }

    #[test]
    fn runner_is_deterministic_per_name() {
        use crate::Strategy;
        let mut a = crate::TestRunner::new(ProptestConfig::default(), "t");
        let mut b = crate::TestRunner::new(ProptestConfig::default(), "t");
        let s = 0.0f64..1.0;
        for _ in 0..16 {
            assert_eq!(s.generate(a.rng()), s.generate(b.rng()));
        }
    }
}
