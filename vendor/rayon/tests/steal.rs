//! Correctness harness for the work-stealing executor.
//!
//! The build/CI container is single-core, so these tests cannot demonstrate
//! *speedup* — instead they prove the scheduling properties at width > 1
//! under oversubscription: every index runs exactly once, idle workers
//! steal work stranded behind a slow task, output order is preserved by
//! scatter-back, and a panicking task unwinds cleanly instead of
//! deadlocking the pool.

use rayon::prelude::*;
use rayon::ThreadPoolBuilder;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Every index in `0..n` is executed exactly once, at widths 1, 2 and 8.
#[test]
fn every_index_exactly_once_at_widths_1_2_8() {
    for threads in [1usize, 2, 8] {
        let pool = ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        let n = 1000usize;
        let counts: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        let out: Vec<usize> = pool.install(|| {
            (0..n)
                .into_par_iter()
                .map(|i| {
                    counts[i].fetch_add(1, Ordering::SeqCst);
                    i * 3
                })
                .collect()
        });
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(
                c.load(Ordering::SeqCst),
                1,
                "index {i} ran {} times at width {threads}",
                c.load(Ordering::SeqCst)
            );
        }
        assert_eq!(out, (0..n).map(|i| i * 3).collect::<Vec<_>>());
    }
}

/// Stealing proof: with 2 workers on 256 tasks, task 0 blocks until it has
/// observed most of the *other* tasks complete. Under the old contiguous
/// split (worker 0 owns 0..128, worker 1 owns 128..256) at most 128 tasks
/// can finish while task 0 blocks, so the observation below is impossible;
/// with an atomic task dequeue the free worker steals every remaining
/// block (claim size 16 here) and completion passes 200 while task 0 still
/// waits. Runs fine oversubscribed on a 1-core host because the blocked
/// worker sleeps.
#[test]
fn idle_worker_steals_past_contiguous_split() {
    const N: usize = 256;
    const TARGET: usize = 200;
    let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
    let done = AtomicUsize::new(0);
    let observed = AtomicUsize::new(0);
    let out: Vec<usize> = pool.install(|| {
        (0..N)
            .into_par_iter()
            .map(|i| {
                if i == 0 {
                    let deadline = Instant::now() + Duration::from_secs(20);
                    loop {
                        let d = done.load(Ordering::SeqCst);
                        if d >= TARGET || Instant::now() >= deadline {
                            observed.store(d, Ordering::SeqCst);
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(1));
                    }
                } else {
                    done.fetch_add(1, Ordering::SeqCst);
                }
                i
            })
            .collect()
    });
    assert_eq!(out, (0..N).collect::<Vec<_>>());
    let seen = observed.load(Ordering::SeqCst);
    assert!(
        seen >= TARGET,
        "task 0 saw only {seen} other tasks finish while blocked; \
         a contiguous one-chunk-per-worker split caps this at {}",
        N / 2
    );
}

/// A panic in one task propagates to the caller without deadlocking, and
/// the pool stays usable for subsequent parallel calls.
#[test]
fn panic_in_task_unwinds_and_pool_survives() {
    let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
    let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        pool.install(|| {
            (0..64usize)
                .into_par_iter()
                .map(|i| {
                    if i == 17 {
                        panic!("boom in task 17");
                    }
                    i
                })
                .collect::<Vec<usize>>()
        })
    }));
    assert!(res.is_err(), "panic in a task must propagate to the caller");
    // The scope joined every worker before unwinding; a fresh parallel call
    // on the same pool works.
    let out: Vec<usize> = pool.install(|| (0..100usize).into_par_iter().map(|i| i + 1).collect());
    assert_eq!(out, (1..101).collect::<Vec<_>>());
}

/// Scatter-back determinism: repeated runs at width 8 with per-worker
/// `map_init` scratch all produce input order, byte for byte.
#[test]
fn scatter_back_preserves_order_under_oversubscription() {
    let pool = ThreadPoolBuilder::new().num_threads(8).build().unwrap();
    let v: Vec<usize> = (0..10_000).collect();
    let expect: Vec<usize> = v.iter().map(|&x| x * x + 1).collect();
    for _ in 0..3 {
        let out: Vec<usize> = pool.install(|| {
            v.par_iter()
                .map_init(Vec::<usize>::new, |scratch, &x| {
                    scratch.push(x); // per-worker state, just to exercise it
                    x * x + 1
                })
                .collect()
        });
        assert_eq!(out, expect);
    }
}
