//! Vendored offline stand-in for `rayon`.
//!
//! The build container cannot reach crates.io, so this crate implements the
//! slice of rayon the workspace uses — `par_iter()` / `into_par_iter()`
//! pipelines ending in `collect()`, plus `map_init` for per-worker scratch
//! state — on top of `std::thread::scope`. Work distribution is a shared
//! atomic task dequeue: workers claim small index blocks with `fetch_add`
//! until the range is exhausted, so a worker that finishes early keeps
//! pulling work that would otherwise idle behind a slow chunk ("work
//! stealing" in the self-scheduling sense). Results carry their original
//! index and are scattered back into an order-preserving output vector, so
//! `collect()` stays deterministic regardless of which worker ran which
//! index.
//!
//! [`ThreadPoolBuilder`] / [`ThreadPool::install`] control the worker count
//! via a process-global override (sufficient for the single-pool
//! command-line binaries that use it; nested pools are not supported).

use std::sync::atomic::{AtomicUsize, Ordering};

/// 0 = "use the default" (std::thread::available_parallelism).
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Number of worker threads a parallel call will use right now.
pub fn current_num_threads() -> usize {
    let ov = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if ov > 0 {
        ov
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Builder for a scoped worker-count configuration.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type for [`ThreadPoolBuilder::build`] (construction never fails
/// here, but the signature mirrors rayon's).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder { num_threads: 0 }
    }

    /// `0` means "use all available cores".
    pub fn num_threads(mut self, n: usize) -> ThreadPoolBuilder {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }

    /// Configure the process-global worker count (rayon's global pool).
    /// Unlike real rayon this may be called repeatedly; the last call wins.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        THREAD_OVERRIDE.store(self.num_threads, Ordering::Relaxed);
        Ok(())
    }
}

/// A worker-count scope rather than a persistent pool: threads are spawned
/// per parallel call (scoped), `install` only pins how many.
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `f` with this pool's thread count applied to every parallel call
    /// in the process for the duration (single-pool semantics).
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = THREAD_OVERRIDE.swap(self.num_threads, Ordering::Relaxed);
        let out = f();
        THREAD_OVERRIDE.store(prev, Ordering::Relaxed);
        out
    }
}

/// An indexable, immutable source of parallel work items.
pub trait ParallelSource: Sync {
    type Item: Send;
    fn len(&self) -> usize;
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    fn get(&self, i: usize) -> Self::Item;
}

/// A lazy parallel pipeline over a [`ParallelSource`].
pub struct ParIter<S> {
    src: S,
}

pub struct SliceSource<'a, T> {
    data: &'a [T],
}

impl<'a, T: Sync> ParallelSource for SliceSource<'a, T> {
    type Item = &'a T;
    fn len(&self) -> usize {
        self.data.len()
    }
    fn get(&self, i: usize) -> &'a T {
        &self.data[i]
    }
}

pub struct RangeSource {
    start: usize,
    end: usize,
}

impl ParallelSource for RangeSource {
    type Item = usize;
    fn len(&self) -> usize {
        self.end - self.start
    }
    fn get(&self, i: usize) -> usize {
        self.start + i
    }
}

pub struct MapSource<S, F> {
    inner: S,
    f: F,
}

impl<S, F, R> ParallelSource for MapSource<S, F>
where
    S: ParallelSource,
    F: Fn(S::Item) -> R + Sync,
    R: Send,
{
    type Item = R;
    fn len(&self) -> usize {
        self.inner.len()
    }
    fn get(&self, i: usize) -> R {
        (self.f)(self.inner.get(i))
    }
}

pub struct EnumerateSource<S> {
    inner: S,
}

impl<S: ParallelSource> ParallelSource for EnumerateSource<S> {
    type Item = (usize, S::Item);
    fn len(&self) -> usize {
        self.inner.len()
    }
    fn get(&self, i: usize) -> (usize, S::Item) {
        (i, self.inner.get(i))
    }
}

impl<S: ParallelSource> ParIter<S> {
    pub fn map<F, R>(self, f: F) -> ParIter<MapSource<S, F>>
    where
        F: Fn(S::Item) -> R + Sync,
        R: Send,
    {
        ParIter {
            src: MapSource { inner: self.src, f },
        }
    }

    pub fn enumerate(self) -> ParIter<EnumerateSource<S>> {
        ParIter {
            src: EnumerateSource { inner: self.src },
        }
    }

    /// Like `map`, but each worker thread first builds scratch state with
    /// `init` and threads it through every item it processes — rayon's
    /// allocation-amortizing idiom for per-worker buffers.
    pub fn map_init<I, T, F, R>(self, init: I, f: F) -> MapInitIter<S, I, F>
    where
        I: Fn() -> T + Sync,
        F: Fn(&mut T, S::Item) -> R + Sync,
        R: Send,
    {
        MapInitIter {
            src: self.src,
            init,
            f,
        }
    }

    pub fn collect<C>(self) -> C
    where
        C: FromOrderedResults<S::Item>,
    {
        let src = &self.src;
        C::from_vec(execute(src.len(), || (), move |(), i| src.get(i)))
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(S::Item) + Sync,
    {
        let src = &self.src;
        let _: Vec<()> = execute(src.len(), || (), move |(), i| f(src.get(i)));
    }

    pub fn sum<T>(self) -> T
    where
        S::Item: Into<T>,
        T: std::iter::Sum<S::Item> + Send,
    {
        let src = &self.src;
        let items: Vec<S::Item> = execute(src.len(), || (), move |(), i| src.get(i));
        items.into_iter().sum()
    }
}

/// Terminal `map_init` pipeline (only `collect` is supported after it).
pub struct MapInitIter<S, I, F> {
    src: S,
    init: I,
    f: F,
}

impl<S, I, T, F, R> MapInitIter<S, I, F>
where
    S: ParallelSource,
    I: Fn() -> T + Sync,
    F: Fn(&mut T, S::Item) -> R + Sync,
    R: Send,
{
    pub fn collect<C>(self) -> C
    where
        C: FromOrderedResults<R>,
    {
        let src = &self.src;
        let init = &self.init;
        let f = &self.f;
        C::from_vec(execute(src.len(), init, move |state, i| {
            f(state, src.get(i))
        }))
    }
}

/// Collection target of a parallel pipeline (results arrive in input order).
pub trait FromOrderedResults<T> {
    fn from_vec(v: Vec<T>) -> Self;
}

impl<T> FromOrderedResults<T> for Vec<T> {
    fn from_vec(v: Vec<T>) -> Vec<T> {
        v
    }
}

/// Block size workers claim per `fetch_add` on the shared task counter:
/// small enough that an unlucky worker stuck behind one expensive block
/// leaves at most `STEAL_CHUNK - 1` cheap neighbours stranded, large enough
/// that the atomic traffic is negligible next to real work.
fn steal_chunk(n: usize, threads: usize) -> usize {
    (n / (threads * 8)).clamp(1, 1024)
}

/// Work-stealing scoped-thread executor over `0..n`.
///
/// All workers share one `AtomicUsize` cursor and claim `steal_chunk`-sized
/// index blocks with `fetch_add` until the range runs dry — a worker that
/// drains its block immediately claims the next unclaimed one, regardless
/// of which worker "should" have owned it under a contiguous split. Each
/// result is recorded with its input index and scattered back into a
/// position-indexed output vector, so output order is input order no matter
/// how the claims interleave. A panicking task propagates through
/// `join()`'s unwind once every worker has stopped; there are no locks, so
/// a panic cannot deadlock the scope.
fn execute<T, R, I, F>(n: usize, init: I, f: F) -> Vec<R>
where
    I: Fn() -> T + Sync,
    F: Fn(&mut T, usize) -> R + Sync,
    R: Send,
{
    let threads = current_num_threads().min(n).max(1);
    if threads == 1 {
        let mut state = init();
        return (0..n).map(|i| f(&mut state, i)).collect();
    }
    let chunk = steal_chunk(n, threads);
    let cursor = AtomicUsize::new(0);
    let mut locals: Vec<Vec<(usize, R)>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let cursor = &cursor;
                let init = &init;
                let f = &f;
                scope.spawn(move || {
                    let mut state = init();
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        let end = (start + chunk).min(n);
                        local.reserve(end - start);
                        for i in start..end {
                            local.push((i, f(&mut state, i)));
                        }
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            locals.push(h.join().expect("worker panicked"));
        }
    });
    // Deterministic scatter-back: place each result at its input index.
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    for (i, r) in locals.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "index {i} produced twice");
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, r)| r.unwrap_or_else(|| panic!("index {i} never executed")))
        .collect()
}

/// `.par_iter()` on borrowed collections.
pub trait IntoParallelRefIterator<'a> {
    type Source: ParallelSource;
    fn par_iter(&'a self) -> ParIter<Self::Source>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Source = SliceSource<'a, T>;
    fn par_iter(&'a self) -> ParIter<SliceSource<'a, T>> {
        ParIter {
            src: SliceSource { data: self },
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Source = SliceSource<'a, T>;
    fn par_iter(&'a self) -> ParIter<SliceSource<'a, T>> {
        ParIter {
            src: SliceSource { data: self },
        }
    }
}

/// `.into_par_iter()` on owned ranges.
pub trait IntoParallelIterator {
    type Source: ParallelSource;
    fn into_par_iter(self) -> ParIter<Self::Source>;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Source = RangeSource;
    fn into_par_iter(self) -> ParIter<RangeSource> {
        ParIter {
            src: RangeSource {
                start: self.start,
                end: self.end,
            },
        }
    }
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let out: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn enumerate_indices_match() {
        let v = vec![10, 20, 30];
        let out: Vec<(usize, i32)> = v.par_iter().enumerate().map(|(i, &x)| (i, x)).collect();
        assert_eq!(out, vec![(0, 10), (1, 20), (2, 30)]);
    }

    #[test]
    fn range_into_par_iter() {
        let out: Vec<usize> = (3..7).into_par_iter().map(|i| i * i).collect();
        assert_eq!(out, vec![9, 16, 25, 36]);
    }

    #[test]
    fn map_init_reuses_state_per_worker() {
        let v: Vec<usize> = (0..64).collect();
        // Scratch buffer grows once per worker, not once per item.
        let out: Vec<usize> = v
            .par_iter()
            .map_init(
                || Vec::<usize>::with_capacity(8),
                |scratch, &x| {
                    scratch.push(x);
                    x + 1
                },
            )
            .collect();
        assert_eq!(out, (1..65).collect::<Vec<_>>());
    }

    #[test]
    fn install_pins_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        pool.install(|| {
            assert_eq!(current_num_threads(), 2);
            let out: Vec<usize> = (0..100).into_par_iter().map(|i| i).collect();
            assert_eq!(out.len(), 100);
        });
    }

    #[test]
    fn empty_input_is_fine() {
        let v: Vec<u8> = Vec::new();
        let out: Vec<u8> = v.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }
}
