//! Vendored offline stand-in for `rayon`.
//!
//! The build container cannot reach crates.io, so this crate implements the
//! slice of rayon the workspace uses — `par_iter()` / `into_par_iter()`
//! pipelines ending in `collect()`, plus `map_init` for per-worker scratch
//! state — on top of `std::thread::scope`. Work is split into contiguous
//! chunks, one per worker, which preserves output order and is a good fit
//! for the workspace's uniform-cost utterance batches.
//!
//! [`ThreadPoolBuilder`] / [`ThreadPool::install`] control the worker count
//! via a process-global override (sufficient for the single-pool
//! command-line binaries that use it; nested pools are not supported).

use std::sync::atomic::{AtomicUsize, Ordering};

/// 0 = "use the default" (std::thread::available_parallelism).
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Number of worker threads a parallel call will use right now.
pub fn current_num_threads() -> usize {
    let ov = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if ov > 0 {
        ov
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Builder for a scoped worker-count configuration.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type for [`ThreadPoolBuilder::build`] (construction never fails
/// here, but the signature mirrors rayon's).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder { num_threads: 0 }
    }

    /// `0` means "use all available cores".
    pub fn num_threads(mut self, n: usize) -> ThreadPoolBuilder {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }

    /// Configure the process-global worker count (rayon's global pool).
    /// Unlike real rayon this may be called repeatedly; the last call wins.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        THREAD_OVERRIDE.store(self.num_threads, Ordering::Relaxed);
        Ok(())
    }
}

/// A worker-count scope rather than a persistent pool: threads are spawned
/// per parallel call (scoped), `install` only pins how many.
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `f` with this pool's thread count applied to every parallel call
    /// in the process for the duration (single-pool semantics).
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = THREAD_OVERRIDE.swap(self.num_threads, Ordering::Relaxed);
        let out = f();
        THREAD_OVERRIDE.store(prev, Ordering::Relaxed);
        out
    }
}

/// An indexable, immutable source of parallel work items.
pub trait ParallelSource: Sync {
    type Item: Send;
    fn len(&self) -> usize;
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    fn get(&self, i: usize) -> Self::Item;
}

/// A lazy parallel pipeline over a [`ParallelSource`].
pub struct ParIter<S> {
    src: S,
}

pub struct SliceSource<'a, T> {
    data: &'a [T],
}

impl<'a, T: Sync> ParallelSource for SliceSource<'a, T> {
    type Item = &'a T;
    fn len(&self) -> usize {
        self.data.len()
    }
    fn get(&self, i: usize) -> &'a T {
        &self.data[i]
    }
}

pub struct RangeSource {
    start: usize,
    end: usize,
}

impl ParallelSource for RangeSource {
    type Item = usize;
    fn len(&self) -> usize {
        self.end - self.start
    }
    fn get(&self, i: usize) -> usize {
        self.start + i
    }
}

pub struct MapSource<S, F> {
    inner: S,
    f: F,
}

impl<S, F, R> ParallelSource for MapSource<S, F>
where
    S: ParallelSource,
    F: Fn(S::Item) -> R + Sync,
    R: Send,
{
    type Item = R;
    fn len(&self) -> usize {
        self.inner.len()
    }
    fn get(&self, i: usize) -> R {
        (self.f)(self.inner.get(i))
    }
}

pub struct EnumerateSource<S> {
    inner: S,
}

impl<S: ParallelSource> ParallelSource for EnumerateSource<S> {
    type Item = (usize, S::Item);
    fn len(&self) -> usize {
        self.inner.len()
    }
    fn get(&self, i: usize) -> (usize, S::Item) {
        (i, self.inner.get(i))
    }
}

impl<S: ParallelSource> ParIter<S> {
    pub fn map<F, R>(self, f: F) -> ParIter<MapSource<S, F>>
    where
        F: Fn(S::Item) -> R + Sync,
        R: Send,
    {
        ParIter {
            src: MapSource { inner: self.src, f },
        }
    }

    pub fn enumerate(self) -> ParIter<EnumerateSource<S>> {
        ParIter {
            src: EnumerateSource { inner: self.src },
        }
    }

    /// Like `map`, but each worker thread first builds scratch state with
    /// `init` and threads it through every item it processes — rayon's
    /// allocation-amortizing idiom for per-worker buffers.
    pub fn map_init<I, T, F, R>(self, init: I, f: F) -> MapInitIter<S, I, F>
    where
        I: Fn() -> T + Sync,
        F: Fn(&mut T, S::Item) -> R + Sync,
        R: Send,
    {
        MapInitIter {
            src: self.src,
            init,
            f,
        }
    }

    pub fn collect<C>(self) -> C
    where
        C: FromOrderedResults<S::Item>,
    {
        let src = &self.src;
        C::from_vec(execute(src.len(), || (), move |(), i| src.get(i)))
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(S::Item) + Sync,
    {
        let src = &self.src;
        let _: Vec<()> = execute(src.len(), || (), move |(), i| f(src.get(i)));
    }

    pub fn sum<T>(self) -> T
    where
        S::Item: Into<T>,
        T: std::iter::Sum<S::Item> + Send,
    {
        let src = &self.src;
        let items: Vec<S::Item> = execute(src.len(), || (), move |(), i| src.get(i));
        items.into_iter().sum()
    }
}

/// Terminal `map_init` pipeline (only `collect` is supported after it).
pub struct MapInitIter<S, I, F> {
    src: S,
    init: I,
    f: F,
}

impl<S, I, T, F, R> MapInitIter<S, I, F>
where
    S: ParallelSource,
    I: Fn() -> T + Sync,
    F: Fn(&mut T, S::Item) -> R + Sync,
    R: Send,
{
    pub fn collect<C>(self) -> C
    where
        C: FromOrderedResults<R>,
    {
        let src = &self.src;
        let init = &self.init;
        let f = &self.f;
        C::from_vec(execute(src.len(), init, move |state, i| {
            f(state, src.get(i))
        }))
    }
}

/// Collection target of a parallel pipeline (results arrive in input order).
pub trait FromOrderedResults<T> {
    fn from_vec(v: Vec<T>) -> Self;
}

impl<T> FromOrderedResults<T> for Vec<T> {
    fn from_vec(v: Vec<T>) -> Vec<T> {
        v
    }
}

/// Chunked scoped-thread executor: splits `0..n` into one contiguous chunk
/// per worker, preserving output order.
fn execute<T, R, I, F>(n: usize, init: I, f: F) -> Vec<R>
where
    I: Fn() -> T + Sync,
    F: Fn(&mut T, usize) -> R + Sync,
    R: Send,
{
    let threads = current_num_threads().min(n).max(1);
    if threads == 1 {
        let mut state = init();
        return (0..n).map(|i| f(&mut state, i)).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut out: Vec<Vec<R>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let start = w * chunk;
                let end = ((w + 1) * chunk).min(n);
                let init = &init;
                let f = &f;
                scope.spawn(move || {
                    let mut state = init();
                    (start..end).map(|i| f(&mut state, i)).collect::<Vec<R>>()
                })
            })
            .collect();
        for h in handles {
            out.push(h.join().expect("worker panicked"));
        }
    });
    out.into_iter().flatten().collect()
}

/// `.par_iter()` on borrowed collections.
pub trait IntoParallelRefIterator<'a> {
    type Source: ParallelSource;
    fn par_iter(&'a self) -> ParIter<Self::Source>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Source = SliceSource<'a, T>;
    fn par_iter(&'a self) -> ParIter<SliceSource<'a, T>> {
        ParIter {
            src: SliceSource { data: self },
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Source = SliceSource<'a, T>;
    fn par_iter(&'a self) -> ParIter<SliceSource<'a, T>> {
        ParIter {
            src: SliceSource { data: self },
        }
    }
}

/// `.into_par_iter()` on owned ranges.
pub trait IntoParallelIterator {
    type Source: ParallelSource;
    fn into_par_iter(self) -> ParIter<Self::Source>;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Source = RangeSource;
    fn into_par_iter(self) -> ParIter<RangeSource> {
        ParIter {
            src: RangeSource {
                start: self.start,
                end: self.end,
            },
        }
    }
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let out: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn enumerate_indices_match() {
        let v = vec![10, 20, 30];
        let out: Vec<(usize, i32)> = v.par_iter().enumerate().map(|(i, &x)| (i, x)).collect();
        assert_eq!(out, vec![(0, 10), (1, 20), (2, 30)]);
    }

    #[test]
    fn range_into_par_iter() {
        let out: Vec<usize> = (3..7).into_par_iter().map(|i| i * i).collect();
        assert_eq!(out, vec![9, 16, 25, 36]);
    }

    #[test]
    fn map_init_reuses_state_per_worker() {
        let v: Vec<usize> = (0..64).collect();
        // Scratch buffer grows once per worker, not once per item.
        let out: Vec<usize> = v
            .par_iter()
            .map_init(
                || Vec::<usize>::with_capacity(8),
                |scratch, &x| {
                    scratch.push(x);
                    x + 1
                },
            )
            .collect();
        assert_eq!(out, (1..65).collect::<Vec<_>>());
    }

    #[test]
    fn install_pins_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        pool.install(|| {
            assert_eq!(current_num_threads(), 2);
            let out: Vec<usize> = (0..100).into_par_iter().map(|i| i).collect();
            assert_eq!(out.len(), 100);
        });
    }

    #[test]
    fn empty_input_is_fine() {
        let v: Vec<u8> = Vec::new();
        let out: Vec<u8> = v.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }
}
