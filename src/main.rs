//! `lre` — command-line interface to the DBA language-recognition stack.
//!
//! ```text
//! lre corpus-stats   [--seed N]                      corpus inventory summary
//! lre synth          [--lang L] [--seed N] [--out F] render one utterance (f32 LE raw)
//! lre decode         [--lang L] [--seed N]           decode through every front-end
//! lre experiment     [--scale S] [--seed N] [--v V]  baseline + one DBA round
//! ```

use lre_repro::am::extract_features;
use lre_repro::corpus::{
    render_utterance, Channel, Dataset, DatasetConfig, Duration, LanguageId, Scale, UttSpec,
};
use lre_repro::dba::{
    dba::run_dba, standard_subsystems, DbaVariant, Experiment, ExperimentConfig, Frontend,
};
use lre_repro::eval::pooled_eer;
use lre_repro::lattice::{decode, DecoderConfig};
use lre_repro::phone::UniversalInventory;
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("corpus-stats") => corpus_stats(&args[1..]),
        Some("synth") => synth(&args[1..]),
        Some("decode") => decode_cmd(&args[1..]),
        Some("experiment") => experiment(&args[1..]),
        _ => {
            eprintln!(
                "usage: lre <corpus-stats|synth|decode|experiment> [options]\n\
                 \n  corpus-stats [--seed N]\n  synth [--lang name] [--seed N] [--out file.f32]\n\
                 \n  decode [--lang name] [--seed N]\n  experiment [--scale smoke|demo|paper] [--seed N] [--v V]"
            );
            std::process::exit(2);
        }
    }
}

fn opt(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn lang_by_name(name: &str) -> LanguageId {
    LanguageId::all()
        .into_iter()
        .find(|l| l.name() == name)
        .unwrap_or_else(|| {
            eprintln!("unknown language {name}; one of:");
            for l in LanguageId::all() {
                eprintln!("  {}", l.name());
            }
            std::process::exit(2);
        })
}

fn corpus_stats(args: &[String]) {
    let seed: u64 = opt(args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let inv = UniversalInventory::new();
    let ds = Dataset::generate(DatasetConfig::new(Scale::Demo, seed));
    println!("universal phone inventory: {} phones", inv.len());
    println!(
        "languages: {} ({} LRE09 targets + HU + CZ)",
        LanguageId::all().len(),
        23
    );
    println!(
        "demo split: train {} / dev {} / test {}x3 durations / AM {}x5 recognizer languages",
        ds.train.len(),
        ds.dev.len(),
        ds.test_set(Duration::S30).len(),
        ds.am_train[0].1.len()
    );
    for set in lre_repro::phone::standard_phone_sets(&inv) {
        println!("phone set {:>2}: {} phones", set.name(), set.len());
    }
}

fn synth(args: &[String]) {
    let seed: u64 = opt(args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let lang = lang_by_name(&opt(args, "--lang").unwrap_or_else(|| "french".into()));
    let out = opt(args, "--out").unwrap_or_else(|| "utterance.f32".into());
    let inv = UniversalInventory::new();
    let ds = Dataset::generate(DatasetConfig::new(Scale::Smoke, 42));
    let utt = UttSpec {
        language: lang,
        speaker_seed: seed,
        channel: Channel::telephone(30.0),
        num_frames: 300,
        seed,
    };
    let r = render_utterance(&utt, ds.language(lang), &inv);
    let mut f = std::fs::File::create(&out).expect("create output");
    for s in &r.samples {
        f.write_all(&s.to_le_bytes()).unwrap();
    }
    println!(
        "wrote {} samples ({:.2}s at 8 kHz, raw f32 LE) of synthetic {} to {out}",
        r.samples.len(),
        r.samples.len() as f32 / 8000.0,
        lang.name()
    );
    println!("play with: ffplay -f f32le -ar 8000 -i {out}");
}

fn decode_cmd(args: &[String]) {
    let seed: u64 = opt(args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let lang = lang_by_name(&opt(args, "--lang").unwrap_or_else(|| "russian".into()));
    let inv = UniversalInventory::new();
    let ds = Dataset::generate(DatasetConfig::new(Scale::Smoke, 42));
    let utt = UttSpec {
        language: lang,
        speaker_seed: seed,
        channel: Channel::telephone(30.0),
        num_frames: 200,
        seed,
    };
    let r = render_utterance(&utt, ds.language(lang), &inv);
    println!(
        "decoding one {} utterance through all six front-ends…",
        lang.name()
    );
    for spec in standard_subsystems() {
        let fe = Frontend::train(spec, &ds, &inv, 2, DecoderConfig::default(), 7);
        let mut feats = extract_features(&r.samples, fe.am.feature);
        fe.am.feature_transform.apply(&mut feats);
        let out = decode(&fe.am, &feats, &fe.decoder);
        let syms: Vec<&str> = out
            .segments
            .iter()
            .map(|s| fe.phone_set.symbol(s.phone as usize))
            .collect();
        println!("{:<12}: {}", spec.name, syms.join(" "));
    }
}

fn experiment(args: &[String]) {
    let seed: u64 = opt(args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let scale = opt(args, "--scale")
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::Smoke);
    let v: u8 = opt(args, "--v").and_then(|s| s.parse().ok()).unwrap_or(3);
    let exp = Experiment::build(&ExperimentConfig::new(scale, seed));
    println!("baseline:");
    for row in exp.baseline_summary() {
        println!(
            "  {:<12} {:>4}: EER {:5.2}%",
            row.subsystem,
            row.duration.name(),
            row.eer * 100.0
        );
    }
    for variant in [DbaVariant::M1, DbaVariant::M2] {
        let out = run_dba(&exp, variant, v);
        println!(
            "{} (V={v}): selected {} ({:.1}% label error)",
            variant.name(),
            out.num_selected(),
            out.selection_error_rate * 100.0
        );
        for (di, &d) in Duration::all().iter().enumerate() {
            let labels = &exp.test_labels[di];
            let mean: f64 = (0..exp.num_subsystems())
                .map(|q| pooled_eer(&out.test_scores[di][q], labels))
                .sum::<f64>()
                / exp.num_subsystems() as f64;
            println!(
                "  {:>4}: mean subsystem EER {:5.2}%",
                d.name(),
                mean * 100.0
            );
        }
    }
}
