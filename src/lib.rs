//! Workspace umbrella crate: re-exports the whole LRE-DBA stack so the
//! `examples/` and `tests/` at the repository root can use one import path.

pub use lre_acoustic as acoustic;
pub use lre_am as am;
pub use lre_backend as backend;
pub use lre_corpus as corpus;
pub use lre_dba as dba;
pub use lre_dsp as dsp;
pub use lre_eval as eval;
pub use lre_lattice as lattice;
pub use lre_linalg as linalg;
pub use lre_phone as phone;
pub use lre_svm as svm;
pub use lre_vsm as vsm;
